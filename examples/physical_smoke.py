"""Physical-pipeline smoke test: two-design flow with macro reuse.

Exercises the reuse-aware physical pipeline end to end through the typed
session API (the CI ``make physical-smoke`` target):

1. run a tiny flow with reuse on (the default) and a persistent store,
   exporting GDSII for two distilled designs;
2. assert at least one macro was served from the cache (designs of one
   distill set share sub-macros);
3. run the identical flow with ``reuse="off"`` — the flat pre-pipeline
   baseline — and assert the exported GDSII streams are byte-identical;
4. run the reuse flow again through a *fresh* session on the same store
   (as a new process would) and assert it warm-starts from the
   persisted artifact cache.

Exit code 0 means the reuse path is both effective and exact.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import FlowRequest, Session, SessionConfig

ARRAY_SIZE = 256
POPULATION = 16
GENERATIONS = 6
SEED = 1


def flow_request(reuse: str, output_dir: str) -> FlowRequest:
    return FlowRequest(
        array_size=ARRAY_SIZE, population=POPULATION,
        generations=GENERATIONS, seed=SEED, max_layouts=2,
        route_columns=True, output_dir=output_dir, reuse=reuse,
    )


def gds_streams(directory: Path) -> dict:
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.gds"))}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-physical-") as tmp:
        tmp_path = Path(tmp)
        store_path = str(tmp_path / "store.sqlite")

        # 1. Reuse-on flow with a persistent store.
        with Session.from_config(SessionConfig(store=store_path)) as session:
            reused = session.flow(flow_request("auto", str(tmp_path / "on")))
        stats = reused.payload["physical_stats"]
        print(f"reuse on : {stats['macros_built']} macros built, "
              f"{stats['macros_reused']} reused")
        # 2. Designs of one distill set must share at least one macro.
        assert stats["macros_reused"] >= 1, "expected >= 1 macro cache hit"

        # 3. Flat baseline: byte-identical GDSII.
        with Session() as session:
            session.flow(flow_request("off", str(tmp_path / "off")))
        on_streams = gds_streams(tmp_path / "on")
        off_streams = gds_streams(tmp_path / "off")
        assert on_streams, "reuse flow exported no GDSII"
        assert set(on_streams) == set(off_streams), \
            "reuse on/off exported different design sets"
        for name in on_streams:
            assert on_streams[name] == off_streams[name], \
                f"{name}: reuse-on GDSII differs from the flat baseline"
        print(f"byte-identity: {len(on_streams)} GDSII streams identical "
              "(reuse on vs off)")

        # 4. A fresh session on the same store warm-starts from artifacts.
        with Session.from_config(SessionConfig(store=store_path)) as session:
            warm = session.flow(flow_request("auto", str(tmp_path / "warm")))
        warm_stats = warm.payload["physical_stats"]
        assert warm_stats["macros_built"] == 0, \
            "warm session should build nothing"
        store_hits = sum(
            stage["store_hits"]
            for stage in warm_stats["stages"].values()
        )
        assert store_hits >= 1, "expected store-served macro artifacts"
        print(f"warm start: {warm_stats['macros_reused']} macros reused, "
              f"{store_hits} store hits, 0 built")

        assert gds_streams(tmp_path / "warm") == on_streams
    print("physical smoke OK: reuse effective, geometry exact, "
          "artifacts durable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
