#!/usr/bin/env python3
"""Validate the analytic SNR model against the behavioral Monte-Carlo simulator.

The paper's design-space explorer relies on the Equation-2..6 estimation
model (and its simplified Equation-11 form).  This example sweeps ADC
precision and accumulation length, measures the SNR of the behavioral
charge-redistribution + SAR-ADC column simulator, and prints it next to the
analytic predictions — the reproduction's substitute for the authors'
post-layout-simulation calibration.

Run with::

    python examples/validate_snr_model.py
"""

from __future__ import annotations

from repro import ACIMDesignSpec, ACIMEstimator
from repro.flow.report import format_table
from repro.model.calibration import fit_snr_constants
from repro.sim import MonteCarloSnr


def main() -> None:
    estimator = ACIMEstimator()
    snr_model = estimator.snr_model

    print("=" * 70)
    print("SNR model validation: analytic (Eq. 2-6, Eq. 11) vs Monte Carlo")
    print("=" * 70)

    sweep = [
        ACIMDesignSpec(64, 8, 16, 2),
        ACIMDesignSpec(64, 8, 8, 3),
        ACIMDesignSpec(64, 8, 4, 4),
        ACIMDesignSpec(128, 8, 4, 5),
        ACIMDesignSpec(256, 8, 4, 5),
        ACIMDesignSpec(256, 8, 2, 6),
    ]

    rows = []
    for spec in sweep:
        n = spec.local_arrays_per_column
        measurement = MonteCarloSnr(spec, seed=7).run(trials=1500)
        rows.append({
            "H": spec.height,
            "L": spec.local_array_size,
            "B_ADC": spec.adc_bits,
            "N=H/L": n,
            "analytic_design_dB": round(snr_model.design_snr_db(spec.adc_bits, n), 2),
            "simplified_eq11_dB": round(
                snr_model.simplified_snr_db(spec.adc_bits, n), 2),
            "monte_carlo_dB": round(measurement.snr_db, 2),
        })
    print(format_table(rows))

    k3, k4, rms = fit_snr_constants()
    print("\nEquation-11 coefficients fitted against the full model:")
    print(format_table([{
        "k3": f"{k3:.3e}",
        "k4_dB": round(k4, 2),
        "fit_rms_error_dB": round(rms, 2),
    }]))

    print("\nNoise budget of the H=64, L=8, B=3 point:")
    budget = snr_model.noise_budget(3, 8)
    print(format_table([{key: round(value, 4) if isinstance(value, float) else value
                         for key, value in budget.items()}]))


if __name__ == "__main__":
    main()
