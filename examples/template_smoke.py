"""Template-reuse smoke test: three neighbouring designs, one family.

Exercises the parametric macro-template ladder end to end (the CI
``make template-smoke`` target):

1. run three neighbouring configurations — a base design, a taller
   column (H doubled) and a coarser ADC (B reduced) — through a
   reuse-aware :class:`PhysicalPipeline` backed by a persistent store,
   and assert the second and third designs *derive* their columns from
   the first one's solved template instead of re-solving cold;
2. re-run the same designs through a reuse-off pipeline — the flat
   baseline — and assert every exported GDSII stream is byte-identical
   (incremental patching is exact, not approximate);
3. open a *fresh* pipeline on the same store (as a new process would)
   for a fourth neighbouring design and assert it hydrates a template
   through the store's ``template_index`` nearest-neighbour rung;
4. assert the per-rung metrics counters are visible in the registry.

Exit code 0 means near-miss reuse is effective, exact and observable.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import default_cell_library
from repro.layout.gdsii import write_gds
from repro.obs import MetricsRegistry
from repro.physical import PhysicalPipeline
from repro.store.result_store import ResultStore
from repro.technology.tech import generic28

#: Base design plus two near-misses: H doubled, then B reduced.
SPECS = [
    ACIMDesignSpec(16, 4, 4, 2),
    ACIMDesignSpec(32, 4, 4, 2),
    ACIMDesignSpec(16, 4, 4, 1),
]
#: A fourth neighbour solved by a fresh pipeline on the warm store.
COLD_SPEC = ACIMDesignSpec(32, 4, 4, 1)


def export(pipeline: PhysicalPipeline, spec: ACIMDesignSpec,
           directory: Path, tag: str) -> bytes:
    layout = pipeline.run(spec, route_columns=True).report.layout
    path = directory / f"{tag}_{spec.height}x{spec.width}x{spec.adc_bits}.gds"
    write_gds(layout, path, pipeline.technology)
    return path.read_bytes()


def main() -> int:
    technology = generic28()
    library = default_cell_library(technology)
    metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="easyacim-template-") as tmp:
        tmp_path = Path(tmp)
        store = ResultStore(tmp_path / "store.sqlite")

        # 1. Neighbouring designs derive from the first solved template.
        pipeline = PhysicalPipeline(library, store=store, metrics=metrics)
        derived_gds = [export(pipeline, spec, tmp_path, "tpl")
                       for spec in SPECS]
        stats = pipeline.stats
        print(f"template : {stats.macros_built} macros built, "
              f"{stats.macros_derived} derived, "
              f"{stats.macros_reused} reused")
        assert stats.macros_derived >= 2, \
            "expected the H and B neighbours to derive, not re-solve"

        # 2. Flat baseline: incremental patching must be exact.
        flat = PhysicalPipeline(library, reuse=False)
        flat_gds = [export(flat, spec, tmp_path, "flat") for spec in SPECS]
        assert derived_gds == flat_gds, \
            "template-derived GDSII differs from the flat baseline"
        print(f"exactness: {len(SPECS)} GDSII streams byte-identical "
              "to the reuse-off baseline")

        # 3. Fresh pipeline, warm store: the template_index rung.
        fresh = PhysicalPipeline(library, store=store, metrics=metrics)
        fresh_bytes = export(fresh, COLD_SPEC, tmp_path, "fresh")
        assert fresh.macro_library.derived_from_store >= 1, \
            "expected a nearest-neighbour hydrate from template_index"
        assert fresh_bytes == export(flat, COLD_SPEC, tmp_path, "flatref"), \
            "store-derived GDSII differs from the flat baseline"
        print(f"store    : fresh pipeline derived "
              f"{fresh.macro_library.derived_from_store} macro(s) "
              "from the template_index rung, byte-identical")
        store.close()

    # 4. The ladder is observable: per-rung counters in the registry.
    snapshot = metrics.snapshot()
    for metric in ("physical.macro.built", "physical.macro.derive.memory",
                   "physical.macro.derive.store"):
        assert snapshot.get(metric, 0) >= 1, f"missing counter {metric}"
    print("metrics  : built/derive.memory/derive.store counters visible")
    print("OK: template reuse smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
