#!/usr/bin/env python3
"""Serving-layer smoke test: every endpoint of a live server over HTTP.

The CI ``make serve-smoke`` target boots a real
:class:`~repro.serve.server.ReproServer` on an ephemeral port — stdlib
HTTP, worker pool, one shared file-backed session — and walks the whole
wire surface with a :class:`~repro.serve.client.ServeClient`:

1. every request kind of the typed catalogue submitted by HTTP as plain
   JSON and polled to a healthy terminal state, across three tenants;
2. a checkpointed campaign streamed generation-by-generation over SSE,
   with a second reader attached mid-flight from a replay cursor
   (both must observe the identical event log);
3. a long campaign cancelled mid-flight — it must end ``cancelled`` and
   then *finish* via an HTTP ``resume`` request (the checkpoint
   survives cancellation);
4. structured rejections: unknown kind, invalid field, unknown job, and
   the 429 rate-limit envelope with its retry hint;
5. ``/v1/metrics`` + ``/v1/healthz`` accounting, then a graceful
   drain-and-shutdown (queue refuses new work, in-flight jobs finish,
   the session closes flushing the store write-behind).

Exit code 0 means the serving layer is alive end-to-end.
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

from repro.api import SessionConfig
from repro.errors import ServeError
from repro.serve import ReproServer, ServeClient, ServeHTTPError, ServerConfig

#: One JSON document per request kind, sized for a seconds-long run.
MIXED_DOCUMENTS = [
    {"kind": "estimate", "height": 128, "width": 8, "local_array_size": 4,
     "adc_bits": 3},
    {"kind": "explore", "array_size": 1024, "population": 16,
     "generations": 3, "seed": 3},
    {"kind": "query", "what": "designs", "limit": 3, "offset": 1},
    {"kind": "query", "what": "campaigns"},
    {"kind": "validate-snr", "adc_bits": [3], "height": 64,
     "local_array_size": 4, "trials": 100},
    {"kind": "library", "report": False},
]

STREAMED_CAMPAIGN = {
    "kind": "campaign", "name": "serve-smoke-streamed",
    "array_size": 1024, "population": 12, "generations": 3, "seed": 5,
}

CANCELLED_CAMPAIGN = {
    "kind": "campaign", "name": "serve-smoke-cancelled",
    "array_size": 1024, "population": 12, "generations": 400, "seed": 6,
}


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        raise SystemExit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-serve-smoke-") as tmp:
        config = ServerConfig(
            port=0, workers=2,
            session=SessionConfig(store=str(Path(tmp) / "store.sqlite")),
        )
        server = ReproServer(config).start()
        client = ServeClient(server.url)
        print(f"server up on {server.url}")

        # 1. the full request catalogue over HTTP, three tenants ----------
        for index, document in enumerate(MIXED_DOCUMENTS):
            tenant = f"tenant-{index % 3}"
            final = client.run(document, tenant=tenant, timeout=300)
            check(final["state"] == "done",
                  f"{document['kind']} ended {final['state']!r}")
            check(final["result"]["status"] == "ok",
                  f"{document['kind']} status {final['result']['status']!r}")
            print(f"  {document['kind']:<12} done   (tenant {tenant})")

        # 2. streamed campaign + second reader from a cursor --------------
        accepted = client.submit(STREAMED_CAMPAIGN, tenant="streamer",
                                 stream=True)
        job_id = accepted["job_id"]
        first_events = []
        for event in client.stream(job_id, timeout=600):
            first_events.append(event)
        generations = [e for e in first_events
                       if e.get("event") == "generation"]
        check(len(generations) == STREAMED_CAMPAIGN["generations"],
              f"expected {STREAMED_CAMPAIGN['generations']} generation "
              f"events, saw {len(generations)}")
        check(first_events[-1]["event"] == "end", "stream missing end event")
        # a late reader replays the identical, already-finished log
        replayed = ServeClient(server.url).stream_events(job_id)
        check([dict(e, _cursor=None) for e in replayed]
              == [dict(e, _cursor=None) for e in first_events],
              "late reader saw a different event log")
        print(f"  campaign     streamed {len(generations)} generations, "
              "replay identical")

        # 3. cancel mid-flight, then resume to completion over HTTP -------
        doomed = client.submit(CANCELLED_CAMPAIGN, tenant="streamer",
                               stream=True)
        for event in client.stream(doomed["job_id"], timeout=600):
            if event.get("event") == "generation":
                break  # one checkpoint committed: cancel now
        client.cancel(doomed["job_id"])
        final = client.wait(doomed["job_id"], timeout=300)
        check(final["state"] == "cancelled",
              f"cancelled campaign ended {final['state']!r}")
        resumed = client.run(
            {"kind": "campaign", "name": CANCELLED_CAMPAIGN["name"],
             "action": "resume", "stop_after": 2},
            tenant="streamer", timeout=300)
        check(resumed["state"] == "done", "resume after cancel failed")
        check(resumed["result"]["payload"]["generations_done"] >= 2,
              "resume made no progress")
        print("  campaign     cancelled mid-flight, checkpoint resumed by "
              "HTTP")

        # 4. structured rejections ----------------------------------------
        try:
            client.submit({"kind": "warp-drive"})
            check(False, "unknown kind was accepted")
        except ServeHTTPError as error:
            check(error.status == 400 and error.error["field"] == "kind",
                  f"unknown kind: {error.status}/{error.error}")
        try:
            client.job("job-999999")
            check(False, "unknown job returned")
        except ServeHTTPError as error:
            check(error.status == 404, f"unknown job status {error.status}")
        limited = ReproServer(ServerConfig(
            port=0, workers=1, rate_limit=0.001, rate_burst=1.0)).start()
        try:
            throttled = ServeClient(limited.url)
            throttled.submit({"kind": "library"}, tenant="busy")
            try:
                throttled.submit({"kind": "library"}, tenant="busy")
                check(False, "rate limit never fired")
            except ServeHTTPError as error:
                check(error.status == 429
                      and error.error["code"] == "rate-limited"
                      and error.error["retry_after_seconds"] > 0,
                      f"429 envelope wrong: {error.status}/{error.error}")
        finally:
            limited.shutdown()
        print("  rejections   400 unknown-kind, 404 unknown-job, 429 "
              "rate-limited all structured")

        # 5. metrics, health, graceful shutdown ---------------------------
        metrics = client.metrics()
        submitted = metrics["metrics"]["serve.jobs.submitted"]
        check(submitted >= len(MIXED_DOCUMENTS) + 3,
              f"submitted counter {submitted} too low")
        health = client.healthz()
        check(health["status"] == "ok" and health["jobs"]["accepting"],
              f"unhealthy: {health}")
        server.shutdown()
        check(server.session.closed, "session not closed by shutdown")
        try:
            server.submit({"kind": "library"})
            check(False, "drained server accepted a job")
        except ServeError:
            pass
        print(f"  shutdown     drained cleanly after {submitted} jobs, "
              "session closed")

    print("serve smoke: all endpoints healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
