"""Trace smoke test: a quickstart-sized flow under ``repro trace``.

Exercises the observability layer end to end (the CI ``make trace-smoke``
target):

1. run a tiny flow through the real CLI wrapped in ``repro trace``,
   exporting a Chrome ``trace_event`` file;
2. assert the file parses as the Chrome trace format (the document
   Perfetto / chrome://tracing loads);
3. assert the trace nests spans from at least three layers — the API
   root span, engine dispatch/batch spans, per-chunk evaluation spans
   and physical-pipeline stage spans — and that every parent id resolves
   inside the file;
4. assert timestamps are sane (non-negative durations, start <= end).

Exit code 0 means a ``repro trace``-wrapped campaign produces a trace a
human can actually open.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main


def run() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "flow_trace.json"
        exit_code = main([
            "trace", "--trace-out", str(trace_path), "--",
            "flow", "--array-size", "256", "--population", "16",
            "--generations", "4", "--seed", "1", "--max-layouts", "1",
            "--workers", "2", "--out", str(Path(tmp) / "out"),
        ])
        if exit_code != 0:
            print(f"FAIL: traced flow exited with {exit_code}")
            return 1
        if not trace_path.exists():
            print("FAIL: trace file was not written")
            return 1

        document = json.loads(trace_path.read_text())
        events = document.get("traceEvents")
        if not isinstance(events, list) or not events:
            print("FAIL: no traceEvents in the exported document")
            return 1
        if document.get("displayTimeUnit") != "ms":
            print("FAIL: displayTimeUnit missing (not a Chrome trace)")
            return 1

        names = {event["name"] for event in events}
        span_ids = {event["args"]["span_id"] for event in events}
        required_layers = {
            "api layer": any(name.startswith("api.") for name in names),
            "engine batch": "engine.evaluate_specs" in names,
            "chunk evaluation": "engine.chunk" in names,
            "physical pipeline": any(
                name.startswith("physical.") for name in names
            ),
        }
        missing = [layer for layer, seen in required_layers.items() if not seen]
        if missing:
            print(f"FAIL: trace is missing layers {missing}; got {sorted(names)}")
            return 1

        for event in events:
            parent = event["args"]["parent_id"]
            if parent is not None and parent not in span_ids:
                print(f"FAIL: dangling parent id {parent!r} on {event['name']}")
                return 1
            if event["ts"] < 0 or event["dur"] < 0:
                print(f"FAIL: negative timestamp on {event['name']}")
                return 1

        roots = sum(
            1 for event in events if event["args"]["parent_id"] is None
        )
        print(
            f"OK: {len(events)} spans across {len(names)} names, "
            f"{roots} roots, all parents resolve "
            f"(layers: api + engine dispatch + chunk + physical stages)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(run())
