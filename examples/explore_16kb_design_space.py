#!/usr/bin/env python3
"""Explore the 16 kb design space and distil it for three application scenarios.

Reproduces the workflow behind the paper's Figures 9 and 10 interactively:

* run the MOGA-based explorer for a 16 kb array,
* print the Pareto-frontier set and its metric ranges,
* apply the "user distillation" step for three scenarios (transformer, CNN,
  SNN) and show which solutions each scenario keeps,
* compare the space against the published SOTA designs (Figure 10).

Run with::

    python examples/explore_16kb_design_space.py
"""

from __future__ import annotations

from repro.api import ExploreRequest, Session
from repro.dse.distill import DistillationCriteria, distill
from repro.flow.report import design_table, format_table, pareto_summary
from repro.sota import SOTA_DESIGNS, compare_with_design_space

ARRAY_SIZE = 16 * 1024


def main() -> None:
    print("=" * 70)
    print("EasyACIM design-space exploration — 16 kb array")
    print("=" * 70)

    with Session() as session:
        result = session.explore(ExploreRequest(
            array_size=ARRAY_SIZE, population=80, generations=40, seed=2024))
        pareto_set = result.artifacts["pareto_set"]
        print(f"\nNSGA-II: {result.payload['evaluations']} evaluations, "
              f"{len(pareto_set)} Pareto solutions, "
              f"{result.runtime_seconds:.2f} s")

        summary = pareto_summary(pareto_set)
        print("\nPareto-set metric ranges:")
        print(format_table([summary]))

        print("\nTop solutions by SNR:")
        by_snr = sorted(result.payload["pareto"],
                        key=lambda row: row["snr_db"], reverse=True)
        print(format_table(by_snr[:10]))

        # --------------------------------------------------------------
        # User distillation for the Figure-1 application scenarios.
        # --------------------------------------------------------------
        scenarios = [
            DistillationCriteria.transformer(),
            DistillationCriteria.cnn(),
            DistillationCriteria.snn(),
        ]
        print("\nUser distillation per application scenario:")
        for scenario in scenarios:
            kept = distill(pareto_set, scenario)
            print(f"\n  scenario {scenario.name!r}: {len(kept)} solutions survive")
            if kept:
                print(format_table(design_table(kept[:5])))

        # --------------------------------------------------------------
        # Figure-10 style comparison against SOTA silicon.
        # --------------------------------------------------------------
        print("\nComparison with SOTA ACIM designs (Figure 10):")
        exhaustive = session.explore(ExploreRequest(
            array_size=ARRAY_SIZE, method="exhaustive"))
        full_space = exhaustive.artifacts["pareto_set"]
        report = compare_with_design_space(full_space)
    rows = []
    for reference in SOTA_DESIGNS:
        entry = report[reference.label]
        rows.append({
            "design": f"{reference.label} ({reference.venue})",
            "ref_TOPS/W": reference.energy_efficiency_tops_w,
            "ref_F2/bit": reference.area_f2_per_bit,
            "EasyACIM solutions >= efficiency": entry["solutions_with_better_efficiency"],
            "EasyACIM solutions <= area": entry["solutions_with_better_area"],
        })
    print(format_table(rows))


if __name__ == "__main__":
    main()
