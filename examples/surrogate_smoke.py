"""Surrogate screening smoke test: savings, quality, cold fallback.

Exercises the learned pre-filter end to end through the typed session
API (the CI ``make surrogate-smoke`` target):

1. run the same fixed-seed NSGA-II exploration unscreened and with
   ``surrogate="screen"`` — the screened run must compute fewer exact
   model evaluations while matching or beating the unscreened run's
   recall of the exhaustively known true Pareto front;
2. check the surrogate counters: screened-out candidates appear in both
   the response payload and the engine stats;
3. cold-store fallback: a run too small to ever reach the fit threshold
   must behave exactly like ``surrogate="off"`` — bit-identical Pareto
   front, zero screened candidates.

Exit code 0 means every guarantee held.
"""

from __future__ import annotations

import sys

from repro.api import ExploreRequest, Session, SessionConfig
from repro.arch.batch import SpecBatch
from repro.dse.pareto import pareto_front
from repro.engine import EvaluationCache, EvaluationEngine, reset_shared_cache
from repro.model.estimator import ACIMEstimator

ARRAY_SIZE = 4096
POPULATION = 24
GENERATIONS = 8
SEED = 3
SCREEN_FRACTION = 0.3


def explore(**kw):
    """One exploration in a fresh session with a cold shared cache."""
    reset_shared_cache()
    with Session(SessionConfig()) as session:
        response = session.submit(ExploreRequest(seed=SEED, **kw))
        return response, session.engine.stats.as_dict()


def main() -> int:
    # The 4096 space is small enough to know the whole truth.
    batch = SpecBatch.enumerate(ARRAY_SIZE)
    with EvaluationEngine(
        "serial", cache=EvaluationCache(max_size=4096)
    ) as engine:
        metrics = engine.evaluate_specs(ACIMEstimator(), batch)
    objectives = [
        (-m.snr_db, -m.tops, m.energy_per_mac, m.area_f2_per_bit)
        for m in metrics
    ]
    tuples = batch.as_tuples()
    true_front = {tuples[i] for i in pareto_front(objectives)}
    print(f"exhaustive truth: {len(batch)} designs, "
          f"{len(true_front)} on the true Pareto front")

    def recall(response) -> float:
        found = {
            (d["H"], d["W"], d["L"], d["B_ADC"])
            for d in response.payload["pareto"]
        }
        return len(found & true_front) / len(true_front)

    # 1. Exact-eval savings at equal-or-better front recall.
    base_kw = dict(array_size=ARRAY_SIZE, population=POPULATION,
                   generations=GENERATIONS)
    unscreened, unscreened_stats = explore(**base_kw)
    screened, screened_stats = explore(
        surrogate="screen", screen_fraction=SCREEN_FRACTION, **base_kw
    )
    print(f"unscreened: {unscreened_stats['evaluations']} exact evals, "
          f"recall {recall(unscreened):.3f}")
    print(f"screened  : {screened_stats['evaluations']} exact evals, "
          f"recall {recall(screened):.3f}")
    if screened_stats["evaluations"] >= unscreened_stats["evaluations"]:
        print("FAIL: screening computed no fewer exact evaluations")
        return 1
    if recall(screened) < recall(unscreened):
        print("FAIL: screening lost true-front recall")
        return 1

    # 2. Counters surface in both the payload and the engine stats.
    summary = screened.payload["surrogate"]
    if summary["screened_candidates"] <= 0:
        print("FAIL: no candidates were screened out")
        return 1
    if screened_stats["surrogate_screened"] != summary["screened_candidates"]:
        print("FAIL: engine counter disagrees with the response payload")
        return 1
    print(f"screen: {summary['exact_candidates']} candidates sent exact, "
          f"{summary['screened_candidates']} screened out "
          f"({summary['training_rows']} training rows)")

    # 3. Cold-store fallback: below the fit threshold, screening is a
    #    pure pass-through — bit-identical front, nothing screened.
    tiny_kw = dict(array_size=1024, population=8, generations=3)
    off, _ = explore(**tiny_kw)
    cold, cold_stats = explore(
        surrogate="screen", screen_fraction=SCREEN_FRACTION, **tiny_kw
    )
    if cold.payload["pareto"] != off.payload["pareto"]:
        print("FAIL: cold-store screened front differs from surrogate=off")
        return 1
    if cold_stats["surrogate_screened"] != 0:
        print("FAIL: cold-store run screened candidates before the "
              "fit threshold")
        return 1
    print(f"cold fallback: {cold.payload['surrogate']['training_rows']} "
          f"training rows (< fit threshold), front bit-identical to off, "
          f"0 screened")

    print("\nsurrogate smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
