#!/usr/bin/env python3
"""Generate the three Figure-8 layouts of the paper (16 kb, B_ADC = 3).

For each of the published design points the script runs the template-based
netlist generator and the hierarchical placer/router, writes GDSII and DEF
views, and prints the same annotations the paper puts next to Figure 8
(die size, throughput, F^2/bit).

Run with::

    python examples/generate_figure8_layouts.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import ACIMDesignSpec, ACIMEstimator, default_cell_library, generic28
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.report import format_table
from repro.netlist.spice import write_spice

FIGURE8_SPECS = {
    "a": ACIMDesignSpec(128, 128, 2, 3),
    "b": ACIMDesignSpec(128, 128, 8, 3),
    "c": ACIMDesignSpec(64, 256, 8, 3),
}

PAPER_ANNOTATIONS = {
    "a": {"TOPS": 3.277, "F2_per_bit": 4504, "die": "226 x 256 um"},
    "b": {"TOPS": 0.813, "F2_per_bit": 2610, "die": "256 x 131 um"},
    "c": {"TOPS": 0.813, "F2_per_bit": 2977, "die": "510 x 75 um"},
}


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figure8_layouts")
    output_dir.mkdir(parents=True, exist_ok=True)

    technology = generic28()
    library = default_cell_library(technology)
    estimator = ACIMEstimator()
    netlist_generator = TemplateNetlistGenerator(library)
    layout_generator = LayoutGenerator(library)

    rows = []
    for label, spec in FIGURE8_SPECS.items():
        print(f"Generating Figure 8({label}): {spec.describe()} ...")
        netlist = netlist_generator.generate(spec)
        spice_path = output_dir / f"{netlist.name}.sp"
        spice_path.write_text(write_spice(netlist))

        report = layout_generator.generate(
            spec, route_column=True, export=True, output_dir=str(output_dir))
        metrics = estimator.evaluate(spec)
        paper = PAPER_ANNOTATIONS[label]
        rows.append({
            "config": f"Fig.8({label})",
            "H": spec.height,
            "L": spec.local_array_size,
            "paper_TOPS": paper["TOPS"],
            "repro_TOPS": round(metrics.tops, 3),
            "paper_F2/bit": paper["F2_per_bit"],
            "repro_F2/bit": round(report.area_f2_per_bit, 0),
            "paper_die": paper["die"],
            "repro_die": f"{report.width_um:.0f} x {report.height_um:.0f} um",
            "gds": Path(report.gds_path).name,
        })

    print("\nFigure 8 reproduction summary:")
    print(format_table(rows))
    print(f"\nGDS, DEF and SPICE files written to {output_dir.resolve()}")


if __name__ == "__main__":
    main()
