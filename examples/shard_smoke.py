"""Sharded-campaign smoke test: 2-shard pre-warm == serial full grid.

Exercises the sharded campaign path end to end through the typed session
API (the CI ``make shard-smoke`` target):

1. serially evaluate the full feasible design grid into a store — the
   rows an unsharded full-grid evaluation leaves behind;
2. run a tiny campaign with ``shards=2`` into a second store: two worker
   processes split the grid, evaluate their halves and commit through
   the concurrent-writer-safe store, then the NSGA-II loop runs warm;
3. assert the sharded store holds exactly the serial run's row count
   (the shards covered the grid completely, with no dropped or duplicate
   rows);
4. assert the sharded campaign's Pareto front is bit-identical to the
   same campaign run unsharded (pre-warming cannot perturb the
   optimiser).

Exit code 0 means the sharded path is equivalent to the serial one.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import CampaignRequest, Session, SessionConfig
from repro.dse.problem import ACIMDesignProblem
from repro.engine import EvaluationCache, EvaluationEngine, reset_shared_cache
from repro.model.estimator import ACIMEstimator
from repro.store import ResultStore

ARRAY_SIZE = 1024
POPULATION = 16
GENERATIONS = 4
SEED = 3
SHARDS = 2


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-shard-") as tmp:
        # 1. Serial reference: the full feasible grid, evaluated through
        #    a store-backed engine.
        problem = ACIMDesignProblem(ARRAY_SIZE)
        grid = problem.feasible_batch()
        with ResultStore(Path(tmp) / "serial.sqlite") as serial_store:
            with EvaluationEngine(
                "serial", cache=EvaluationCache(), store=serial_store
            ) as engine:
                engine.evaluate_specs(ACIMEstimator(), grid)
            serial_rows = len(serial_store)
        print(f"serial full-grid evaluation: {serial_rows} store rows "
              f"({len(grid)} feasible points)")

        # 2. Sharded campaign into a fresh store.
        reset_shared_cache()
        sharded_path = str(Path(tmp) / "sharded.sqlite")
        with Session.from_config(SessionConfig(store=sharded_path)) as session:
            sharded = session.campaign(CampaignRequest(
                name="shard-smoke", array_size=ARRAY_SIZE,
                population=POPULATION, generations=GENERATIONS, seed=SEED,
                shards=SHARDS,
            ))
            assert sharded.status == "ok", sharded.status
            sharded_rows = len(session.store)
        print(f"{SHARDS}-shard campaign committed {sharded_rows} store rows")

        # 3. Row-count equivalence: the shards covered exactly the grid.
        if sharded_rows != serial_rows:
            print(f"FAIL: sharded store has {sharded_rows} rows, "
                  f"serial full-grid run has {serial_rows}")
            return 1
        print("sharded store row count matches the serial full-grid run")

        # 4. Front bit-identity against the unsharded twin.
        reset_shared_cache()
        plain_path = str(Path(tmp) / "plain.sqlite")
        with Session.from_config(SessionConfig(store=plain_path)) as session:
            plain = session.campaign(CampaignRequest(
                name="shard-smoke", array_size=ARRAY_SIZE,
                population=POPULATION, generations=GENERATIONS, seed=SEED,
            ))
        if sharded.payload["pareto"] != plain.payload["pareto"]:
            print("FAIL: sharded Pareto front differs from the unsharded run")
            return 1
        print(f"sharded Pareto front is bit-identical to the unsharded run "
              f"({len(plain.payload['pareto'])} solutions)")
        print("\nshard smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
