#!/usr/bin/env python3
"""Quickstart: run the end-to-end EasyACIM flow on a small array.

The script exercises the whole pipeline on a 1 kb array so it finishes in a
few seconds:

1. design-space exploration with NSGA-II,
2. user distillation (here: keep solutions with at least 10 dB SNR),
3. template-based netlist generation,
4. template-based hierarchical placement and routing,
5. GDSII / DEF export.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import EasyACIMFlow, FlowInputs, NSGA2Config
from repro.dse.distill import DistillationCriteria
from repro.flow.report import design_table, format_table, solution_report


def main() -> None:
    inputs = FlowInputs(
        array_size=1024,
        nsga2=NSGA2Config(population_size=40, generations=20, seed=1),
        criteria=DistillationCriteria(min_snr_db=10.0, name="quickstart"),
        max_layouts=2,
    )
    flow = EasyACIMFlow(inputs)

    with tempfile.TemporaryDirectory() as output_dir:
        result = flow.run(route_columns=True, output_dir=output_dir)

        print("=" * 70)
        print("EasyACIM quickstart — 1 kb array")
        print("=" * 70)
        print(result.summary())

        print("\nPareto-frontier solutions (after distillation):")
        print(format_table(design_table(result.distilled)))

        print("\nBest-SNR solution in detail:")
        best = max(result.distilled, key=lambda d: d.metrics.snr_db)
        print(solution_report(best))

        print("\nGenerated layouts:")
        for key, report in result.layouts.items():
            print(f"  {key}: {report.width_um:.1f} x {report.height_um:.1f} um, "
                  f"{report.area_f2_per_bit:.0f} F^2/bit, "
                  f"GDS at {report.gds_path}")


if __name__ == "__main__":
    main()
