#!/usr/bin/env python3
"""Quickstart: run the end-to-end EasyACIM flow on a small array.

The script exercises the whole pipeline on a 1 kb array so it finishes in a
few seconds:

1. design-space exploration with NSGA-II,
2. user distillation (here: keep solutions with at least 10 dB SNR),
3. template-based netlist generation,
4. template-based hierarchical placement and routing,
5. GDSII / DEF export.

Everything runs through the typed session API (``docs/api.md``): one
:class:`repro.api.Session` built from a :class:`repro.api.SessionConfig`,
one :class:`repro.api.FlowRequest` describing the run.  Run with::

    python examples/quickstart.py
    python examples/quickstart.py --backend process --workers 2

The ``--backend``/``--workers`` pair routes the exploration batches and the
netlist/layout fan-out through the parallel evaluation engine (the CI smoke
job runs ``--workers 2`` so the parallel path is exercised on every PR).
"""

from __future__ import annotations

import argparse
import dataclasses
import tempfile

from repro.api import FlowRequest, Session, SessionConfig
from repro.flow.report import (
    design_table,
    engine_stats_table,
    format_table,
    solution_report,
)
from repro.reporting.physical import physical_stats_table


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=("serial", "thread", "process"),
                        default=None,
                        help="evaluation-engine backend (default: serial, "
                             "or process when --workers is given)")
    parser.add_argument("--workers", type=int, default=None,
                        help="engine pool size (implies --backend process)")
    args = parser.parse_args(argv)
    backend = args.backend or ("process" if args.workers else "serial")

    request = FlowRequest(
        array_size=1024,
        population=40,
        generations=20,
        seed=1,
        min_snr_db=10.0,
        max_layouts=2,
        route_columns=True,
    )

    with tempfile.TemporaryDirectory() as output_dir, Session.from_config(
        SessionConfig(backend=backend, workers=args.workers)
    ) as session:
        outcome = session.flow(
            dataclasses.replace(request, output_dir=output_dir)
        )
        result = outcome.artifacts["result"]

        print("=" * 70)
        print("EasyACIM quickstart — 1 kb array")
        print("=" * 70)
        print(result.summary())

        print("\nPareto-frontier solutions (after distillation):")
        print(format_table(design_table(result.distilled)))

        print("\nBest-SNR solution in detail:")
        best = max(result.distilled, key=lambda d: d.metrics.snr_db)
        print(solution_report(best))

        print("\nGenerated layouts:")
        for key, report in result.layouts.items():
            print(f"  {key}: {report.width_um:.1f} x {report.height_um:.1f} um, "
                  f"{report.area_f2_per_bit:.0f} F^2/bit, "
                  f"GDS at {report.gds_path}")

        print("\nEvaluation-engine statistics:")
        print(format_table(engine_stats_table(outcome.engine_stats)))

        physical = outcome.payload.get("physical_stats")
        if physical:
            print("\nPhysical pipeline (per stage; docs/physical.md):")
            print(format_table(physical_stats_table(physical)))

        # Flow-reuse in action: the session's pipeline keeps every solved
        # macro, so re-running the same flow serves the layouts from the
        # macro cache instead of re-placing and re-routing them.
        again = session.flow(request)
        stats = again.payload["physical_stats"]
        if stats:
            print(f"\nSame flow again on this session: "
                  f"{stats['macros_built']} macros built, "
                  f"{stats['macros_reused']} reused from the macro cache "
                  f"(use --no-reuse / FlowRequest(reuse='off') to disable).")
        else:
            # Parallel engines take the flat per-solution fan-out instead
            # of the shared in-process macro cache (docs/physical.md).
            print("\nSame flow again on this session: layouts regenerated "
                  "through the parallel engine fan-out (macro reuse "
                  "applies on serial engines; see docs/physical.md).")


if __name__ == "__main__":
    main()
