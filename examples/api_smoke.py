#!/usr/bin/env python3
"""API smoke test: every request kind, built from JSON, through one Session.

The CI ``make api-smoke`` target runs this script under
``python -W error::DeprecationWarning``, which asserts two things at once:

1. each request type deserializes from a plain JSON document
   (``request_from_dict``), executes on a tiny design space through
   :class:`repro.api.Session`, and returns a healthy, JSON-serializable
   :class:`repro.api.ApiResult`;
2. the session layer never touches the deprecated pre-API front doors —
   any stray ``DeprecationWarning`` fails the run.

Exit code 0 means the whole typed API surface is alive.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.api import Session, SessionConfig, request_from_dict

#: One JSON document per request kind, all sized for a seconds-long run.
REQUEST_DOCUMENTS = [
    {"kind": "estimate", "height": 128, "width": 8, "local_array_size": 4,
     "adc_bits": 3, "adc_sweep": True},
    {"kind": "explore", "array_size": 1024, "population": 16,
     "generations": 4, "seed": 3, "min_snr_db": 5.0},
    {"kind": "explore", "array_size": 256, "method": "exhaustive"},
    {"kind": "explore", "array_size": 256, "method": "sensitivity",
     "sensitivity_parameters": ["k1"], "relative_change": 0.2},
    {"kind": "campaign", "name": "api-smoke", "array_size": 1024,
     "population": 16, "generations": 3, "seed": 5},
    {"kind": "campaign", "name": "api-smoke-interrupted", "array_size": 1024,
     "population": 16, "generations": 3, "seed": 5, "stop_after": 1},
    {"kind": "query", "what": "designs", "rank_by": "tops_per_watt",
     "limit": 3},
    {"kind": "query", "what": "campaigns"},
    {"kind": "flow", "array_size": 256, "population": 16, "generations": 3,
     "seed": 1, "max_layouts": 1, "generate_layouts": False},
    {"kind": "layout", "height": 16, "width": 4, "local_array_size": 4,
     "adc_bits": 2, "route_columns": False, "spice": True, "lef": True},
    {"kind": "validate-snr", "adc_bits": [3], "height": 64,
     "local_array_size": 4, "trials": 100},
    {"kind": "library", "report": False},
]

#: Statuses the smoke accepts per kind (interrupted campaigns are healthy).
ACCEPTED_STATUSES = {"campaign": {"ok", "interrupted"}}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-api-smoke-") as tmp:
        config_document = json.loads(json.dumps({
            "backend": "serial",
            "store": str(Path(tmp) / "store.sqlite"),
        }))
        with Session.from_config(config_document) as session:
            for document in REQUEST_DOCUMENTS:
                if document["kind"] == "layout":
                    document = {**document,
                                "output_dir": str(Path(tmp) / "layout")}
                # The wire round-trip is part of the contract under test.
                wire = json.loads(json.dumps(document))
                request = request_from_dict(wire)
                assert request.to_dict() == request_from_dict(
                    request.to_dict()).to_dict(), f"round-trip drift: {wire}"
                result = session.submit(request)
                accepted = ACCEPTED_STATUSES.get(document["kind"], {"ok"})
                if result.status not in accepted:
                    print(f"FAIL: {document} -> status {result.status!r}")
                    return 1
                # The envelope must survive JSON serialization whole.
                rebuilt = json.loads(result.to_json())
                assert rebuilt["kind"] == request.kind
                print(f"{request.kind:<12} status={result.status:<11} "
                      f"evaluations={result.engine_stats.get('evaluations', 0):<5} "
                      f"cache_hits={result.engine_stats.get('cache_hits', 0)}")
    print("\napi smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
