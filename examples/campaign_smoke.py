"""Campaign smoke test: tiny campaign -> kill -> resume -> query.

Exercises the persistent-store durability path end to end through the
typed session API (the CI ``make campaign-smoke`` target):

1. start a small named campaign and stop it after two generations — the
   programmatic equivalent of ``kill -9`` between checkpoint commits;
2. resume it from the SQLite store (through a fresh session, as a new
   process would) and run it to completion;
3. assert the resumed Pareto front is bit-identical to an uninterrupted
   exploration with the same configuration;
4. run a second, overlapping campaign and assert it is served warm from
   the persistent store (``store_hits > 0``);
5. query the store across both campaigns.

Exit code 0 means every durability guarantee held.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import (
    CampaignRequest,
    ExploreRequest,
    QueryRequest,
    Session,
    SessionConfig,
)
from repro.flow.report import format_table

ARRAY_SIZE = 1024
POPULATION = 16
GENERATIONS = 6
SEED = 3


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-smoke-") as tmp:
        store_path = str(Path(tmp) / "store.sqlite")
        config = SessionConfig(store=store_path)

        # 1. Start, then "kill" after two generations.
        with Session.from_config(config) as session:
            interrupted = session.campaign(CampaignRequest(
                name="smoke", array_size=ARRAY_SIZE, population=POPULATION,
                generations=GENERATIONS, seed=SEED, stop_after=2,
            ))
            assert interrupted.status == "interrupted", interrupted.status
            checkpoints = session.store.checkpoint_count("smoke")
            print(f"interrupted at generation "
                  f"{interrupted.payload['generations_done']}/{GENERATIONS} "
                  f"({checkpoints} checkpoints committed)")

        # 2. Resume from the store file alone (a fresh session, as a new
        #    process would) and run to completion.
        with Session.from_config(config) as session:
            resumed = session.campaign(
                CampaignRequest(name="smoke", action="resume"))
            assert resumed.status == "ok", resumed.status
            print(f"resumed to completion: {len(resumed.payload['pareto'])} "
                  f"Pareto solutions, {resumed.payload['evaluations']} "
                  f"evaluations")

            # 3. Bit-identity against an uninterrupted exploration (same
            #    seed, store-less session so nothing is served stale).
            with Session.from_config(SessionConfig()) as reference_session:
                reference = reference_session.explore(ExploreRequest(
                    array_size=ARRAY_SIZE, population=POPULATION,
                    generations=GENERATIONS, seed=SEED,
                ))
            if resumed.payload["pareto"] != reference.payload["pareto"]:
                print("FAIL: resumed Pareto front differs from the "
                      "uninterrupted run")
                return 1
            print("kill -> resume Pareto front is bit-identical to the "
                  "uninterrupted run")

        # 4. Overlapping second campaign warm-starts from the store.
        with Session.from_config(config) as session:
            second = session.campaign(CampaignRequest(
                name="smoke-overlap", array_size=ARRAY_SIZE,
                population=POPULATION, generations=3, seed=9,
            ))
            store_hits = second.engine_stats.get("store_hits", 0)
            if store_hits <= 0:
                print("FAIL: overlapping campaign saw no persistent-store hits")
                return 1
            print(f"overlapping campaign served {store_hits} evaluations "
                  f"from the persistent store")

            # 5. Cross-campaign query.
            query = session.query(QueryRequest(
                min_snr_db=0.0, rank_by="tops_per_watt", limit=5,
            ))
            print()
            print(f"store holds {query.payload['count']} ranked points "
                  f"across {len(session.store.list_campaigns())} campaigns:")
            print(format_table(query.payload["designs"]))
        print("\ncampaign smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
