"""Campaign smoke test: tiny campaign -> kill -> resume -> query.

Exercises the persistent-store durability path end to end (the CI
``make campaign-smoke`` target):

1. start a small named campaign and stop it after two generations — the
   programmatic equivalent of ``kill -9`` between checkpoint commits;
2. resume it from the SQLite store and run it to completion;
3. assert the resumed Pareto front is bit-identical to an uninterrupted
   exploration with the same configuration;
4. run a second, overlapping campaign and assert it is served warm from
   the persistent store (``store_hits > 0``);
5. query the store across both campaigns.

Exit code 0 means every durability guarantee held.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.dse.distill import DistillationCriteria
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.flow.report import format_table
from repro.reporting.campaigns import stored_design_table, store_summary_table
from repro.store import CampaignManager, ResultStore

ARRAY_SIZE = 1024
CONFIG = NSGA2Config(population_size=16, generations=6, seed=3)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="easyacim-smoke-") as tmp:
        store_path = Path(tmp) / "store.sqlite"

        # 1. Start, then "kill" after two generations.
        with ResultStore(store_path) as store:
            manager = CampaignManager(store)
            interrupted = manager.run(
                "smoke", ARRAY_SIZE, config=CONFIG, stop_after_generations=2
            )
            assert interrupted.status == "interrupted", interrupted.status
            print(f"interrupted at generation "
                  f"{interrupted.generations_done}/{CONFIG.generations} "
                  f"({store.checkpoint_count('smoke')} checkpoints committed)")

        # 2. Resume from the store file alone (fresh handles, as a new
        #    process would) and run to completion.
        with ResultStore(store_path) as store:
            resumed = CampaignManager(store).resume("smoke")
            assert resumed.status == "completed", resumed.status
            print(f"resumed to completion: {len(resumed.pareto_set)} "
                  f"Pareto solutions, {resumed.evaluations} evaluations")

            # 3. Bit-identity against an uninterrupted exploration.
            reference = DesignSpaceExplorer(config=CONFIG).explore(ARRAY_SIZE)
            signature = lambda designs: [
                (d.spec.as_tuple(), d.objectives) for d in designs
            ]
            if signature(resumed.pareto_set) != signature(reference.pareto_set):
                print("FAIL: resumed Pareto front differs from the "
                      "uninterrupted run")
                return 1
            print("kill -> resume Pareto front is bit-identical to the "
                  "uninterrupted run")

        # 4. Overlapping second campaign warm-starts from the store.
        with ResultStore(store_path) as store:
            second = CampaignManager(store).run(
                "smoke-overlap", ARRAY_SIZE,
                config=NSGA2Config(population_size=16, generations=3, seed=9),
            )
            store_hits = second.engine_stats.get("store_hits", 0)
            if store_hits <= 0:
                print("FAIL: overlapping campaign saw no persistent-store hits")
                return 1
            print(f"overlapping campaign served {store_hits} evaluations "
                  f"from the persistent store")

            # 5. Cross-campaign query.
            entries = store.query(
                criteria=DistillationCriteria(min_snr_db=0.0),
                rank_by="tops_per_watt", limit=5,
            )
            print()
            print(format_table(store_summary_table(store.stats())))
            print()
            print(format_table(stored_design_table(entries)))
        print("\ncampaign smoke: OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
