#!/usr/bin/env python3
"""Match Pareto-frontier macros to application scenarios (paper Figure 1).

The paper motivates EasyACIM with the gap between a fixed ACIM macro and
the diverging requirements of transformers, CNNs and SNNs.  This example
makes that concrete:

1. explore the 16 kb design space,
2. map each example network (transformer block, edge CNN, spiking MLP)
   onto every Pareto solution,
3. report, per scenario, the best solution that meets its accuracy (SNR)
   and real-time requirements — and show that no single solution is the
   best choice for all three.

Run with::

    python examples/application_scenarios.py
"""

from __future__ import annotations

from repro.api import ExploreRequest, Session
from repro.apps import ApplicationEvaluator, example_cnn, example_snn, example_transformer
from repro.flow.report import format_table

ARRAY_SIZE = 16 * 1024


def main() -> None:
    with Session() as session:
        result = session.explore(ExploreRequest(
            array_size=ARRAY_SIZE, population=60, generations=30, seed=11))
    pareto_set = result.artifacts["pareto_set"]
    print(f"Explored {ARRAY_SIZE // 1024} kb design space: "
          f"{len(pareto_set)} Pareto solutions\n")

    evaluator = ApplicationEvaluator()
    networks = [example_transformer(), example_cnn(), example_snn()]

    winners = {}
    for network in networks:
        evaluations = [
            evaluator.evaluate(design.spec, network)
            for design in pareto_set
        ]
        feasible = [e for e in evaluations if e.meets_all_requirements]
        if feasible:
            # Among solutions meeting the requirements, pick the most efficient.
            best = min(feasible, key=lambda e: e.energy_per_inference)
        else:
            # Nothing meets every requirement (e.g. a very accuracy-hungry
            # network on a small array): show the most accurate option.
            best = max(evaluations, key=lambda e: e.effective_snr_db)
        winners[network.name] = best

        print("=" * 70)
        print(f"Scenario: {network.name}  "
              f"(min SNR {network.min_snr_db} dB, "
              f"target {network.target_inferences_per_second} inf/s)")
        print("=" * 70)
        rows = sorted((e.as_dict() for e in evaluations),
                      key=lambda r: r["energy_uJ_per_inference"])[:5]
        print(format_table(rows))
        print(f"selected macro: H={best.spec.height} W={best.spec.width} "
              f"L={best.spec.local_array_size} B_ADC={best.spec.adc_bits} "
              f"({'meets' if best.meets_all_requirements else 'closest to'} "
              f"requirements)\n")

    distinct = {winner.spec.as_tuple() for winner in winners.values()}
    print("=" * 70)
    print("Per-scenario winners:")
    print(format_table([
        {
            "scenario": name,
            "H": winner.spec.height,
            "W": winner.spec.width,
            "L": winner.spec.local_array_size,
            "B_ADC": winner.spec.adc_bits,
            "effective_SNR_dB": round(winner.effective_snr_db, 1),
            "energy_uJ_per_inf": round(winner.energy_per_inference * 1e6, 3),
        }
        for name, winner in winners.items()
    ]))
    print(f"\ndistinct winning macros: {len(distinct)} of {len(winners)} scenarios — "
          "no single fixed macro is optimal for every application, which is "
          "exactly the gap the synthesizable architecture closes.")


if __name__ == "__main__":
    main()
