#!/usr/bin/env python3
"""Post-layout sign-off: extraction, back-annotation, yield and hand-off views.

After the automated flow produces a macro, a designer still wants to know
(1) how much the pre-layout estimates drift once real wire parasitics are
known, (2) whether the macro meets its SNR specification across mismatch,
and (3) the artefacts needed to integrate and verify the macro elsewhere.
This example walks that sign-off sequence for a Figure-8(b) style column:

* generate and route the macro, extract the read-bitline parasitics,
* back-annotate the timing/energy model and compare pre vs post layout,
* run a mismatch yield analysis against the CNN scenario's SNR target,
* emit the hand-off files: GDSII, DEF, LEF abstract and a SPICE testbench.

Run with::

    python examples/post_layout_signoff.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import ACIMDesignSpec, ACIMEstimator, default_cell_library, generic28
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.report import format_table
from repro.flow.testbench import TestbenchGenerator
from repro.layout.lef_export import write_macro_lef, write_tech_lef
from repro.model.backannotate import BackAnnotator
from repro.sim.yield_analysis import MismatchYieldAnalyzer

SPEC = ACIMDesignSpec(128, 8, 8, 3)   # one-column-slice version of Fig. 8(b)
SNR_SPEC_DB = 5.0                      # per-column SNR requirement (dB)


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("signoff_out")
    output_dir.mkdir(parents=True, exist_ok=True)

    technology = generic28()
    library = default_cell_library(technology)

    # ------------------------------------------------------------------
    # 1. Generate and route the macro, extract parasitics, back-annotate.
    # ------------------------------------------------------------------
    print(f"Generating macro for {SPEC.describe()} ...")
    layout_report = LayoutGenerator(library).generate(
        SPEC, route_column=True, export=True, output_dir=str(output_dir))
    annotator = BackAnnotator(technology)
    annotation = annotator.annotate(SPEC, layout_report.layout)
    rbl = annotation.parasitics.net("RBL")

    pre = ACIMEstimator(annotation.pre_layout).evaluate(SPEC)
    post = ACIMEstimator(annotation.post_layout).evaluate(SPEC)
    print("\nPre-layout vs post-layout estimates:")
    print(format_table([
        {"view": "pre-layout", "TOPS": round(pre.tops, 3),
         "fJ_per_MAC": round(pre.energy_per_mac * 1e15, 3),
         "tau_ns": round(annotation.tau_pre * 1e9, 3)},
        {"view": "post-layout", "TOPS": round(post.tops, 3),
         "fJ_per_MAC": round(post.energy_per_mac * 1e15, 3),
         "tau_ns": round(annotation.tau_post * 1e9, 3)},
    ]))
    print(f"RBL: {rbl.wirelength_um:.1f} um wire, "
          f"{rbl.capacitance * 1e15:.2f} fF, {rbl.resistance:.1f} ohm, "
          f"{rbl.via_count} vias")
    print(f"cycle-time drift {annotation.cycle_time_change * 100:.2f} %, "
          f"energy drift {annotation.energy_change * 100:.2f} %")

    # ------------------------------------------------------------------
    # 2. Mismatch yield against the SNR specification.
    # ------------------------------------------------------------------
    print("\nMismatch yield analysis:")
    result = MismatchYieldAnalyzer(SPEC, seed=17).run(
        snr_spec_db=SNR_SPEC_DB, instances=24, trials_per_instance=150)
    print(format_table([{
        "SNR_spec_dB": SNR_SPEC_DB,
        "instances": result.instances,
        "SNR_mean_dB": round(result.snr_mean_db, 2),
        "SNR_sigma_dB": round(result.snr_std_db, 2),
        "SNR_min_dB": round(result.snr_min_db, 2),
        "yield": f"{result.yield_fraction * 100:.1f} %",
    }]))

    # ------------------------------------------------------------------
    # 3. Hand-off artefacts: LEF abstract and SPICE testbench.
    # ------------------------------------------------------------------
    netlist = TemplateNetlistGenerator(library).generate(SPEC)
    testbench_path = output_dir / f"{netlist.name}_tb.sp"
    TestbenchGenerator().write(SPEC, netlist, testbench_path)
    tech_lef = output_dir / "generic28_tech.lef"
    macro_lef = output_dir / f"{layout_report.layout.name}.lef"
    write_tech_lef(technology, tech_lef)
    write_macro_lef(layout_report.layout, technology, macro_lef)

    print("\nHand-off files written:")
    for path in (layout_report.gds_path, layout_report.def_path,
                 str(macro_lef), str(tech_lef), str(testbench_path)):
        print(f"  {path}")


if __name__ == "__main__":
    main()
