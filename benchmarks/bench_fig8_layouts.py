"""Experiment E2 — Figure 8: layouts of a 16 kb ACIM with various specifications.

Regenerates the three published 16 kb, B_ADC = 3 design points end to end
(netlist -> template-based hierarchical placement -> routing) and reports
the same quantities the paper annotates in Figure 8: die dimensions,
throughput and normalised area.  Paper reference values:

    (a) H=128, L=2 : 3.277 TOPS, 4504 F^2/bit, ~226 um x 256 um
    (b) H=128, L=8 : 0.813 TOPS, 2610 F^2/bit, ~256 um x 131 um
    (c) H=64,  L=8 : 0.813 TOPS, 2977 F^2/bit, ~510 um x  75 um

The reproduction's layouts add a thin peripheral buffer ring, so the
generated dies are a few percent larger than the Equation-10 model and the
paper's annotations; the relative ordering and ratios are preserved.
"""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.report import format_table
from repro.model.calibration import FIGURE8_REFERENCE

from bench_reporting import emit

#: (label, spec, paper TOPS, paper F^2/bit, paper die W um, paper die H um)
FIGURE8_CASES = [
    ("a", ACIMDesignSpec(128, 128, 2, 3), 3.277, 4504.0, 256.0, 226.0),
    ("b", ACIMDesignSpec(128, 128, 8, 3), 0.813, 2610.0, 256.0, 131.0),
    ("c", ACIMDesignSpec(64, 256, 8, 3), 0.813, 2977.0, 510.0, 75.0),
]


@pytest.mark.parametrize("label,spec,paper_tops,paper_f2,paper_w,paper_h",
                         FIGURE8_CASES, ids=["fig8a", "fig8b", "fig8c"])
def test_fig8_layout_generation(benchmark, cell_library, estimator,
                                label, spec, paper_tops, paper_f2, paper_w, paper_h):
    """Generate one Figure-8 layout and compare against the published point."""
    generator = LayoutGenerator(cell_library)
    report = benchmark(generator.generate, spec, route_column=True)
    metrics = estimator.evaluate(spec)
    rows = [{
        "config": f"Fig.8({label}) H={spec.height} L={spec.local_array_size}",
        "paper_TOPS": paper_tops,
        "repro_TOPS": round(metrics.tops, 3),
        "paper_F2_per_bit": paper_f2,
        "model_F2_per_bit": round(metrics.area_f2_per_bit, 0),
        "layout_F2_per_bit": round(report.area_f2_per_bit, 0),
        "paper_die_um": f"{paper_w:.0f} x {paper_h:.0f}",
        "repro_die_um": f"{report.width_um:.0f} x {report.height_um:.0f}",
        "routed_nets": report.routed_nets,
    }]
    emit(f"Figure 8({label}) — 16 kb ACIM layout", format_table(rows))

    # Model-level agreement with the paper's annotations.
    assert metrics.tops == pytest.approx(paper_tops, rel=0.03)
    assert metrics.area_f2_per_bit == pytest.approx(paper_f2, rel=0.01)
    # Layout-level agreement: dies land within ~6% of the published sizes
    # (the periphery accounts for the systematic excess).
    assert report.width_um == pytest.approx(paper_w, rel=0.06)
    assert report.height_um == pytest.approx(paper_h, rel=0.06)
    assert report.failed_nets == 0


def test_fig8_relative_tradeoffs(benchmark, cell_library, estimator):
    """The qualitative claims of Figure 8 hold between the three layouts."""
    generator = LayoutGenerator(cell_library)

    def generate_all():
        return {
            label: generator.generate(spec, route_column=False)
            for label, spec, *_ in FIGURE8_CASES
        }

    reports = benchmark(generate_all)
    metrics = {label: estimator.evaluate(spec) for label, spec, *_ in FIGURE8_CASES}

    # (a) trades area for throughput relative to (b): L = 2 vs L = 8 gives
    # exactly four times the MACs per cycle.
    assert metrics["a"].tops == pytest.approx(4 * metrics["b"].tops, rel=0.01)
    assert reports["a"].area_um2 > 1.5 * reports["b"].area_um2
    # (c) achieves higher SNR than (b) at the same throughput, paying area.
    assert metrics["c"].snr_db > metrics["b"].snr_db
    assert metrics["c"].tops == pytest.approx(metrics["b"].tops, rel=1e-6)
    assert reports["c"].area_um2 > reports["b"].area_um2

    rows = [
        {
            "config": label,
            "TOPS": round(metrics[label].tops, 3),
            "SNR_dB": round(metrics[label].snr_db, 2),
            "area_um2": round(reports[label].area_um2, 0),
            "F2_per_bit": round(reports[label].area_f2_per_bit, 0),
        }
        for label, *_ in FIGURE8_CASES
    ]
    emit("Figure 8 — relative trade-offs across the three layouts",
         format_table(rows))


def test_fig8_netlist_generation(benchmark, cell_library):
    """Netlist generation for the Figure-8(b) macro (16 kb, 128 columns)."""
    generator = TemplateNetlistGenerator(cell_library)
    spec = ACIMDesignSpec(128, 128, 8, 3)
    macro = benchmark(generator.generate, spec)
    from repro.netlist.traversal import count_leaf_instances

    counts = count_leaf_instances(macro)
    emit("Figure 8(b) — generated macro netlist content", format_table([{
        "sram8t": counts["sram8t"],
        "local_compute": counts["local_compute"],
        "comparator": counts["comparator"],
        "sar_dff": counts["sar_dff"],
        "input_buffer": counts["input_buffer"],
        "output_buffer": counts["output_buffer"],
    }]))
    assert counts["sram8t"] == spec.array_size


def test_fig8_reference_table_is_self_consistent():
    """The calibration reference table matches the benchmark's case list."""
    for _label, spec, paper_tops, paper_f2, *_ in FIGURE8_CASES:
        reference = FIGURE8_REFERENCE[spec.as_tuple()]
        assert reference == (paper_tops, paper_f2)
