"""Experiment A1 — ablation: NSGA-II explorer vs exhaustive enumeration.

The paper chose NSGA-II for the design-space explorer; for the array sizes
it studies the discrete space is small enough to enumerate, so the natural
ablation is to compare the genetic explorer against the brute-force
baseline on (a) frontier quality — hypervolume of the energy/area
projection and extreme-point coverage — and (b) the number of model
evaluations spent.  The genetic explorer should reach essentially the same
frontier with a fraction of the evaluations, which is what makes it the
right tool once the estimation model becomes more expensive (e.g. backed by
simulation instead of closed-form equations).
"""

from __future__ import annotations

import pytest

from repro.dse.exhaustive import evaluate_all, exhaustive_pareto_front
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import hypervolume_2d
from repro.flow.report import format_table

from bench_reporting import emit

ARRAY_SIZE = 16 * 1024
REFERENCE_POINT = (50.0, 10.0)  # (fJ/MAC, kF^2/bit) — worse than any design.


def _projection(designs):
    return [(d.metrics.energy_per_mac * 1e15, d.metrics.area_f2_per_bit / 1e3)
            for d in designs]


def test_ablation_exhaustive_enumeration(benchmark, estimator):
    """Cost and outcome of the brute-force baseline."""
    designs = benchmark(evaluate_all, ARRAY_SIZE, estimator=estimator)
    front = exhaustive_pareto_front(ARRAY_SIZE, estimator=estimator)
    hv = hypervolume_2d(_projection(front), REFERENCE_POINT)
    emit("Ablation A1 — exhaustive enumeration", format_table([{
        "evaluations": len(designs),
        "pareto_solutions": len(front),
        "energy_area_hypervolume": round(hv, 2),
    }]))
    assert len(front) > 100


@pytest.mark.parametrize("generations", [10, 40], ids=["short", "long"])
def test_ablation_nsga2_quality_vs_budget(benchmark, estimator, generations):
    """Frontier quality of NSGA-II as a function of the generation budget."""
    config = NSGA2Config(population_size=60, generations=generations, seed=31)
    explorer = DesignSpaceExplorer(estimator=estimator, config=config)
    result = benchmark(explorer.explore, ARRAY_SIZE)

    truth = exhaustive_pareto_front(ARRAY_SIZE, estimator=estimator)
    hv_truth = hypervolume_2d(_projection(truth), REFERENCE_POINT)
    hv_found = hypervolume_2d(_projection(result.pareto_set), REFERENCE_POINT)
    coverage = hv_found / hv_truth if hv_truth else 0.0

    emit(f"Ablation A1 — NSGA-II ({generations} generations)", format_table([{
        "evaluations": result.evaluations,
        "pareto_solutions": len(result.pareto_set),
        "hypervolume_coverage": round(coverage, 4),
    }]))

    # Even the short budget must reach most of the exhaustive hypervolume,
    # and every reported solution must be feasible for the array size.
    assert coverage >= 0.85
    assert all(d.spec.is_feasible(ARRAY_SIZE) for d in result.pareto_set)


def test_ablation_nsga2_uses_fewer_unique_evaluations(estimator):
    """The GA touches far fewer distinct design points than enumeration."""
    config = NSGA2Config(population_size=40, generations=20, seed=8)
    from repro.dse.problem import ACIMDesignProblem
    from repro.dse.nsga2 import NSGA2
    from repro.engine import EvaluationCache, EvaluationEngine

    # A private engine+cache so the count reflects this run's unique specs,
    # not whatever the process-wide shared cache already holds.
    engine = EvaluationEngine("serial", cache=EvaluationCache())
    problem = ACIMDesignProblem(ARRAY_SIZE, estimator=estimator, engine=engine)
    optimizer = NSGA2(problem, config)
    optimizer.run()
    unique_points = engine.stats.evaluations
    total_points = len(evaluate_all(ARRAY_SIZE, estimator=estimator))

    emit("Ablation A1 — evaluation economy", format_table([{
        "unique_points_evaluated_by_nsga2": unique_points,
        "total_feasible_points": total_points,
        "fraction": round(unique_points / total_points, 3),
    }]))
    assert unique_points <= total_points
