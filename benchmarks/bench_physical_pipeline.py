#!/usr/bin/env python3
"""Speedup benchmark of the reuse-aware physical pipeline (ISSUE 5).

Measures the layout generation of a multi-design distill set — the
dominant cost when a campaign distills many Pareto designs — three ways:

1. **flat** — the pre-pipeline baseline: every design solved from
   scratch through a reuse-off :class:`PhysicalPipeline` (geometry
   identical to the historical generator),
2. **cold reuse** — a fresh reuse pipeline with a persistent store:
   macros shared *across* the designs of the set are solved once,
3. **warm reuse** — a second fresh pipeline on the same store,
   simulating the next flow run / process of the campaign: everything is
   served from the content-addressed artifact cache.

The gate asserts warm reuse is >= 5x faster than flat, and that the warm
output is GDSII byte-identical to the flat baseline for every design.
Like the engine-scaling gate, enforcement is relaxed on single-core
hosts (the numbers are still recorded).

Run with::

    python benchmarks/bench_physical_pipeline.py          # record baseline
    python benchmarks/bench_physical_pipeline.py --quick  # CI smoke (no write)

Results are written to ``benchmarks/BENCH_physical.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import default_cell_library
from repro.layout.gdsii import write_gds
from repro.physical import PhysicalPipeline
from repro.store.result_store import ResultStore
from repro.technology.tech import generic28

#: The distill set: designs of one campaign family sharing sub-structure
#: (same L everywhere, columns shared between equal-H pairs) — the shape
#: a real multi-design distillation produces.
FULL_SET = [
    ACIMDesignSpec(64, 4, 4, 3),
    ACIMDesignSpec(64, 8, 4, 3),
    ACIMDesignSpec(64, 16, 4, 3),
    ACIMDesignSpec(128, 4, 4, 3),
    ACIMDesignSpec(128, 8, 4, 3),
    ACIMDesignSpec(32, 8, 4, 2),
]

QUICK_SET = [
    ACIMDesignSpec(16, 4, 4, 2),
    ACIMDesignSpec(16, 8, 4, 2),
    ACIMDesignSpec(32, 4, 4, 2),
]


def generate_all(pipeline: PhysicalPipeline, specs) -> dict:
    """Layouts for the whole set; returns {macro name: layout}."""
    layouts = {}
    for spec in specs:
        report = pipeline.run(spec, route_columns=True).report
        layouts[report.layout.name] = report.layout
    return layouts


def gds_bytes(layouts: dict, technology, directory: Path, tag: str) -> dict:
    out = {}
    for name, layout in layouts.items():
        path = directory / f"{tag}_{name}.gds"
        write_gds(layout, path, technology)
        out[name] = path.read_bytes()
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller design set, no baseline write")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_physical.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the 5x gate")
    args = parser.parse_args(argv)

    specs = QUICK_SET if args.quick else FULL_SET
    technology = generic28()
    library = default_cell_library(technology)
    cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        store = ResultStore(tmp_path / "artifacts.sqlite")

        # 1. Flat baseline: every design from scratch (pre-pipeline path).
        flat = PhysicalPipeline(library, reuse=False)
        start = time.perf_counter()
        flat_layouts = generate_all(flat, specs)
        flat_s = time.perf_counter() - start

        # 2. Cold reuse: macro sharing across the design set.
        cold = PhysicalPipeline(library, store=store)
        start = time.perf_counter()
        generate_all(cold, specs)
        cold_s = time.perf_counter() - start
        cold_stats = cold.stats.as_dict()

        # 3. Warm reuse: the next flow run / process on the same store.
        warm = PhysicalPipeline(library, store=store)
        start = time.perf_counter()
        warm_layouts = generate_all(warm, specs)
        warm_s = time.perf_counter() - start
        warm_stats = warm.stats.as_dict()
        store.close()

        flat_bytes = gds_bytes(flat_layouts, technology, tmp_path, "flat")
        warm_bytes = gds_bytes(warm_layouts, technology, tmp_path, "warm")

    if set(flat_bytes) != set(warm_bytes):
        print("FAIL: flat and warm runs produced different design sets")
        return 1
    mismatched = [name for name in flat_bytes
                  if flat_bytes[name] != warm_bytes[name]]
    if mismatched:
        print(f"FAIL: warm reuse not byte-identical to flat for {mismatched}")
        return 1
    print(f"byte-identity: {len(flat_bytes)} GDSII streams identical "
          "(flat vs warm reuse)")

    n = len(specs)
    warm_speedup = flat_s / warm_s
    cold_speedup = flat_s / cold_s
    record = {
        "benchmark": "physical_pipeline",
        "designs": n,
        "cpu": platform.processor() or platform.machine(),
        "cores": cores,
        "python": platform.python_version(),
        "flat": {"seconds": round(flat_s, 6)},
        "cold_reuse": {
            "seconds": round(cold_s, 6),
            "macros_built": cold_stats["macros_built"],
            "macros_reused": cold_stats["macros_reused"],
        },
        "warm_reuse": {
            "seconds": round(warm_s, 6),
            "macros_built": warm_stats["macros_built"],
            "macros_reused": warm_stats["macros_reused"],
            "store_hits": warm_stats["stages"]["layout"]["store_hits"],
        },
        "cold_speedup": round(cold_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
    }
    print(f"    flat (no reuse) : {flat_s * 1e3:9.1f} ms for {n} designs")
    print(f"    cold reuse      : {cold_s * 1e3:9.1f} ms "
          f"({cold_stats['macros_reused']} macros reused in-set, "
          f"{cold_speedup:.2f}x)")
    print(f"    warm reuse      : {warm_s * 1e3:9.1f} ms "
          f"(artifact cache, {warm_speedup:.2f}x)")

    # Like the engine gate, single-core hosts record but do not enforce.
    gate_applies = cores >= 2 and not args.no_assert
    record["speedup_gate"] = {
        "threshold": 5.0,
        "enforced": gate_applies,
        "passed": warm_speedup >= 5.0 if gate_applies else None,
    }
    if gate_applies and warm_speedup < 5.0:
        print(f"FAIL: warm reuse speedup {warm_speedup:.2f}x < 5x gate")
        return 1
    status = "OK" if warm_speedup >= 5.0 else "RELAXED"
    print(f"{status}: warm reuse {warm_speedup:.2f}x over the flat baseline "
          f"(gate: 5x, {'enforced' if gate_applies else 'recorded only'})")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
