#!/usr/bin/env python3
"""Near-miss template reuse benchmark (ISSUE 8).

Sweeps a 20-design neighbouring-configuration family — one ``(W, L)``
geometry, every feasible ``(H, B_ADC)`` — the shape an NSGA-II campaign
or an ADC-resolution study produces, and measures the column solves two
ways:

1. **flat** — every design placed and routed from scratch through a
   reuse-off :class:`PhysicalPipeline` (the exact-match-only baseline:
   each ``(H, B)`` has a unique content address, so PR 5's macro cache
   never hits);
2. **template** — a reuse pipeline with a persistent store: the first
   design of the family solves cold, every later one derives from the
   nearest solved template by incremental patch (replayed route plans +
   delta-band searches).

The gate asserts the place-and-route time of the *template-patched*
solves is >= 5x cheaper than the flat solves of the same designs, and
that every patched design's GDSII is byte-identical to the flat
baseline.  A final cold-process segment re-opens the store and derives a
fresh design through the ``template_index`` nearest-neighbour rung.
Like the engine-scaling gate, enforcement is relaxed on single-core
hosts (the numbers are still recorded).

Run with::

    python benchmarks/bench_template_reuse.py          # record baseline
    python benchmarks/bench_template_reuse.py --quick  # CI smoke (no write)

Results are written to ``benchmarks/BENCH_template.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import default_cell_library
from repro.layout.gdsii import write_gds
from repro.physical import PhysicalPipeline
from repro.store.result_store import ResultStore
from repro.technology.tech import generic28

#: One template family: fixed (W, L), every feasible (H, B_ADC) — 20
#: neighbouring configurations whose columns differ by rows or SAR stack.
FULL_FAMILY = [(16, 2), (32, 3), (64, 4), (128, 5), (256, 6)]
QUICK_FAMILY = [(16, 2), (32, 3)]

#: A design outside the sweep (non-power-of-two height, so its column is
#: never solved exactly by the sweep) used to exercise the store-backed
#: nearest-neighbour rung from a cold process.
COLD_PROCESS_SPEC = ACIMDesignSpec(96, 8, 4, 2)


def sweep_specs(family) -> list:
    return [
        ACIMDesignSpec(height, 4, 4, bits)
        for height, max_bits in family
        for bits in range(1, max_bits + 1)
    ]


def solve(pipeline: PhysicalPipeline, spec: ACIMDesignSpec) -> dict:
    """One design through ``pipeline``; place+route seconds and deltas."""
    baseline = pipeline.stats.snapshot()
    start = time.perf_counter()
    report = pipeline.run(spec, route_columns=True).report
    total = time.perf_counter() - start
    delta = pipeline.stats.since(baseline)
    return {
        "spec": spec.as_tuple(),
        "layout": report.layout,
        "total_s": total,
        "solve_s": (delta.stage("placement").seconds
                    + delta.stage("routing").seconds),
        "derived": delta.macros_derived,
        "built": delta.macros_built,
    }


def gds_of(layout, technology, directory: Path, tag: str) -> bytes:
    path = directory / f"{tag}.gds"
    write_gds(layout, path, technology)
    return path.read_bytes()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller sweep, no baseline write")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_template.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the 5x gate")
    args = parser.parse_args(argv)

    specs = sweep_specs(QUICK_FAMILY if args.quick else FULL_FAMILY)
    technology = generic28()
    library = default_cell_library(technology)
    cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        store = ResultStore(tmp_path / "artifacts.sqlite")

        flat = PhysicalPipeline(library, reuse=False)
        template = PhysicalPipeline(library, store=store)
        flat_runs = [solve(flat, spec) for spec in specs]
        template_runs = [solve(template, spec) for spec in specs]

        mismatched = []
        for flat_run, template_run in zip(flat_runs, template_runs):
            tag = "x".join(str(v) for v in flat_run["spec"])
            if gds_of(flat_run["layout"], technology, tmp_path, f"f{tag}") \
                    != gds_of(template_run["layout"], technology, tmp_path,
                              f"t{tag}"):
                mismatched.append(flat_run["spec"])
        if mismatched:
            print(f"FAIL: template solves not byte-identical to flat "
                  f"for {mismatched}")
            return 1
        print(f"byte-identity: {len(specs)} GDSII streams identical "
              "(template-patched vs flat)")

        # Cold process on the same store: the template_index rung.
        cold = PhysicalPipeline(library, store=store)
        cold_run = solve(cold, COLD_PROCESS_SPEC)
        cold_reference = solve(flat, COLD_PROCESS_SPEC)
        cold_identical = gds_of(
            cold_run["layout"], technology, tmp_path, "cold") == gds_of(
            cold_reference["layout"], technology, tmp_path, "coldref")
        store.close()
    if not cold_identical:
        print("FAIL: store-derived solve not byte-identical to flat")
        return 1
    if cold.macro_library.derived_from_store < 1:
        print("FAIL: cold process derived nothing from the store index")
        return 1
    print(f"store rung: cold process derived "
          f"{cold.macro_library.derived_from_store} macro(s) from the "
          f"template_index table, byte-identical")

    derived_pairs = [
        (flat_run, template_run)
        for flat_run, template_run in zip(flat_runs, template_runs)
        if template_run["derived"] >= 1
    ]
    flat_solve_s = sum(f["solve_s"] for f, _ in derived_pairs)
    patched_solve_s = sum(t["solve_s"] for _, t in derived_pairs)
    speedup = flat_solve_s / patched_solve_s if patched_solve_s else 0.0
    total_speedup = (sum(r["total_s"] for r in flat_runs)
                     / sum(r["total_s"] for r in template_runs))

    n = len(specs)
    record = {
        "benchmark": "template_reuse",
        "designs": n,
        "derived_designs": len(derived_pairs),
        "cpu": platform.processor() or platform.machine(),
        "cores": cores,
        "python": platform.python_version(),
        "flat": {"solve_seconds": round(flat_solve_s, 6)},
        "template": {
            "solve_seconds": round(patched_solve_s, 6),
            "macros_built": template.stats.macros_built,
            "macros_derived": template.stats.macros_derived,
            "macros_reused": template.stats.macros_reused,
            "derived_from_store": cold.macro_library.derived_from_store,
        },
        "patched_speedup": round(speedup, 2),
        "end_to_end_speedup": round(total_speedup, 2),
    }
    print(f"    flat solves     : {flat_solve_s * 1e3:9.1f} ms "
          f"place+route over {len(derived_pairs)} derived designs")
    print(f"    patched solves  : {patched_solve_s * 1e3:9.1f} ms "
          f"({template.stats.macros_derived} template derives, "
          f"{speedup:.2f}x)")
    print(f"    end to end      : {total_speedup:.2f}x over {n} designs")

    # Like the engine gate, single-core hosts record but do not enforce.
    gate_applies = cores >= 2 and not args.no_assert
    record["speedup_gate"] = {
        "threshold": 5.0,
        "enforced": gate_applies,
        "passed": speedup >= 5.0 if gate_applies else None,
    }
    if gate_applies and speedup < 5.0:
        print(f"FAIL: template-patched speedup {speedup:.2f}x < 5x gate")
        return 1
    status = "OK" if speedup >= 5.0 else "RELAXED"
    print(f"{status}: template-patched solves {speedup:.2f}x over flat "
          f"(gate: 5x, {'enforced' if gate_applies else 'recorded only'})")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
