"""Experiment E7 — Figure 10: EasyACIM design space vs SOTA ACIMs.

Figure 10 scatters the generated design space on the (energy efficiency,
area) plane, highlights its Pareto frontier, and overlays three published
silicon designs (A: JSSC'23, B: JSSC'22, C: ISSCC'20).  This benchmark
regenerates the frontier, prints the series, and checks the paper's claims:

* the design space spans roughly 50-750 TOPS/W and 1500-7500 F^2/bit,
* for every SOTA reference the space contains solutions that are at least
  as energy-efficient and solutions that are at least as area-efficient
  (i.e. the generated frontier is competitive with hand-crafted silicon).
"""

from __future__ import annotations

from typing import List

import pytest

from repro.dse.exhaustive import evaluate_all
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front
from repro.dse.problem import EvaluatedDesign
from repro.flow.report import format_table
from repro.sota import SOTA_DESIGNS, compare_with_design_space

from bench_reporting import emit

ARRAY_SIZES = (4 * 1024, 16 * 1024, 64 * 1024)


def _efficiency_area_front(designs: List[EvaluatedDesign]) -> List[EvaluatedDesign]:
    """Pareto frontier on the Figure-10 plane (maximise TOPS/W, minimise F^2/bit)."""
    points = [(-d.metrics.tops_per_watt, d.metrics.area_f2_per_bit) for d in designs]
    return [designs[i] for i in pareto_front(points)]


def test_fig10_design_space_and_frontier(benchmark, estimator):
    """Regenerate the Figure-10 scatter data and its blue dashed frontier."""

    def build_space():
        designs: List[EvaluatedDesign] = []
        for size in ARRAY_SIZES:
            designs.extend(evaluate_all(size, estimator=estimator))
        return designs

    designs = benchmark(build_space)
    frontier = _efficiency_area_front(designs)
    frontier.sort(key=lambda d: d.metrics.area_f2_per_bit)

    rows = [
        {
            "H": d.spec.height,
            "W": d.spec.width,
            "L": d.spec.local_array_size,
            "B_ADC": d.spec.adc_bits,
            "TOPS_per_W": round(d.metrics.tops_per_watt, 0),
            "F2_per_bit": round(d.metrics.area_f2_per_bit, 0),
        }
        for d in frontier
    ]
    emit("Figure 10 — energy-efficiency/area Pareto frontier (blue dashed line)",
         format_table(rows))

    efficiencies = [d.metrics.tops_per_watt for d in designs]
    areas = [d.metrics.area_f2_per_bit for d in designs]
    emit("Figure 10 — design-space extent", format_table([{
        "points": len(designs),
        "TOPS_per_W_min": round(min(efficiencies), 0),
        "TOPS_per_W_max": round(max(efficiencies), 0),
        "F2_per_bit_min": round(min(areas), 0),
        "F2_per_bit_max": round(max(areas), 0),
    }]))

    # Paper claim: ~50-750 TOPS/W and ~1500-7500 F^2/bit across the space.
    assert min(efficiencies) < 100
    assert max(efficiencies) > 600
    assert min(areas) < 2100
    assert max(areas) > 6000
    assert len(frontier) >= 3


def test_fig10_sota_overlay(benchmark, estimator):
    """Overlay Designs A/B/C and check the competitiveness claim."""
    designs = []
    for size in ARRAY_SIZES:
        designs.extend(evaluate_all(size, estimator=estimator))

    report = benchmark(compare_with_design_space, designs)

    rows = []
    for reference in SOTA_DESIGNS:
        entry = report[reference.label]
        rows.append({
            "design": f"{reference.label} ({reference.venue})",
            "ref_TOPS_per_W": reference.energy_efficiency_tops_w,
            "ref_F2_per_bit": reference.area_f2_per_bit,
            "better_efficiency": entry["solutions_with_better_efficiency"],
            "better_area": entry["solutions_with_better_area"],
            "dominating": entry["solutions_dominating"],
        })
    emit("Figure 10 — comparison with SOTA ACIM designs", format_table(rows))

    assert all(entry["covered"] for entry in report.values())
    # At least one reference should be matched-or-beaten on both axes at once.
    assert any(entry["solutions_dominating"] > 0 for entry in report.values())


def test_fig10_explorer_reaches_the_same_frontier(benchmark, estimator):
    """The NSGA-II path (not just exhaustive evaluation) reaches the frontier."""
    config = NSGA2Config(population_size=80, generations=40, seed=23)
    explorer = DesignSpaceExplorer(estimator=estimator, config=config)
    result = benchmark(explorer.explore, 16 * 1024)

    exhaustive = evaluate_all(16 * 1024, estimator=estimator)
    best_eff_true = max(d.metrics.tops_per_watt for d in exhaustive)
    best_area_true = min(d.metrics.area_f2_per_bit for d in exhaustive)
    best_eff_found = max(d.metrics.tops_per_watt for d in result.pareto_set)
    best_area_found = min(d.metrics.area_f2_per_bit for d in result.pareto_set)

    emit("Figure 10 — NSGA-II frontier extremes vs exhaustive", format_table([{
        "TOPS_per_W_found": round(best_eff_found, 0),
        "TOPS_per_W_true": round(best_eff_true, 0),
        "F2_per_bit_found": round(best_area_found, 0),
        "F2_per_bit_true": round(best_area_true, 0),
        "evaluations": result.evaluations,
    }]))

    assert best_eff_found >= 0.9 * best_eff_true
    assert best_area_found <= 1.1 * best_area_true
