"""Experiments A2/A3 — architectural ablations of the synthesizable ACIM.

Two design choices of paper section 3.1 are ablated with the calibrated
area/energy models:

* **A2 — reusable CDAC capacitors.**  EasyACIM reuses the compute
  capacitors as the SAR CDAC; the ablation adds the area of a dedicated
  binary-weighted CDAC (2^B unit capacitors per column) back to Equation 10
  and measures the area overhead avoided.
* **A3 — local-array sharing.**  L bit cells share one compute capacitor
  and control circuit; the ablation sets L = 1 (a capacitor per cell, the
  Figure-1 style unscalable design) and measures the area increase, as well
  as the throughput that sharing gives up.
"""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.model.area import AreaModel, AreaParameters
from repro.model.estimator import ACIMEstimator
from repro.model.throughput import ThroughputModel
from repro.flow.report import format_table
from repro.units import um2_to_f2

from bench_reporting import emit

SPEC_16KB = ACIMDesignSpec(128, 128, 8, 3)


def _dedicated_cdac_area_per_bit(spec: ACIMDesignSpec, area: AreaParameters) -> float:
    """Extra per-bit area of a dedicated (non-reused) CDAC in F^2.

    A dedicated CDAC needs 2^B unit capacitors per column; a unit MOM
    capacitor occupies roughly one third of the local computing cell (the
    rest is the switch network), so the overhead per column is
    2^B * A_LC / 3, amortised over the column's H cells.
    """
    unit_cap_area = area.a_local_compute / 3.0
    per_column = (2 ** spec.adc_bits) * unit_cap_area
    return per_column / spec.height


def test_a2_capacitor_reuse_saves_adc_area(benchmark, estimator):
    """A2: area overhead of a dedicated CDAC vs the reused compute capacitors."""
    area_model = estimator.area_model

    def evaluate():
        rows = []
        for bits in (2, 3, 4, 5):
            spec = ACIMDesignSpec(128, 128, 4, bits)
            baseline = area_model.area_per_bit_f2(spec)
            dedicated = baseline + _dedicated_cdac_area_per_bit(
                spec, area_model.parameters)
            rows.append({
                "B_ADC": bits,
                "reused_F2_per_bit": round(baseline, 0),
                "dedicated_F2_per_bit": round(dedicated, 0),
                "overhead_percent": round(100 * (dedicated / baseline - 1), 1),
            })
        return rows

    rows = benchmark(evaluate)
    emit("Ablation A2 — reusable CDAC capacitors vs dedicated CDAC",
         format_table(rows))
    overheads = [row["overhead_percent"] for row in rows]
    # The saving exists at every precision and grows with B_ADC.
    assert all(o > 0 for o in overheads)
    assert overheads[-1] > overheads[0]


def test_a3_local_array_sharing_saves_area(benchmark, estimator):
    """A3: area of L-way sharing vs one capacitor per cell (L = 1)."""
    area_model = estimator.area_model

    def evaluate():
        rows = []
        for local in (1, 2, 4, 8, 16, 32):
            per_bit = (area_model.parameters.a_sram
                       + area_model.parameters.a_local_compute / local
                       + area_model.parameters.a_comparator / SPEC_16KB.height
                       + SPEC_16KB.adc_bits * area_model.parameters.a_dff
                       / SPEC_16KB.height)
            rows.append({"L": local, "F2_per_bit": round(per_bit, 0)})
        return rows

    rows = benchmark(evaluate)
    emit("Ablation A3 — local-array sharing factor vs per-bit area",
         format_table(rows))
    areas = [row["F2_per_bit"] for row in rows]
    assert areas == sorted(areas, reverse=True)
    # L = 8 removes well over half of the per-cell compute-capacitor area.
    assert areas[0] - areas[3] > 0.5 * area_model.parameters.a_local_compute


def test_a3_sharing_trades_throughput(benchmark):
    """A3: the throughput cost of sharing (the paper's L trade-off)."""
    model = ThroughputModel()

    def evaluate():
        rows = []
        for local in (2, 4, 8, 16):
            spec = ACIMDesignSpec(128, 128, local, 3)
            rows.append({
                "L": local,
                "TOPS": round(model.tops(spec), 3),
                "MACs_per_cycle": model.breakdown(spec).macs_per_cycle,
            })
        return rows

    rows = benchmark(evaluate)
    emit("Ablation A3 — local-array sharing factor vs throughput",
         format_table(rows))
    tops = [row["TOPS"] for row in rows]
    assert tops == sorted(tops, reverse=True)
    assert tops[0] == pytest.approx(tops[-1] * 8, rel=0.01)


def test_a2_energy_isolation_switch(benchmark, estimator):
    """A2 companion: isolating surplus capacitance keeps conversion energy flat.

    With the CMOS switch, the CDAC the comparator sees is always 2^B units,
    so the per-conversion energy depends on B alone; without it the full
    H/L capacitors would load every conversion.  The benchmark quantifies
    the energy that the switch avoids for the Figure-8(b) configuration.
    """
    from repro.sim.sar_adc import cdac_switching_energy

    def evaluate():
        spec = SPEC_16KB
        with_switch = cdac_switching_energy(spec.adc_bits)
        # Without isolation the redistribution node carries H/L unit caps.
        without_switch = cdac_switching_energy(spec.adc_bits) * (
            spec.local_arrays_per_column / spec.capacitor_units_per_column)
        return with_switch, without_switch

    with_switch, without_switch = benchmark(evaluate)
    emit("Ablation A2 — CDAC energy with and without the isolation switch",
         format_table([{
             "with_switch_fJ": round(with_switch * 1e15, 2),
             "without_switch_fJ": round(without_switch * 1e15, 2),
             "saving_percent": round(100 * (1 - with_switch / without_switch), 1),
         }]))
    assert with_switch < without_switch
