#!/usr/bin/env python3
"""Serving-layer load benchmark (ISSUE 9).

Drives a real :class:`~repro.serve.server.ReproServer` — stdlib HTTP
front end, priority job queue, worker pool, one shared session — with a
closed-loop multi-tenant client fleet:

1. **mixed load** — ``--clients`` threads (distinct tenants) each push a
   repeating estimate/query/library mix through ``POST /v1/submit`` and
   poll to completion, >= 1000 requests total in the full run; sustained
   throughput and client-observed p50/p99 latency are recorded;
2. **streamed campaign** — one tenant runs a checkpointed campaign with
   generation-by-generation SSE streaming *concurrently with* the mixed
   load, and one mid-flight cancellation is exercised on a second
   campaign (which must end ``cancelled`` and stay resumable);
3. **bit-identity** — the streamed campaign's Pareto set must equal a
   direct ``Session.submit`` of the identical request on a private
   store: the server path may change *when* generations run, never what
   they compute.

Gates (relaxed, recorded-only, on single-core hosts like the smoke CI
runner — same convention as the engine-scaling gate): sustained mixed
throughput >= 25 requests/second and client-observed p99 latency
<= 1.0 s.

Run with::

    python benchmarks/bench_serve.py          # record baseline
    python benchmarks/bench_serve.py --quick  # CI smoke (no write)

Results are written to ``benchmarks/BENCH_serve.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

from repro.api import CampaignRequest, Session, SessionConfig
from repro.serve import ReproServer, ServeClient, ServerConfig

THROUGHPUT_GATE = 25.0  # sustained mixed requests/second
P99_GATE = 1.0          # client-observed seconds, submit -> terminal

CAMPAIGN = dict(array_size=1024, population=16, generations=5, seed=11)


def mixed_request(index: int) -> dict:
    """The repeating estimate/query/library request mix."""
    slot = index % 10
    if slot < 7:
        # vary geometry so the shared cache sees hits *and* misses
        # (H/L >= 2^B feasibility holds for every combination below)
        heights = (256, 512, 1024)
        return {"kind": "estimate", "height": heights[index % 3],
                "width": 64, "adc_bits": 2 + index % 4}
    if slot < 9:
        return {"kind": "query", "what": "designs", "limit": 5,
                "offset": index % 3}
    return {"kind": "library"}


def client_loop(url: str, tenant: str, count: int,
                latencies: list, failures: list) -> None:
    """Closed loop: submit, poll to terminal, record client-side latency."""
    client = ServeClient(url)
    for index in range(count):
        request = mixed_request(index)
        start = time.perf_counter()
        try:
            accepted = client.submit(request, tenant=tenant)
            final = client.wait(accepted["job_id"], timeout=120,
                                poll_seconds=0.002)
            if final["state"] != "done":
                failures.append((tenant, index, final["state"]))
        except Exception as error:  # noqa: BLE001 - recorded, not raised
            failures.append((tenant, index, repr(error)))
        latencies.append(time.perf_counter() - start)


def percentile(values: list, fraction: float) -> float:
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(fraction * len(ranked)))]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller load, no baseline write")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop client threads / tenants")
    parser.add_argument("--requests", type=int, default=None,
                        help="total mixed requests (default 1000, quick 120)")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_serve.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the gates")
    args = parser.parse_args(argv)

    total_requests = args.requests or (120 if args.quick else 1000)
    clients = max(1, args.clients)
    per_client = max(1, total_requests // clients)
    total_requests = per_client * clients
    cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        config = ServerConfig(
            port=0,
            workers=max(4, min(8, cores * 2)),
            max_per_tenant=2,
            session=SessionConfig(store=str(tmp_path / "serve.sqlite")),
        )
        server = ReproServer(config).start()
        url = server.url

        # -- streamed campaign riding alongside the mixed load ------------
        stream_client = ServeClient(url)
        streamed = stream_client.submit(
            dict(CAMPAIGN, kind="campaign", name="bench-streamed"),
            tenant="campaigner", stream=True)
        stream_events: list = []
        stream_thread = threading.Thread(
            target=lambda: stream_events.extend(
                stream_client.stream(streamed["job_id"], timeout=600)))
        stream_thread.start()

        # -- a second campaign cancelled mid-flight ------------------------
        doomed = stream_client.submit(
            {"kind": "campaign", "name": "bench-cancelled",
             "array_size": 1024, "population": 16, "generations": 500,
             "seed": 3},
            tenant="campaigner", stream=True)
        doomed_gen = threading.Event()
        def watch_doomed():
            for event in stream_client.stream(doomed["job_id"], timeout=600):
                if event.get("event") == "generation":
                    doomed_gen.set()  # >= 1 checkpoint committed: cancel now
        doomed_thread = threading.Thread(target=watch_doomed)
        doomed_thread.start()

        # -- the mixed closed-loop fleet -----------------------------------
        latencies: list = []
        failures: list = []
        threads = [
            threading.Thread(
                target=client_loop,
                args=(url, f"tenant-{i}", per_client, latencies, failures))
            for i in range(clients)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        doomed_gen.wait(timeout=300)
        cancel_report = stream_client.cancel(doomed["job_id"])
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start

        stream_thread.join(timeout=600)
        doomed_thread.join(timeout=600)
        doomed_final = stream_client.wait(doomed["job_id"], timeout=120)
        streamed_final = stream_client.wait(streamed["job_id"], timeout=300)
        metrics = stream_client.metrics()
        server.shutdown()

    # -- bit-identity: server-streamed campaign vs direct submit -----------
    generations = [e for e in stream_events
                   if e.get("event") == "generation"]
    with tempfile.TemporaryDirectory() as tmp:
        direct = Session.from_config(
            SessionConfig(store=str(Path(tmp) / "direct.sqlite")))
        try:
            twin = direct.submit(
                CampaignRequest(name="bench-direct", **CAMPAIGN))
        finally:
            direct.close()
    streamed_payload = streamed_final["result"]["payload"]
    identical = (
        streamed_payload["pareto"] == twin.payload["pareto"]
        and streamed_payload["evaluations"] == twin.payload["evaluations"]
        and len(generations) == CAMPAIGN["generations"]
    )
    if not identical:
        print("FAIL: streamed campaign diverged from direct Session.submit")
        return 1
    print(f"bit-identity: streamed campaign == direct submit "
          f"({len(generations)} generation events, "
          f"{len(streamed_payload['pareto'])} pareto points)")

    if failures:
        print(f"FAIL: {len(failures)} of {total_requests} mixed requests "
              f"failed; first: {failures[0]}")
        return 1
    if doomed_final["state"] != "cancelled":
        print(f"FAIL: cancelled campaign ended {doomed_final['state']!r}")
        return 1
    print(f"cancellation: mid-flight cancel acknowledged "
          f"(state at request: {cancel_report['state']}), "
          f"job ended cancelled with a resumable checkpoint")

    throughput = total_requests / wall
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    counters = metrics["metrics"]
    record = {
        "benchmark": "serve",
        "requests": total_requests,
        "clients": clients,
        "server_workers": config.workers,
        "cpu": platform.processor() or platform.machine(),
        "cores": cores,
        "python": platform.python_version(),
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(throughput, 2),
        "latency_seconds": {
            "p50": round(p50, 5),
            "p99": round(p99, 5),
            "max": round(max(latencies), 5),
        },
        "streamed_campaign": {
            "generations": len(generations),
            "pareto_points": len(streamed_payload["pareto"]),
            "bit_identical_to_direct": identical,
        },
        "cancelled_campaign_state": doomed_final["state"],
        "server_counters": {
            name: value for name, value in sorted(counters.items())
            if name.startswith("serve.") and isinstance(value, (int, float))
        },
    }
    print(f"    mixed load      : {total_requests} requests, "
          f"{clients} tenants, {wall:.2f} s wall")
    print(f"    throughput      : {throughput:9.1f} req/s sustained")
    print(f"    latency         : p50 {p50 * 1e3:.1f} ms, "
          f"p99 {p99 * 1e3:.1f} ms")

    # Single-core hosts record but do not enforce (engine-gate convention).
    gate_applies = cores >= 2 and not args.no_assert
    record["throughput_gate"] = {
        "threshold_rps": THROUGHPUT_GATE,
        "enforced": gate_applies,
        "passed": throughput >= THROUGHPUT_GATE if gate_applies else None,
    }
    record["p99_gate"] = {
        "threshold_seconds": P99_GATE,
        "enforced": gate_applies,
        "passed": p99 <= P99_GATE if gate_applies else None,
    }
    if gate_applies and throughput < THROUGHPUT_GATE:
        print(f"FAIL: {throughput:.1f} req/s < {THROUGHPUT_GATE:g} gate")
        return 1
    if gate_applies and p99 > P99_GATE:
        print(f"FAIL: p99 {p99:.3f} s > {P99_GATE:g} s gate")
        return 1
    ok = throughput >= THROUGHPUT_GATE and p99 <= P99_GATE
    status = "OK" if ok else "RELAXED"
    print(f"{status}: {throughput:.1f} req/s, p99 {p99 * 1e3:.1f} ms "
          f"(gates: {THROUGHPUT_GATE:g} req/s, {P99_GATE:g} s p99, "
          f"{'enforced' if gate_applies else 'recorded only'})")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
