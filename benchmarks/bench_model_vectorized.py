#!/usr/bin/env python3
"""Throughput benchmark of the vectorized array-model core (ISSUE 3).

Compares :meth:`ACIMEstimator.evaluate_batch` — the NumPy array-kernel
path — against the retained scalar loop
(:meth:`ACIMEstimator.evaluate_batch_reference`) on a >= 10k-point design
grid built directly as a :class:`~repro.arch.batch.SpecBatch`.  Three
numbers are recorded:

1. **scalar loop** — the pre-vectorization per-spec Python loop,
2. **vectorized batch** — array kernels plus per-spec ``ACIMMetrics``
   materialisation (what the evaluation engine drives),
3. **raw arrays** — :meth:`ACIMEstimator.evaluate_arrays`, the
   structure-of-arrays hot path with no per-spec objects at all.

The gate asserts the vectorized batch path is >= 5x faster than the scalar
loop, and that the two agree within 1e-12 relative on every metric (with
bit-identical Equation-12 objectives on the power-of-two grid).

Run with::

    python benchmarks/bench_model_vectorized.py          # record baseline
    python benchmarks/bench_model_vectorized.py --quick  # CI smoke (no write)

Results are written to ``benchmarks/BENCH_model.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import time
from pathlib import Path

from repro.arch.batch import SpecBatch
from repro.model.estimator import ACIMEstimator, METRIC_FIELDS, ModelParameters


def build_grid(minimum_points: int) -> SpecBatch:
    """A >= ``minimum_points`` design grid, meshgrid-built as a SpecBatch.

    Power-of-two array sizes from 1 kb upward are stacked until the grid is
    large enough; every point is a distinct feasible design, so neither
    path can shortcut through duplicate caching.
    """
    batches = []
    total = 0
    exponent = 10
    while total < minimum_points:
        batch = SpecBatch.enumerate(
            2 ** exponent,
            local_array_sizes=(2, 4, 8, 16, 32, 64),
            max_adc_bits=8,
        )
        batches.append(batch)
        total += len(batch)
        exponent += 1
    return SpecBatch.concat(batches)


def time_best(fn, repeats: int) -> float:
    """Best-of-N wall-clock seconds of one call."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_parity(reference, vectorized) -> float:
    """Worst relative disagreement across all metrics; asserts <= 1e-12."""
    if len(reference) != len(vectorized):
        raise AssertionError("paths returned different result counts")
    worst = 0.0
    for ref, vec in zip(reference, vectorized):
        if ref.spec != vec.spec:
            raise AssertionError("paths disagree on spec order")
        for field in METRIC_FIELDS:
            a, b = getattr(ref, field), getattr(vec, field)
            rel = abs(a - b) / max(abs(a), 1e-300)
            worst = max(worst, rel)
        if ref.objectives() != vec.objectives():
            raise AssertionError(
                f"objectives not bit-identical for {ref.spec.describe()}"
            )
    if worst > 1e-12:
        raise AssertionError(f"parity violated: worst relative error {worst:.3e}")
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=10_000,
                        help="minimum grid size (the gate requires >= 10k)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2k-point grid, no baseline write")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_model.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the 5x gate")
    args = parser.parse_args(argv)
    minimum = 2_000 if args.quick else args.points

    grid = build_grid(minimum)
    specs = grid.to_specs()  # shared spec objects: both paths do equal work
    estimator = ACIMEstimator(ModelParameters.calibrated())
    print(f"grid: {len(grid)} unique feasible design points")

    reference = estimator.evaluate_batch_reference(specs)
    vectorized = estimator.evaluate_batch(specs)
    worst = check_parity(reference, vectorized)
    print(f"parity: worst relative error {worst:.3e} "
          f"(<= 1e-12, objectives bit-identical)")

    scalar_s = time_best(lambda: estimator.evaluate_batch_reference(specs),
                         args.repeats)
    batch_s = time_best(lambda: estimator.evaluate_batch(specs), args.repeats)
    arrays_s = time_best(lambda: estimator.evaluate_arrays(grid), args.repeats)
    n = len(grid)
    speedup = scalar_s / batch_s
    record = {
        "benchmark": "model_vectorized",
        "grid_points": n,
        "cpu": platform.processor() or platform.machine(),
        "python": platform.python_version(),
        "parity_worst_rel_error": worst,
        "scalar_loop": {
            "seconds": round(scalar_s, 6),
            "evals_per_sec": round(n / scalar_s, 1),
        },
        "vectorized_batch": {
            "seconds": round(batch_s, 6),
            "evals_per_sec": round(n / batch_s, 1),
        },
        "raw_arrays": {
            "seconds": round(arrays_s, 6),
            "evals_per_sec": round(n / arrays_s, 1),
        },
        "batch_speedup": round(speedup, 2),
        "arrays_speedup": round(scalar_s / arrays_s, 2),
    }
    for label in ("scalar_loop", "vectorized_batch", "raw_arrays"):
        row = record[label]
        print(f"    {label:>17}: {row['seconds'] * 1e3:9.2f} ms  "
              f"{row['evals_per_sec']:>12,.0f} evals/s")
    print(f"    speedup: {speedup:.2f}x (batch), "
          f"{record['arrays_speedup']:.2f}x (raw arrays)")

    gate_applies = not args.no_assert
    record["speedup_gate"] = {
        "threshold": 5.0,
        "enforced": gate_applies,
        "passed": speedup >= 5.0 if gate_applies else None,
    }
    if gate_applies and speedup < 5.0:
        print(f"FAIL: vectorized batch speedup {speedup:.2f}x < 5x gate")
        return 1
    print(f"OK: vectorized evaluate_batch {speedup:.2f}x over the scalar "
          f"loop on {n} points (gate: 5x)")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
