"""Reporting helper shared by every benchmark module.

Kept outside ``conftest.py`` so benchmark modules can import it explicitly
(``from bench_reporting import emit``) regardless of how pytest names its
conftest plugin modules.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a clearly delimited reproduction block (table or series)."""
    line = "=" * 72
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
