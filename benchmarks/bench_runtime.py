"""Experiment E8 — section-4 runtime claims.

The paper reports, on an Intel Xeon Gold 6230:

* "the agile design exploration for a particular array size can be finished
  in 30 minutes",
* "the layout generation for a particular solution in the Pareto-frontier
  set can be done in a few minutes", credited to the customized cell
  library and the pre-defined routing tracks for critical nets.

The reproduction's estimation model is analytic (no SPICE in the loop), so
both stages run orders of magnitude faster; these benchmarks record the
actual timings (for EXPERIMENTS.md) and assert only the *relationships* the
paper emphasises: exploration dominates layout generation per solution, and
pre-defined tracks keep the layout stage cheap even with routing enabled.
"""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.report import format_table

from bench_reporting import emit

ARRAY_SIZE = 16 * 1024
#: Paper-reported runtimes (seconds) on the authors' server.
PAPER_DSE_SECONDS = 30 * 60
PAPER_LAYOUT_SECONDS = 3 * 60


def test_runtime_design_space_exploration(benchmark):
    """Full NSGA-II exploration of the 16 kb design space."""
    explorer = DesignSpaceExplorer(config=NSGA2Config(
        population_size=80, generations=60, seed=4))
    result = benchmark(explorer.explore, ARRAY_SIZE)
    emit("Runtime — 16 kb design-space exploration", format_table([{
        "paper_runtime_s": PAPER_DSE_SECONDS,
        "repro_runtime_s": round(result.runtime_seconds, 3),
        "evaluations": result.evaluations,
        "pareto_solutions": len(result.pareto_set),
    }]))
    # The reproduction must comfortably beat the paper's 30-minute budget.
    assert result.runtime_seconds < PAPER_DSE_SECONDS
    assert result.pareto_set


@pytest.mark.parametrize("route", [False, True], ids=["floorplan", "routed"])
def test_runtime_layout_generation(benchmark, cell_library, route):
    """Layout generation for one Pareto solution (Figure-8(b) configuration)."""
    generator = LayoutGenerator(cell_library)
    spec = ACIMDesignSpec(128, 128, 8, 3)
    report = benchmark(generator.generate, spec, route_column=route)
    emit(f"Runtime — 16 kb layout generation ({'routed' if route else 'floorplan'})",
         format_table([{
             "paper_runtime_s": PAPER_LAYOUT_SECONDS,
             "repro_runtime_s": round(report.runtime_seconds, 3),
             "routed_nets": report.routed_nets,
             "failed_nets": report.failed_nets,
         }]))
    assert report.runtime_seconds < PAPER_LAYOUT_SECONDS
    assert report.failed_nets == 0


def test_runtime_exploration_scales_with_array_size(benchmark):
    """Exploration cost grows modestly with the array size (agility claim)."""
    config = NSGA2Config(population_size=40, generations=20, seed=6)

    def explore_three_sizes():
        explorer = DesignSpaceExplorer(config=config)
        return {size: explorer.explore(size) for size in (4096, 16384, 65536)}

    results = benchmark(explore_three_sizes)
    rows = [
        {
            "array_size": size,
            "runtime_s": round(result.runtime_seconds, 3),
            "evaluations": result.evaluations,
            "pareto_solutions": len(result.pareto_set),
        }
        for size, result in results.items()
    ]
    emit("Runtime — exploration vs array size", format_table(rows))
    assert all(result.pareto_set for result in results.values())
