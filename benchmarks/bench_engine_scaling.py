#!/usr/bin/env python3
"""Scaling benchmark of the unified evaluation engine.

Two experiments, mirroring the two regimes the engine serves:

1. **Analytic throughput** — evaluations/sec of the closed-form estimation
   model for batch sizes {1, 32, 256} x backends {serial, thread, process}.
   One analytic evaluation costs ~20 us, so this regime quantifies the
   engine's dispatch overhead: serial wins (and that is the documented
   recommendation in docs/engine.md), and the matrix records by how much.

2. **High-fidelity 16 kb exhaustive sweep** — every feasible design point
   of the paper's 16 kb design space evaluated with the behavioral
   Monte-Carlo SNR harness (tens of milliseconds per point, the cost
   regime of SPICE-backed or simulation-backed evaluation).  Here the
   ``process`` backend must deliver >= 2x over ``serial`` with 4 workers;
   the script asserts it, and also asserts that NSGA-II with a fixed seed
   returns the bit-identical Pareto set under serial and process backends.

Run with::

    python benchmarks/bench_engine_scaling.py            # record baseline
    python benchmarks/bench_engine_scaling.py --quick    # CI-sized run

Results are written to ``benchmarks/BENCH_engine.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.arch.spec import enumerate_design_space
from repro.dse.exhaustive import evaluate_all
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front
from repro.engine import EvaluationCache, EvaluationEngine
from repro.model.estimator import ACIMEstimator
from repro.sim.montecarlo import measure_many

ARRAY_SIZE = 16 * 1024
BATCH_SIZES = (1, 32, 256)
BACKENDS = ("serial", "thread", "process")


def _spec_pool(count: int):
    """At least ``count`` feasible specs, cycling several array sizes."""
    specs = []
    size = ARRAY_SIZE
    while len(specs) < count:
        specs.extend(enumerate_design_space(size))
        size //= 2
        if size < 64:
            size = ARRAY_SIZE * 2
    return specs[:count]


def analytic_throughput(workers: int, repeats: int = 3) -> tuple:
    """Evaluations/sec of the analytic model per (batch size, backend).

    Returns ``(matrix, splits, metrics)``: ``splits`` holds the
    per-backend timing decomposition (dispatch / worker / serialize
    seconds) of the largest-batch runs — the numbers that show *where* a
    backend's time goes, not just how fast it went — and ``metrics`` is
    each backend's full engine metric snapshot (the
    ``docs/observability.md`` catalogue) at the end of its runs.
    """
    estimator = ACIMEstimator()
    matrix = {}
    splits = {}
    metrics = {}
    largest = max(BATCH_SIZES)
    # One long-lived engine per backend, reused across batch sizes — the
    # deployment shape the persistent worker pool is built for (spawn
    # once, amortize forever).  It also keeps process-pool teardown out of
    # every other cell's timing window, which matters on 1-core CI hosts.
    for backend in BACKENDS:
        with EvaluationEngine(
            backend, workers=workers, cache=EvaluationCache()
        ) as engine:
            # Warm up off-clock through the real path: this spawns the
            # persistent shared-memory worker pool (``engine.map`` only
            # primes the generic executor) and seeds the engine's cost
            # model so the auto-chunker plans realistic chunks.
            engine.evaluate_specs(estimator, _spec_pool(largest))
            for batch_size in BATCH_SIZES:
                specs = _spec_pool(batch_size)
                best = float("inf")
                for _ in range(repeats):
                    engine.cache.clear()
                    start = time.perf_counter()
                    engine.evaluate_specs(estimator, specs)
                    best = min(best, time.perf_counter() - start)
                matrix[f"batch{batch_size}_{backend}"] = round(
                    batch_size / best, 1
                )
                if batch_size == largest:
                    stats = engine.stats.as_dict()
                    splits[backend] = {
                        key: stats[key]
                        for key in (
                            "dispatch_seconds",
                            "worker_seconds",
                            "serialize_seconds",
                        )
                    }
            metrics[backend] = engine.metrics.snapshot()
    return matrix, splits, metrics


def _noop(value):
    return value


def high_fidelity_sweep(workers: int, trials: int, columns: int) -> dict:
    """The 16 kb exhaustive space through Monte-Carlo SNR, per backend."""
    specs = list(enumerate_design_space(ARRAY_SIZE))
    results = {"design_points": len(specs), "mc_trials": trials}
    reference = None
    for backend, backend_workers in (("serial", 1), ("process", workers)):
        with EvaluationEngine(backend, workers=backend_workers) as engine:
            engine.map(_noop, [0] * backend_workers)  # pool spawn off-clock
            start = time.perf_counter()
            measurements = measure_many(
                specs, trials=trials, columns=columns, engine=engine
            )
            elapsed = time.perf_counter() - start
        snrs = [round(m.snr_db, 9) for m in measurements]
        if reference is None:
            reference = snrs
        elif snrs != reference:
            raise AssertionError(
                "backend changed Monte-Carlo results: determinism broken"
            )
        results[f"{backend}_seconds"] = round(elapsed, 3)
        results[f"{backend}_evals_per_sec"] = round(len(specs) / elapsed, 2)
    results["process_speedup"] = round(
        results["serial_seconds"] / results["process_seconds"], 2
    )
    return results


def pareto_determinism(workers: int, seed: int = 11) -> dict:
    """Fixed-seed NSGA-II Pareto sets must be bit-identical across backends."""
    reference = None
    for backend in BACKENDS:
        engine = EvaluationEngine(
            backend, workers=workers, cache=EvaluationCache()
        )
        with engine:
            explorer = DesignSpaceExplorer(
                config=NSGA2Config(population_size=64, generations=40,
                                   seed=seed, backend=backend, workers=workers),
                engine=engine,
            )
            result = explorer.explore(ARRAY_SIZE)
        front = sorted(
            (design.spec.as_tuple(), design.objectives)
            for design in result.pareto_set
        )
        if reference is None:
            reference = front
        elif front != reference:
            raise AssertionError(
                f"{backend} backend produced a different Pareto set"
            )
    # A sharded campaign must land on the same front as its unsharded
    # twin: pre-warming the store cannot perturb the optimiser.
    sharded_identical = _sharded_front_matches(workers, seed)
    # Cross-check against the exhaustively computed true frontier.
    designs = evaluate_all(ARRAY_SIZE)
    true_front = {
        designs[i].spec.as_tuple()
        for i in pareto_front([d.objectives for d in designs])
    }
    found = {spec_tuple for spec_tuple, _ in reference}
    return {
        "seed": seed,
        "backends_identical": True,
        "sharded_identical": sharded_identical,
        "front_size": len(reference),
        "true_front_recall": round(len(found & true_front) / len(true_front), 3),
    }


def _sharded_front_matches(workers: int, seed: int) -> bool:
    """Sharded vs unsharded campaign fronts at a fixed seed (must match)."""
    import tempfile

    from repro.engine import reset_shared_cache
    from repro.store import ResultStore
    from repro.store.campaign import _CampaignManagerCore

    config = NSGA2Config(population_size=32, generations=10, seed=seed)
    fronts = []
    with tempfile.TemporaryDirectory() as tmp:
        for label, shards in (("plain", None), ("sharded", 2)):
            reset_shared_cache()
            with ResultStore(Path(tmp) / f"{label}.sqlite") as store:
                result = _CampaignManagerCore(store).run(
                    label, ARRAY_SIZE, config=config, shards=shards
                )
            fronts.append(sorted(
                (design.spec.as_tuple(), design.objectives)
                for design in result.pareto_set
            ))
    if fronts[0] != fronts[1]:
        raise AssertionError(
            "sharded campaign produced a different Pareto set"
        )
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mc-trials", type=int, default=120,
                        help="Monte-Carlo trials per design point")
    parser.add_argument("--mc-columns", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer trials, no baseline write)")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_engine.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the 2x gate")
    args = parser.parse_args(argv)
    trials = 40 if args.quick else args.mc_trials

    cores = os.cpu_count() or 1
    record = {
        "benchmark": "engine_scaling",
        "array_size": ARRAY_SIZE,
        "workers": args.workers,
        "cpu": platform.processor() or platform.machine(),
        "cpu_cores": cores,
        "python": platform.python_version(),
    }

    print(f"[1/3] analytic throughput (batch x backend, {args.workers} workers)")
    matrix, splits, metric_snapshots = analytic_throughput(args.workers)
    record["analytic_evals_per_sec"] = matrix
    record["analytic_timing_splits"] = splits
    record["metrics"] = metric_snapshots
    for key, value in matrix.items():
        print(f"    {key:>18}: {value:>12.1f} evals/s")
    for backend, split in splits.items():
        parts = ", ".join(f"{k.split('_')[0]} {v:.4f}s" for k, v in split.items())
        print(f"    batch{max(BATCH_SIZES)} {backend} splits: {parts}")

    print(f"[2/3] high-fidelity 16 kb exhaustive sweep ({trials} MC trials)")
    record["high_fidelity"] = high_fidelity_sweep(
        args.workers, trials, args.mc_columns
    )
    for key, value in record["high_fidelity"].items():
        print(f"    {key:>22}: {value}")

    print("[3/3] fixed-seed Pareto determinism across backends")
    record["determinism"] = pareto_determinism(args.workers)
    for key, value in record["determinism"].items():
        print(f"    {key:>22}: {value}")

    speedup = record["high_fidelity"]["process_speedup"]
    analytic_speedup = round(
        matrix[f"batch{max(BATCH_SIZES)}_process"]
        / matrix[f"batch{max(BATCH_SIZES)}_serial"], 2
    )
    # The 2x gates need parallel hardware: on a single-core host every
    # backend is serialized by the scheduler, so they are recorded as
    # skipped rather than failed (determinism is still enforced above).
    gate_applies = cores >= 2 and not args.no_assert
    record["speedup_gate"] = {
        "threshold": 2.0,
        "enforced": gate_applies,
        "passed": speedup >= 2.0 if gate_applies else None,
    }
    # The shared-memory pool must also beat serial on the *cheap* path:
    # vectorized analytic evaluations at batch 256, the regime the old
    # pickling executor lost outright.
    record["analytic_speedup_gate"] = {
        "batch": max(BATCH_SIZES),
        "process_vs_serial": analytic_speedup,
        "threshold": 2.0,
        "enforced": gate_applies,
        "passed": analytic_speedup >= 2.0 if gate_applies else None,
    }
    if gate_applies and speedup < 2.0:
        print(f"FAIL: high-fidelity process speedup {speedup:.2f}x < 2x gate")
        return 1
    if gate_applies and analytic_speedup < 2.0:
        print(f"FAIL: analytic batch{max(BATCH_SIZES)} process speedup "
              f"{analytic_speedup:.2f}x < 2x gate")
        return 1
    gate_note = "gates: 2x" if gate_applies else (
        f"gates skipped: {cores} CPU core(s), no parallel hardware")
    print(f"OK: process speedup {speedup:.2f}x high-fidelity, "
          f"{analytic_speedup:.2f}x analytic batch{max(BATCH_SIZES)} "
          f"({gate_note}), Pareto sets bit-identical across "
          f"{', '.join(BACKENDS)} + sharded")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
