#!/usr/bin/env python3
"""Scaling benchmark of the unified evaluation engine.

Two experiments, mirroring the two regimes the engine serves:

1. **Analytic throughput** — evaluations/sec of the closed-form estimation
   model for batch sizes {1, 32, 256} x backends {serial, thread, process}.
   One analytic evaluation costs ~20 us, so this regime quantifies the
   engine's dispatch overhead: serial wins (and that is the documented
   recommendation in docs/engine.md), and the matrix records by how much.

2. **High-fidelity 16 kb exhaustive sweep** — every feasible design point
   of the paper's 16 kb design space evaluated with the behavioral
   Monte-Carlo SNR harness (tens of milliseconds per point, the cost
   regime of SPICE-backed or simulation-backed evaluation).  Here the
   ``process`` backend must deliver >= 2x over ``serial`` with 4 workers;
   the script asserts it, and also asserts that NSGA-II with a fixed seed
   returns the bit-identical Pareto set under serial and process backends.

Run with::

    python benchmarks/bench_engine_scaling.py            # record baseline
    python benchmarks/bench_engine_scaling.py --quick    # CI-sized run

Results are written to ``benchmarks/BENCH_engine.json`` (override with
``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.arch.spec import enumerate_design_space
from repro.dse.exhaustive import evaluate_all
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front
from repro.engine import EvaluationCache, EvaluationEngine
from repro.model.estimator import ACIMEstimator
from repro.sim.montecarlo import measure_many

ARRAY_SIZE = 16 * 1024
BATCH_SIZES = (1, 32, 256)
BACKENDS = ("serial", "thread", "process")


def _spec_pool(count: int):
    """At least ``count`` feasible specs, cycling several array sizes."""
    specs = []
    size = ARRAY_SIZE
    while len(specs) < count:
        specs.extend(enumerate_design_space(size))
        size //= 2
        if size < 64:
            size = ARRAY_SIZE * 2
    return specs[:count]


def analytic_throughput(workers: int, repeats: int = 3) -> dict:
    """Evaluations/sec of the analytic model per (batch size, backend)."""
    estimator = ACIMEstimator()
    matrix = {}
    for batch_size in BATCH_SIZES:
        specs = _spec_pool(batch_size)
        for backend in BACKENDS:
            with EvaluationEngine(
                backend, workers=workers, cache=EvaluationCache()
            ) as engine:
                # Prime the pool (and worker import cost) outside the timer.
                engine.map(_noop, [0] * workers)
                best = float("inf")
                for _ in range(repeats):
                    engine.cache.clear()
                    start = time.perf_counter()
                    engine.evaluate_specs(estimator, specs)
                    best = min(best, time.perf_counter() - start)
            matrix[f"batch{batch_size}_{backend}"] = round(batch_size / best, 1)
    return matrix


def _noop(value):
    return value


def high_fidelity_sweep(workers: int, trials: int, columns: int) -> dict:
    """The 16 kb exhaustive space through Monte-Carlo SNR, per backend."""
    specs = list(enumerate_design_space(ARRAY_SIZE))
    results = {"design_points": len(specs), "mc_trials": trials}
    reference = None
    for backend, backend_workers in (("serial", 1), ("process", workers)):
        with EvaluationEngine(backend, workers=backend_workers) as engine:
            engine.map(_noop, [0] * backend_workers)  # pool spawn off-clock
            start = time.perf_counter()
            measurements = measure_many(
                specs, trials=trials, columns=columns, engine=engine
            )
            elapsed = time.perf_counter() - start
        snrs = [round(m.snr_db, 9) for m in measurements]
        if reference is None:
            reference = snrs
        elif snrs != reference:
            raise AssertionError(
                "backend changed Monte-Carlo results: determinism broken"
            )
        results[f"{backend}_seconds"] = round(elapsed, 3)
        results[f"{backend}_evals_per_sec"] = round(len(specs) / elapsed, 2)
    results["process_speedup"] = round(
        results["serial_seconds"] / results["process_seconds"], 2
    )
    return results


def pareto_determinism(workers: int, seed: int = 11) -> dict:
    """Fixed-seed NSGA-II Pareto sets must be bit-identical across backends."""
    reference = None
    for backend in BACKENDS:
        engine = EvaluationEngine(
            backend, workers=workers, cache=EvaluationCache()
        )
        with engine:
            explorer = DesignSpaceExplorer(
                config=NSGA2Config(population_size=64, generations=40,
                                   seed=seed, backend=backend, workers=workers),
                engine=engine,
            )
            result = explorer.explore(ARRAY_SIZE)
        front = sorted(
            (design.spec.as_tuple(), design.objectives)
            for design in result.pareto_set
        )
        if reference is None:
            reference = front
        elif front != reference:
            raise AssertionError(
                f"{backend} backend produced a different Pareto set"
            )
    # Cross-check against the exhaustively computed true frontier.
    designs = evaluate_all(ARRAY_SIZE)
    true_front = {
        designs[i].spec.as_tuple()
        for i in pareto_front([d.objectives for d in designs])
    }
    found = {spec_tuple for spec_tuple, _ in reference}
    return {
        "seed": seed,
        "backends_identical": True,
        "front_size": len(reference),
        "true_front_recall": round(len(found & true_front) / len(true_front), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--mc-trials", type=int, default=120,
                        help="Monte-Carlo trials per design point")
    parser.add_argument("--mc-columns", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer trials, no baseline write)")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_engine.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the 2x gate")
    args = parser.parse_args(argv)
    trials = 40 if args.quick else args.mc_trials

    cores = os.cpu_count() or 1
    record = {
        "benchmark": "engine_scaling",
        "array_size": ARRAY_SIZE,
        "workers": args.workers,
        "cpu": platform.processor() or platform.machine(),
        "cpu_cores": cores,
        "python": platform.python_version(),
    }

    print(f"[1/3] analytic throughput (batch x backend, {args.workers} workers)")
    record["analytic_evals_per_sec"] = analytic_throughput(args.workers)
    for key, value in record["analytic_evals_per_sec"].items():
        print(f"    {key:>18}: {value:>12.1f} evals/s")

    print(f"[2/3] high-fidelity 16 kb exhaustive sweep ({trials} MC trials)")
    record["high_fidelity"] = high_fidelity_sweep(
        args.workers, trials, args.mc_columns
    )
    for key, value in record["high_fidelity"].items():
        print(f"    {key:>22}: {value}")

    print("[3/3] fixed-seed Pareto determinism across backends")
    record["determinism"] = pareto_determinism(args.workers)
    for key, value in record["determinism"].items():
        print(f"    {key:>22}: {value}")

    speedup = record["high_fidelity"]["process_speedup"]
    # The 2x gate needs parallel hardware: on a single-core host every
    # backend is serialized by the scheduler, so the gate is recorded as
    # skipped rather than failed (determinism is still enforced above).
    gate_applies = cores >= 2 and not args.no_assert
    record["speedup_gate"] = {
        "threshold": 2.0,
        "enforced": gate_applies,
        "passed": speedup >= 2.0 if gate_applies else None,
    }
    if gate_applies and speedup < 2.0:
        print(f"FAIL: process speedup {speedup:.2f}x < 2x gate")
        return 1
    gate_note = "gate: 2x" if gate_applies else (
        f"gate skipped: {cores} CPU core(s), no parallel hardware")
    print(f"OK: process backend speedup {speedup:.2f}x ({gate_note}), "
          f"Pareto sets bit-identical across {', '.join(BACKENDS)}")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
