"""Experiment A4 — post-layout back-annotation vs pre-layout estimates.

The paper calibrates its model constants with post-layout simulation and
then trusts the analytic model inside the optimisation loop.  That is only
justified if the post-layout refinement changes the estimates by a small
amount; this ablation quantifies the drift for generated-and-routed macros:
wire parasitics are extracted from the routed column, back-annotated into
the timing and energy models, and the pre/post metrics are compared.
"""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.report import format_table
from repro.model.backannotate import BackAnnotator
from repro.model.estimator import ACIMEstimator

from bench_reporting import emit

#: Column-slice configurations covering the Figure-8 corner cases.
CASES = [
    ACIMDesignSpec(128, 8, 2, 3),   # tall column, many local arrays (long RBL)
    ACIMDesignSpec(128, 8, 8, 3),   # the balanced Figure-8(b) column
    ACIMDesignSpec(64, 8, 8, 3),    # short column
]


@pytest.mark.parametrize("spec", CASES,
                         ids=[f"H{c.height}_L{c.local_array_size}" for c in CASES])
def test_postlayout_drift_is_small(benchmark, cell_library, technology, spec):
    """Generate + route + extract + back-annotate one column configuration."""
    generator = LayoutGenerator(cell_library)
    annotator = BackAnnotator(technology)

    def run_once():
        layout_report = generator.generate(spec, route_column=True)
        return annotator.annotate(spec, layout_report.layout)

    annotation = benchmark(run_once)
    pre = ACIMEstimator(annotation.pre_layout).evaluate(spec)
    post = ACIMEstimator(annotation.post_layout).evaluate(spec)
    rbl = annotation.parasitics.net("RBL")
    emit(
        f"Ablation A4 — post-layout drift (H={spec.height}, L={spec.local_array_size})",
        format_table([{
            "RBL_wire_um": round(rbl.wirelength_um, 1),
            "RBL_cap_fF": round(rbl.capacitance * 1e15, 2),
            "pre_TOPS": round(pre.tops, 4),
            "post_TOPS": round(post.tops, 4),
            "pre_fJ_per_MAC": round(pre.energy_per_mac * 1e15, 3),
            "post_fJ_per_MAC": round(post.energy_per_mac * 1e15, 3),
            "cycle_drift_%": round(annotation.cycle_time_change * 100, 2),
            "energy_drift_%": round(annotation.energy_change * 100, 2),
        }]),
    )
    # The drift must stay small enough to justify optimising on the analytic
    # model (the paper's implicit assumption).
    assert 0.0 <= annotation.cycle_time_change < 0.25
    assert 0.0 <= annotation.energy_change < 0.25
    # Taller columns carry longer read bitlines.
    assert rbl.wirelength_um > 0


def test_postlayout_drift_grows_with_column_height(cell_library, technology):
    """The extracted RBL load grows with the column height, as expected."""
    generator = LayoutGenerator(cell_library)
    annotator = BackAnnotator(technology)
    results = {}
    for spec in (ACIMDesignSpec(64, 8, 8, 3), ACIMDesignSpec(256, 8, 8, 3)):
        layout_report = generator.generate(spec, route_column=True)
        results[spec.height] = annotator.annotate(spec, layout_report.layout)
    short_rbl = results[64].parasitics.net("RBL")
    tall_rbl = results[256].parasitics.net("RBL")
    emit("Ablation A4 — RBL parasitics vs column height", format_table([
        {"H": 64, "wire_um": round(short_rbl.wirelength_um, 1),
         "cap_fF": round(short_rbl.capacitance * 1e15, 2)},
        {"H": 256, "wire_um": round(tall_rbl.wirelength_um, 1),
         "cap_fF": round(tall_rbl.capacitance * 1e15, 2)},
    ]))
    assert tall_rbl.wirelength_um > short_rbl.wirelength_um
    assert tall_rbl.capacitance > short_rbl.capacitance
