"""Experiment E1 — Table 2: comparison with other CIM design flows.

Regenerates the qualitative flow-comparison table (traditional manual flow
vs AutoDCIM vs EasyACIM) from the executable flow descriptors, and backs the
"design time: several hours vs 1-2 months" claim with measured runtimes of
the automated stages (exploration + netlist + layout for one solution).
"""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
# Benchmarks drive the internal core directly (same implementation the
# session layer uses) so they stay silent under -W error::DeprecationWarning.
from repro.dse.explorer import _ExplorerCore as DesignSpaceExplorer
from repro.dse.nsga2 import NSGA2Config
from repro.flow.baselines import (
    AutoDCIMBaselineFlow,
    TraditionalManualFlow,
    flow_comparison_table,
)
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.report import format_table

from bench_reporting import emit

ARRAY_SIZE = 16 * 1024


def test_table2_rows(benchmark):
    """The Table-2 comparison itself (cheap; benchmarked for completeness)."""
    entries = benchmark(flow_comparison_table)
    rows = [
        {
            "Entry": entry.name,
            "Design type": entry.design_type,
            "Design of layout": entry.layout_design,
            "Design time": entry.design_time,
            "Design space": entry.design_space,
            "Determination of design parameters": entry.parameter_determination,
        }
        for entry in entries
    ]
    emit("Table 2 — Comparison with Other CIM Design Flows", format_table(rows))
    assert len(entries) == 3
    by_name = {entry.name: entry for entry in entries}
    assert by_name["EasyACIM"].design_space == "Pareto frontier"
    assert by_name["AutoDCIM-style"].design_space == "Unoptimized"
    assert by_name["Traditional Flow"].design_space == "Fixed"


def test_easyacim_automated_design_time(benchmark, cell_library):
    """Measured runtime of the automated EasyACIM stages for one solution.

    The paper claims the whole flow finishes in hours (30-minute DSE plus a
    few minutes per layout on their server); the reproduction's stages run
    in seconds at the benchmark's population sizes, supporting the
    several-orders-of-magnitude gap to the 1-2 month manual flow.
    """
    explorer = DesignSpaceExplorer(config=NSGA2Config(
        population_size=40, generations=20, seed=1))
    netlist_generator = TemplateNetlistGenerator(cell_library)
    layout_generator = LayoutGenerator(cell_library)

    def automated_flow_once():
        result = explorer.explore(ARRAY_SIZE)
        spec = result.pareto_set[len(result.pareto_set) // 2].spec
        netlist = netlist_generator.generate(spec)
        layout = layout_generator.generate(spec, route_column=False)
        return result, netlist, layout

    result, netlist, layout = benchmark(automated_flow_once)
    emit(
        "Table 2 — measured automated design time (this reproduction)",
        format_table([{
            "stage": "DSE + netlist + layout (one solution)",
            "pareto_solutions": len(result.pareto_set),
            "netlist_instances": len(netlist.instances),
            "layout_um2": round(layout.area_um2, 0),
        }]),
    )
    assert result.pareto_set
    assert layout.failed_nets == 0


def test_autodcim_baseline_covers_less_design_space(benchmark, estimator):
    """Quantifies Table 2's 'Unoptimized design space' row for AutoDCIM.

    The AutoDCIM-style baseline only evaluates a handful of user-picked
    parameter sets; on the energy-efficiency/area plane those points cover a
    strictly smaller hypervolume than the EasyACIM Pareto frontier, which is
    the measurable meaning of "Unoptimized" vs "Pareto frontier" in Table 2.
    """
    baseline = AutoDCIMBaselineFlow(estimator)
    user_designs = benchmark(baseline.run, ARRAY_SIZE)

    from repro.dse.exhaustive import exhaustive_pareto_front
    from repro.dse.pareto import hypervolume_2d

    frontier = exhaustive_pareto_front(ARRAY_SIZE, estimator=estimator)

    def projection(designs):
        return [(d.metrics.energy_per_mac * 1e15, d.metrics.area_f2_per_bit / 1e3)
                for d in designs]

    reference = (50.0, 10.0)
    hv_user = hypervolume_2d(projection(user_designs), reference)
    hv_easyacim = hypervolume_2d(projection(frontier), reference)
    user_best_snr = max(d.metrics.snr_db for d in user_designs)
    frontier_best_snr = max(d.metrics.snr_db for d in frontier)
    rows = [{
        "flow": "AutoDCIM-style (user-defined)",
        "evaluated_points": len(user_designs),
        "hypervolume": round(hv_user, 2),
        "easyacim_frontier_hypervolume": round(hv_easyacim, 2),
        "coverage": round(hv_user / hv_easyacim, 3),
        "best_SNR_dB": round(user_best_snr, 1),
        "easyacim_best_SNR_dB": round(frontier_best_snr, 1),
    }]
    emit("Table 2 — design-space quality of the user-defined baseline",
         format_table(rows))
    # The user-defined set covers strictly less of the efficiency/area plane
    # and misses the high-accuracy end of the space entirely (its fixed
    # B_ADC choices cannot reach the frontier's best SNR).
    assert hv_user < hv_easyacim
    assert frontier_best_snr > user_best_snr + 6.0


def test_traditional_flow_is_single_point(benchmark):
    """The traditional flow's 'Fixed' design space: exactly one design point."""
    flow = TraditionalManualFlow()
    points = benchmark(flow.design_points, ARRAY_SIZE)
    assert len(points) == 1
    assert isinstance(points[0], ACIMDesignSpec)
