"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index) and prints the
reproduced rows/series, so running

    pytest benchmarks/ --benchmark-only -s

produces both the timing data and the paper-facing numbers.
"""

from __future__ import annotations

import pytest

from repro.cells.library import default_cell_library
from repro.model.estimator import ACIMEstimator
from repro.technology.tech import generic28


@pytest.fixture(scope="session")
def technology():
    """The synthetic generic 28 nm technology."""
    return generic28()


@pytest.fixture(scope="session")
def cell_library(technology):
    """The default cell library shared by the layout benchmarks."""
    return default_cell_library(technology)


@pytest.fixture(scope="session")
def estimator():
    """Default estimation model used by the model-level benchmarks."""
    return ACIMEstimator()
