#!/usr/bin/env python3
"""Surrogate-screened evaluation benchmark (ISSUE 10).

Measures what the learned pre-filter buys on a design space too large to
enumerate inside a campaign: a 735,134,400-cell array with free-form
(non-power-of-two) heights, 17 local-array sizes and 10 ADC resolutions
— 112,909 feasible design points.  Three questions:

1. **Exact-eval savings** — a fixed-seed NSGA-II campaign (pop 64, 40
   generations) runs unscreened and screened (``screen_fraction=0.2``)
   with a private cold cache each; the gate asserts the screened run
   computes >= 3x fewer exact model evaluations.
2. **Front quality** — both runs' final fronts are scored against
   exhaustively computed *projected* trade-off fronts (the 2-D Pareto
   fronts of the SNR/throughput, throughput/energy, throughput/area and
   energy/area objective pairs) with a 5% epsilon-indicator: a truth
   point counts as covered when the run found a design within 5% of the
   objective range on both axes.  (The full 4-objective front of this
   space holds 106,945 of 112,909 points — 95% of the space is mutually
   non-dominated, so 4-D front membership is not a usable quality
   signal; the projected corners are where the trade-offs live.)  The
   gate asserts screened recall >= unscreened recall.
3. **Refine warm-start** — on the 16,384 space of ``BENCH_engine.json``
   (whose seed records ``true_front_recall: 0.164`` for the identical
   unscreened config), a prior screened campaign warms a store, then a
   ``refine`` campaign warm-starts from the store's cross-campaign
   Pareto set.  Recall is computed exactly as the seed bench computes
   it (exact spec membership in the exhaustive 4-D true front); the
   gate asserts refine recall > 0.164.

A final determinism segment re-runs the screened leg and asserts the
bit-identical front.  Like the other gates, enforcement is relaxed on
single-core hosts and in ``--quick`` mode (numbers still recorded).

Run with::

    python benchmarks/bench_surrogate.py          # record baseline
    python benchmarks/bench_surrogate.py --quick  # CI smoke (no write)

Results are written to ``benchmarks/BENCH_surrogate.json`` (override
with ``--json``); the committed file is the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.arch.batch import SpecBatch
from repro.dse.explorer import _ExplorerCore
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front, pareto_front_mask
from repro.engine import EvaluationCache, EvaluationEngine
from repro.model.estimator import ACIMEstimator
from repro.store.result_store import ResultStore

#: Full space: 2^6 * 3^3 * 5^2 * 7 * 11 * 13 * 17 cells, 1344 divisors.
FULL = dict(array_size=735_134_400,
            local_array_sizes=(2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18,
                               20, 24, 25, 30, 32),
            max_adc_bits=10, seed=3, population=64, generations=40)
QUICK = dict(array_size=129_729_600,
             local_array_sizes=(2, 4, 8, 16, 32),
             max_adc_bits=8, seed=3, population=48, generations=20)

#: Projected objective pairs scored by the epsilon indicator; indices
#: into the (-SNR, -TOPS, energy/MAC, area/bit) minimisation vector.
PAIRS = ((0, 1), (1, 2), (1, 3), (2, 3))
EPSILON = 0.05

SCREEN_FRACTION = 0.2
EVAL_RATIO_GATE = 3.0

#: The seed recall recorded by bench_engine_scaling in BENCH_engine.json
#: for the identical unscreened config on the 16,384 space.
REFINE_SPACE = 16_384
REFINE_RECALL_GATE = 0.164
REFINE_SEED = 11


def objective_rows(metrics_list) -> np.ndarray:
    return np.array([
        [-m.snr_db, -m.tops, m.energy_per_mac, m.area_f2_per_bit]
        for m in metrics_list
    ])


def exhaustive(space: dict):
    """Evaluate the whole space once: (batch, objective rows)."""
    batch = SpecBatch.enumerate(
        space["array_size"],
        local_array_sizes=space["local_array_sizes"],
        max_adc_bits=space["max_adc_bits"],
        power_of_two_heights=False,
    )
    with EvaluationEngine(
        "serial", cache=EvaluationCache(max_size=1024)
    ) as engine:
        objectives = objective_rows(
            engine.evaluate_specs(ACIMEstimator(), batch)
        )
    return batch, objectives


def projected_truths(objectives: np.ndarray):
    """Per objective pair: (front values, 5% tolerance vector)."""
    truths = []
    for pair in PAIRS:
        unique = np.unique(objectives[:, pair], axis=0)
        front = unique[pareto_front_mask(unique)]
        tolerance = EPSILON * (
            objectives[:, pair].max(axis=0) - objectives[:, pair].min(axis=0)
        )
        truths.append((front, tolerance))
    return truths


def epsilon_recall(pareto_set, truths) -> float:
    """Fraction of projected truth corners the run came within 5% of."""
    objectives = objective_rows([d.metrics for d in pareto_set])
    covered = total = 0
    for pair, (front, tolerance) in zip(PAIRS, truths):
        points = objectives[:, pair]
        hit = np.any(
            np.all(
                points[None, :, :] <= front[:, None, :]
                + tolerance[None, None, :],
                axis=2,
            ),
            axis=1,
        )
        covered += int(hit.sum())
        total += len(front)
    return covered / total


def run_leg(space: dict, store=None, **surrogate_kw):
    """One fixed-seed campaign with a private cold cache.

    Returns ``(result, computed)`` where ``computed`` counts exact model
    evaluations actually performed (cache misses) — the cost the screen
    is supposed to save.
    """
    engine = EvaluationEngine(
        "serial", store=store, cache=EvaluationCache(max_size=500_000)
    )
    core = _ExplorerCore(
        config=NSGA2Config(
            population_size=space["population"],
            generations=space["generations"],
            seed=space["seed"],
        ),
        engine=engine,
        local_array_sizes=space["local_array_sizes"],
        max_adc_bits=space["max_adc_bits"],
        power_of_two_heights=False,
        store=store,
        **surrogate_kw,
    )
    result = core.explore(space["array_size"])
    if store is not None:
        engine.flush_store()
    computed = engine.stats.evaluations
    engine.close()
    return result, computed


def front_signature(result):
    return sorted(
        (d.spec.as_tuple(), d.objectives) for d in result.pareto_set
    )


def refine_segment() -> dict:
    """The 16,384-space refine leg, scored like bench_engine_scaling."""
    batch = SpecBatch.enumerate(REFINE_SPACE)
    with EvaluationEngine(
        "serial", cache=EvaluationCache(max_size=4096)
    ) as engine:
        metrics_list = engine.evaluate_specs(ACIMEstimator(), batch)
    tuples = batch.as_tuples()
    true_front = {
        tuples[i]
        for i in pareto_front(objective_rows(metrics_list).tolist())
    }

    def seed_recall(result) -> float:
        found = {d.spec.as_tuple() for d in result.pareto_set}
        return len(found & true_front) / len(true_front)

    config = NSGA2Config(population_size=64, generations=40, seed=REFINE_SEED)

    def leg(store=None, **kw):
        engine = EvaluationEngine(
            "serial", store=store, cache=EvaluationCache(max_size=500_000)
        )
        core = _ExplorerCore(config=config, engine=engine, store=store, **kw)
        result = core.explore(REFINE_SPACE)
        if store is not None:
            engine.flush_store()
        computed = engine.stats.evaluations
        engine.close()
        return result, computed

    baseline, baseline_computed = leg()
    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(Path(tmp) / "warm.sqlite") as store:
            # A prior screened campaign (different seed) warms the store;
            # the refine leg then seeds its population — and its
            # surrogate — from the store's cross-campaign Pareto rows.
            prior_config = NSGA2Config(
                population_size=64, generations=40, seed=3
            )
            engine = EvaluationEngine(
                "serial", store=store, cache=EvaluationCache(max_size=500_000)
            )
            _ExplorerCore(
                config=prior_config, engine=engine, store=store,
                surrogate="screen", screen_fraction=SCREEN_FRACTION,
            ).explore(REFINE_SPACE)
            engine.flush_store()
            engine.close()
            refined, refined_computed = leg(
                store=store, surrogate="refine",
                screen_fraction=SCREEN_FRACTION,
            )
    return {
        "space_points": len(batch),
        "true_front": len(true_front),
        "baseline_recall": round(seed_recall(baseline), 3),
        "baseline_exact_evals": baseline_computed,
        "refine_recall": round(seed_recall(refined), 3),
        "refine_exact_evals": refined_computed,
        "refine_surrogate": refined.surrogate,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 18k-point space, no baseline write")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "BENCH_surrogate.json")
    parser.add_argument("--no-assert", action="store_true",
                        help="record numbers without enforcing the gates")
    args = parser.parse_args(argv)

    space = QUICK if args.quick else FULL
    cores = os.cpu_count() or 1

    start = time.perf_counter()
    batch, objectives = exhaustive(space)
    truths = projected_truths(objectives)
    print(f"space: {len(batch)} feasible points "
          f"(array {space['array_size']}), projected truth fronts "
          f"{[len(front) for front, _ in truths]} "
          f"({time.perf_counter() - start:.1f} s exhaustive)")

    baseline, baseline_computed = run_leg(space)
    screened, screened_computed = run_leg(
        space, surrogate="screen", screen_fraction=SCREEN_FRACTION
    )
    repeat, repeat_computed = run_leg(
        space, surrogate="screen", screen_fraction=SCREEN_FRACTION
    )
    deterministic = (
        front_signature(screened) == front_signature(repeat)
        and screened_computed == repeat_computed
    )

    baseline_recall = epsilon_recall(baseline.pareto_set, truths)
    screened_recall = epsilon_recall(screened.pareto_set, truths)
    ratio = baseline_computed / max(1, screened_computed)
    print(f"unscreened: {baseline_computed} exact evals, "
          f"eps-recall {baseline_recall:.3f}")
    print(f"screened  : {screened_computed} exact evals, "
          f"eps-recall {screened_recall:.3f} "
          f"({screened.surrogate['screened_candidates']} candidates "
          f"screened out, {ratio:.2f}x fewer exact evals)")
    print(f"determinism: fixed-seed screened front "
          f"{'bit-identical' if deterministic else 'DIVERGED'} across runs")

    refine = refine_segment()
    print(f"refine    : recall {refine['refine_recall']:.3f} vs seed "
          f"{REFINE_RECALL_GATE} ({refine['refine_exact_evals']} exact "
          f"evals vs {refine['baseline_exact_evals']} unscreened)")

    record = {
        "benchmark": "surrogate_screening",
        "space": {
            "array_size": space["array_size"],
            "feasible_points": len(batch),
            "local_array_sizes": list(space["local_array_sizes"]),
            "max_adc_bits": space["max_adc_bits"],
        },
        "cpu": platform.processor() or platform.machine(),
        "cores": cores,
        "python": platform.python_version(),
        "config": {
            "population": space["population"],
            "generations": space["generations"],
            "seed": space["seed"],
            "screen_fraction": SCREEN_FRACTION,
            "epsilon": EPSILON,
        },
        "unscreened": {
            "exact_evals": baseline_computed,
            "front_recall": round(baseline_recall, 3),
        },
        "screened": {
            "exact_evals": screened_computed,
            "front_recall": round(screened_recall, 3),
            "surrogate": screened.surrogate,
        },
        "eval_ratio": round(ratio, 2),
        "deterministic": deterministic,
        "refine": refine,
    }

    failures = []
    if not deterministic:
        failures.append("fixed-seed screened runs diverged")
    if ratio < EVAL_RATIO_GATE:
        failures.append(
            f"exact-eval ratio {ratio:.2f}x < {EVAL_RATIO_GATE}x gate"
        )
    if screened_recall < baseline_recall:
        failures.append(
            f"screened recall {screened_recall:.3f} < unscreened "
            f"{baseline_recall:.3f}"
        )
    if refine["refine_recall"] <= REFINE_RECALL_GATE:
        failures.append(
            f"refine recall {refine['refine_recall']:.3f} <= "
            f"{REFINE_RECALL_GATE} seed gate"
        )

    # Quick mode shrinks the space and generation count below where the
    # 3x ratio is reachable, so like single-core hosts it records the
    # numbers without enforcing; determinism is always enforced.
    gate_applies = cores >= 2 and not args.quick and not args.no_assert
    record["gates"] = {
        "eval_ratio_threshold": EVAL_RATIO_GATE,
        "refine_recall_threshold": REFINE_RECALL_GATE,
        "enforced": gate_applies,
        "passed": not failures if gate_applies else None,
        "failures": failures,
    }
    if not deterministic:
        print("FAIL: " + failures[0])
        return 1
    if gate_applies and failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    status = "OK" if not failures else "RELAXED"
    print(f"{status}: {ratio:.2f}x fewer exact evals at recall "
          f"{screened_recall:.3f} (>= {baseline_recall:.3f} unscreened), "
          f"refine {refine['refine_recall']:.3f} > {REFINE_RECALL_GATE} "
          f"({'enforced' if gate_applies else 'recorded only'})")

    if not args.quick:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
