"""Experiments E3–E6 — Figure 9: the EasyACIM design space.

Figure 9 plots the explored design space as scatter plots over the four
metrics, categorised four ways.  Each test below regenerates one pair of
panels and prints the per-category metric ranges (the "series" behind the
scatter plots), then asserts the qualitative conclusions the paper draws:

* (a)(b) by array size — larger arrays reach higher SNR and throughput,
  smaller arrays favour energy efficiency and area;
* (c)(d) by H at 16 kb — smaller H gives higher throughput but limits SNR
  and increases area;
* (e)(f) by L at 16 kb — smaller L raises throughput and the SNR upper
  bound at extra area;
* (g)(h) by B_ADC at 16 kb — fewer ADC bits improve energy efficiency but
  sharply reduce SNR.

The exploration itself uses the same estimation model and constraint set as
the NSGA-II explorer; the full (enumerable) space is evaluated so every
category is complete, and the NSGA-II path is benchmarked separately in
bench_runtime.py / bench_ablation_dse.py.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.dse.exhaustive import evaluate_all
from repro.dse.problem import EvaluatedDesign
from repro.flow.report import format_table

from bench_reporting import emit

ARRAY_SIZES = (4 * 1024, 16 * 1024, 64 * 1024)
ARRAY_16KB = 16 * 1024


def _series(designs: List[EvaluatedDesign], key) -> Dict:
    """Group designs by ``key`` and summarise each group's metric ranges."""
    groups: Dict = {}
    for design in designs:
        groups.setdefault(key(design), []).append(design)
    summary = {}
    for group_key in sorted(groups):
        members = groups[group_key]
        summary[group_key] = {
            "count": len(members),
            "snr_db_max": max(d.metrics.snr_db for d in members),
            "snr_db_min": min(d.metrics.snr_db for d in members),
            "tops_max": max(d.metrics.tops for d in members),
            "tops_per_watt_max": max(d.metrics.tops_per_watt for d in members),
            "area_min": min(d.metrics.area_f2_per_bit for d in members),
            "area_max": max(d.metrics.area_f2_per_bit for d in members),
        }
    return summary


def _rows(summary: Dict, label: str) -> List[Dict]:
    return [
        {
            label: key,
            "points": entry["count"],
            "SNR_dB_max": round(entry["snr_db_max"], 1),
            "TOPS_max": round(entry["tops_max"], 3),
            "TOPSW_max": round(entry["tops_per_watt_max"], 0),
            "F2bit_min": round(entry["area_min"], 0),
            "F2bit_max": round(entry["area_max"], 0),
        }
        for key, entry in summary.items()
    ]


def test_fig9_ab_by_array_size(benchmark, estimator):
    """Figure 9(a)(b): design space categorised by array size."""

    def sweep():
        return {
            size: evaluate_all(size, estimator=estimator) for size in ARRAY_SIZES
        }

    spaces = benchmark(sweep)
    summary = {
        size: _series(designs, key=lambda d: size)[size]
        for size, designs in spaces.items()
    }
    emit("Figure 9(a)(b) — design space by array size",
         format_table(_rows(summary, "array_size")))

    small, large = summary[ARRAY_SIZES[0]], summary[ARRAY_SIZES[-1]]
    # Larger arrays present the potential for higher SNR and throughput...
    assert large["snr_db_max"] >= small["snr_db_max"]
    assert large["tops_max"] > small["tops_max"]
    # ...while smaller arrays prioritise energy efficiency and area.
    assert small["area_min"] <= large["area_min"] * 1.05
    assert small["tops_per_watt_max"] >= 0.95 * large["tops_per_watt_max"]


def test_fig9_cd_by_height(benchmark, estimator):
    """Figure 9(c)(d): 16 kb design space categorised by H."""
    designs = benchmark(evaluate_all, ARRAY_16KB, estimator=estimator)
    summary = _series(designs, key=lambda d: d.spec.height)
    emit("Figure 9(c)(d) — 16 kb design space by H",
         format_table(_rows(summary, "H")))

    heights = sorted(summary)
    smallest, largest = summary[heights[0]], summary[heights[-1]]
    # Smaller H reaches at least the same peak throughput (Equation 7 depends
    # on H only through the feasible L and B_ADC choices), but its SNR is
    # limited (fewer capacitor groups bound B_ADC) and its area overhead is
    # larger (comparator and SAR logic amortised over fewer cells).
    assert smallest["tops_max"] >= largest["tops_max"]
    assert smallest["snr_db_max"] <= largest["snr_db_max"]
    assert smallest["area_max"] >= largest["area_max"]


def test_fig9_ef_by_local_array(benchmark, estimator):
    """Figure 9(e)(f): 16 kb design space categorised by L."""
    designs = benchmark(evaluate_all, ARRAY_16KB, estimator=estimator)
    summary = _series(designs, key=lambda d: d.spec.local_array_size)
    emit("Figure 9(e)(f) — 16 kb design space by L",
         format_table(_rows(summary, "L")))

    locals_sorted = sorted(summary)
    smallest, largest = summary[locals_sorted[0]], summary[locals_sorted[-1]]
    # Reducing L raises throughput and the SNR upper bound, at extra area.
    assert smallest["tops_max"] > largest["tops_max"]
    assert smallest["snr_db_max"] >= largest["snr_db_max"]
    assert smallest["area_max"] > largest["area_max"]


def test_fig9_gh_by_adc_bits(benchmark, estimator):
    """Figure 9(g)(h): 16 kb design space categorised by B_ADC."""
    designs = benchmark(evaluate_all, ARRAY_16KB, estimator=estimator)
    summary = _series(designs, key=lambda d: d.spec.adc_bits)
    emit("Figure 9(g)(h) — 16 kb design space by B_ADC",
         format_table(_rows(summary, "B_ADC")))

    bits_sorted = sorted(summary)
    lowest, highest = summary[bits_sorted[0]], summary[bits_sorted[-1]]
    # Reducing B_ADC enhances energy efficiency yet notably diminishes SNR.
    assert lowest["tops_per_watt_max"] > highest["tops_per_watt_max"]
    assert lowest["snr_db_max"] < highest["snr_db_max"]


def test_fig9_parameter_limits_match_paper(estimator):
    """The explored space respects the paper's stated limits (B<=8, 2<=L<=32)."""
    designs = evaluate_all(ARRAY_16KB, estimator=estimator)
    assert designs
    assert all(d.spec.adc_bits <= 8 for d in designs)
    assert all(2 <= d.spec.local_array_size <= 32 for d in designs)
