# CI entry points for the EasyACIM reproduction.
#
#   make test              tier-1 test suite (the PR gate)
#   make smoke             quickstart flow through the parallel engine (2 workers)
#   make api-smoke         every repro.api request kind from JSON through one
#                          Session, with DeprecationWarning promoted to error
#                          (proves the new path avoids the legacy front doors)
#   make campaign-smoke    tiny campaign -> kill -> resume -> query (store path)
#   make shard-smoke       2-shard campaign: store rows match a serial full-grid
#                          run, front bit-identical to the unsharded twin
#   make physical-smoke    two-design flow with macro reuse on: >= 1 macro
#                          cache hit and byte-identical GDSII vs reuse-off
#   make template-smoke    three neighbouring designs: columns derived from
#                          a solved template (memory + store rungs) with
#                          byte-identical GDSII vs reuse-off
#   make trace-smoke       quickstart-sized flow under `repro trace`: the
#                          exported Chrome trace must parse and nest api +
#                          engine + chunk + physical-pipeline spans
#   make surrogate-smoke   screened vs unscreened fixed-seed exploration:
#                          fewer exact evals at >= recall, counters
#                          consistent, cold-store fallback bit-identical
#   make serve-smoke       live HTTP server on an ephemeral port: every
#                          request kind by HTTP, SSE campaign streaming with
#                          replay, cancel+resume, 429/404/400 envelopes,
#                          graceful drain (docs/serving.md)
#   make serve-bench-smoke CI-sized serving load benchmark (throughput/p99
#                          gates, auto-relaxed on 1-core hosts, no write)
#   make serve-bench       full serving load benchmark (>= 1000 mixed
#                          requests), records BENCH_serve.json
#   make physical-bench-smoke CI-sized physical-pipeline benchmark (5x warm-reuse
#                          gate, auto-relaxed on 1-core hosts, no write)
#   make physical-bench    full physical-pipeline benchmark, records
#                          BENCH_physical.json
#   make template-bench-smoke CI-sized near-miss template benchmark (5x
#                          derived-vs-cold gate, auto-relaxed on 1-core
#                          hosts, no write)
#   make template-bench    full near-miss template benchmark, records
#                          BENCH_template.json
#   make model-bench-smoke CI-sized vectorized-model benchmark (5x gate, no write)
#   make model-bench       full vectorized-model benchmark, records BENCH_model.json
#   make surrogate-bench-smoke CI-sized surrogate-screening benchmark (3x
#                          exact-eval gate + recall parity, recorded only
#                          in quick mode, no write)
#   make surrogate-bench   full surrogate-screening benchmark on the 112k-point
#                          space, records BENCH_surrogate.json
#   make bench-quick       CI-sized engine scaling benchmark (no baseline write)
#   make bench             full engine scaling benchmark, records BENCH_engine.json
#   make ci                what every PR must pass: tier-1 + the smokes + gates
#
# PYTHONPATH is set here so no editable install is needed on CI runners.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke api-smoke campaign-smoke shard-smoke physical-smoke template-smoke trace-smoke surrogate-smoke serve-smoke serve-bench bench-serve serve-bench-smoke physical-bench physical-bench-smoke template-bench template-bench-smoke model-bench model-bench-smoke surrogate-bench surrogate-bench-smoke bench bench-quick ci

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) examples/quickstart.py --workers 2

api-smoke:
	$(PYTHON) -W error::DeprecationWarning examples/api_smoke.py

campaign-smoke:
	$(PYTHON) examples/campaign_smoke.py

shard-smoke:
	$(PYTHON) examples/shard_smoke.py

physical-smoke:
	$(PYTHON) examples/physical_smoke.py

template-smoke:
	$(PYTHON) examples/template_smoke.py

trace-smoke:
	$(PYTHON) examples/trace_smoke.py

surrogate-smoke:
	$(PYTHON) examples/surrogate_smoke.py

serve-smoke:
	$(PYTHON) examples/serve_smoke.py

serve-bench-smoke:
	$(PYTHON) benchmarks/bench_serve.py --quick

serve-bench:
	$(PYTHON) benchmarks/bench_serve.py

# alias kept for discoverability (`bench-serve` mirrors `bench-quick`/`bench`)
bench-serve: serve-bench

physical-bench-smoke:
	$(PYTHON) benchmarks/bench_physical_pipeline.py --quick

physical-bench:
	$(PYTHON) benchmarks/bench_physical_pipeline.py

template-bench-smoke:
	$(PYTHON) benchmarks/bench_template_reuse.py --quick

template-bench:
	$(PYTHON) benchmarks/bench_template_reuse.py

model-bench-smoke:
	$(PYTHON) benchmarks/bench_model_vectorized.py --quick

model-bench:
	$(PYTHON) benchmarks/bench_model_vectorized.py

surrogate-bench-smoke:
	$(PYTHON) benchmarks/bench_surrogate.py --quick

surrogate-bench:
	$(PYTHON) benchmarks/bench_surrogate.py

bench-quick:
	$(PYTHON) benchmarks/bench_engine_scaling.py --quick --workers 2

bench:
	$(PYTHON) benchmarks/bench_engine_scaling.py

ci: test smoke api-smoke campaign-smoke shard-smoke physical-smoke template-smoke trace-smoke surrogate-smoke serve-smoke model-bench-smoke physical-bench-smoke template-bench-smoke serve-bench-smoke surrogate-bench-smoke
