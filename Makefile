# CI entry points for the EasyACIM reproduction.
#
#   make test            tier-1 test suite (the PR gate)
#   make smoke           quickstart flow through the parallel engine (2 workers)
#   make campaign-smoke  tiny campaign -> kill -> resume -> query (store path)
#   make bench-quick     CI-sized engine scaling benchmark (no baseline write)
#   make bench           full engine scaling benchmark, records BENCH_engine.json
#   make ci              what every PR must pass: tier-1 + both smokes
#
# PYTHONPATH is set here so no editable install is needed on CI runners.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke campaign-smoke bench bench-quick ci

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) examples/quickstart.py --workers 2

campaign-smoke:
	$(PYTHON) examples/campaign_smoke.py

bench-quick:
	$(PYTHON) benchmarks/bench_engine_scaling.py --quick --workers 2

bench:
	$(PYTHON) benchmarks/bench_engine_scaling.py

ci: test smoke campaign-smoke
