"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
the package can be installed in editable mode on environments whose
setuptools/pip combination still requires the legacy ``setup.py`` path
(e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
