"""Tests of the persistent result store (round-trip, concurrency, query)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.dse.distill import DistillationCriteria
from repro.engine import (
    EvaluationCache,
    EvaluationEngine,
    parameters_cache_key,
    spec_cache_key,
)
from repro.errors import StoreError
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.reporting.export import export_json, load_json
from repro.store import (
    ResultStore,
    SCHEMA_VERSION,
    canonical_key,
    key_digest,
)


def _entries(estimator, specs):
    """(engine cache key, metrics) pairs for a list of specs."""
    params_key = parameters_cache_key(estimator.parameters)
    metrics = estimator.evaluate_batch(specs)
    return [
        (spec_cache_key(spec, params_key=params_key), m)
        for spec, m in zip(specs, metrics)
    ]


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store.sqlite") as store:
        yield store


SPECS = [
    ACIMDesignSpec(128, 8, 4, 3),
    ACIMDesignSpec(64, 16, 4, 3),
    ACIMDesignSpec(256, 4, 8, 4),
]


class TestResultStoreRoundTrip:
    def test_put_get_round_trip(self, store, estimator):
        entries = _entries(estimator, SPECS)
        assert store.put_many(entries) == len(entries)
        for key, metrics in entries:
            assert store.get(key) == metrics  # bit-exact (REAL is float64)
        assert len(store) == len(entries)

    def test_rewrites_are_idempotent(self, store, estimator):
        entries = _entries(estimator, SPECS)
        store.put_many(entries)
        assert store.put_many(entries) == 0
        assert len(store) == len(entries)

    def test_missing_key_returns_none(self, store, estimator):
        (key, _metrics), = _entries(estimator, SPECS[:1])
        assert store.get(key) is None

    def test_distinct_parameters_are_distinct_entries(self, store):
        spec = SPECS[0]
        for params in (ModelParameters(), ModelParameters.calibrated()):
            store.put_many(_entries(ACIMEstimator(params), [spec]))
        assert len(store) == 2

    def test_canonical_key_digest_is_stable(self, estimator):
        params_key = parameters_cache_key(estimator.parameters)
        key = spec_cache_key(SPECS[0], params_key=params_key)
        assert canonical_key(key) == canonical_key(key)
        assert key_digest(key) == key_digest(key)
        other = spec_cache_key(SPECS[1], params_key=params_key)
        assert key_digest(key) != key_digest(other)

    def test_store_survives_reopen(self, tmp_path, estimator):
        path = tmp_path / "store.sqlite"
        entries = _entries(estimator, SPECS)
        with ResultStore(path) as store:
            store.put_many(entries)
        with ResultStore(path) as store:
            assert len(store) == len(entries)
            assert store.get(entries[0][0]) == entries[0][1]

    def test_closed_store_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store.sqlite")
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError):
            len(store)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            # The connection is in autocommit mode; the UPDATE lands at once.
            store._conn.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        with pytest.raises(StoreError, match="schema version"):
            ResultStore(path)


class TestHydration:
    def test_hydrate_fills_cache(self, store, estimator):
        entries = _entries(estimator, SPECS)
        store.put_many(entries)
        cache = EvaluationCache(max_size=16)
        keys = store.hydrate(cache)
        assert len(keys) == len(entries)
        for key, metrics in entries:
            assert cache.get(key) == metrics

    def test_hydrate_respects_cache_capacity(self, store, estimator):
        store.put_many(_entries(estimator, SPECS))
        cache = EvaluationCache(max_size=2)
        assert len(store.hydrate(cache)) == 2
        assert len(cache) == 2

    def test_hydrate_keeps_newest_entries_most_recently_used(
        self, store, estimator
    ):
        entries = _entries(estimator, SPECS)
        for entry in entries:  # staggered writes: distinct created_at
            store.put_many([entry])
        cache = EvaluationCache(max_size=2)
        store.hydrate(cache)
        # Under pressure the oldest hydrated entry is evicted first; the
        # newest stored evaluation survives as most-recently-used.
        cache.put("fresh", object())
        assert cache.get(entries[-1][0]) is not None

    def test_engine_warm_starts_and_writes_behind(self, tmp_path, estimator):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            with EvaluationEngine(
                cache=EvaluationCache(), store=store
            ) as engine:
                engine.evaluate_specs(estimator, SPECS)
                assert engine.stats.evaluations == len(SPECS)
                assert engine.stats.store_hits == 0
            # close() flushed the write-behind buffer
            assert len(store) == len(SPECS)
        # A fresh engine (fresh cache, reopened store = a new process's
        # view) serves the same specs from the persistent store.
        with ResultStore(path) as store:
            with EvaluationEngine(
                cache=EvaluationCache(), store=store
            ) as engine:
                engine.evaluate_specs(estimator, SPECS)
                assert engine.stats.evaluations == 0
                assert engine.stats.cache_hits == len(SPECS)
                assert engine.stats.store_hits == len(SPECS)

    def test_write_behind_flushes_in_batches(self, store, estimator):
        with EvaluationEngine(
            cache=EvaluationCache(), store=store, store_flush_size=2
        ) as engine:
            engine.evaluate_specs(estimator, SPECS)
            # 3 misses with a batch size of 2: one mid-run flush committed.
            assert len(store) >= 2
            assert engine.stats.store_writes >= 2


class TestConcurrentWriters:
    def test_two_processes_write_concurrently(self, tmp_path):
        path = tmp_path / "store.sqlite"
        script = (
            "import sys\n"
            "from repro.arch.spec import ACIMDesignSpec\n"
            "from repro.engine import parameters_cache_key, spec_cache_key\n"
            "from repro.model.estimator import ACIMEstimator\n"
            "from repro.store import ResultStore\n"
            "adc_bits = int(sys.argv[2])\n"
            "estimator = ACIMEstimator()\n"
            "params_key = parameters_cache_key(estimator.parameters)\n"
            "specs = [ACIMDesignSpec(h, 4096 // h, 2, adc_bits)\n"
            "         for h in (64, 128, 256, 512, 1024, 2048)]\n"
            "entries = [(spec_cache_key(s, params_key=params_key), m)\n"
            "           for s, m in zip(specs, estimator.evaluate_batch(specs))]\n"
            "with ResultStore(sys.argv[1]) as store:\n"
            "    for entry in entries:\n"
            "        store.put_many([entry])\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), str(bits)],
                env=env, stderr=subprocess.PIPE,
            )
            for bits in (3, 4)
        ]
        for worker in workers:
            _stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr.decode()
        with ResultStore(path) as store:
            assert len(store) == 12  # 6 heights x 2 disjoint ADC precisions


class TestQuery:
    def test_query_filters_and_ranks(self, store, estimator):
        store.put_many(_entries(estimator, SPECS))
        everything = store.query(pareto_only=False)
        assert len(everything) == len(SPECS)
        ranked = [e.metrics.tops_per_watt for e in everything]
        assert ranked == sorted(ranked, reverse=True)
        floor = ranked[1]
        criteria = DistillationCriteria(min_tops_per_watt=floor)
        selected = store.query(criteria=criteria, pareto_only=False)
        assert len(selected) == 2

    def test_query_pareto_only_drops_dominated(self, store, estimator):
        # Same (L, B) at different heights: a strictly dominated point
        # exists in the full set but not in the Pareto-only view.
        specs = [ACIMDesignSpec(h, 2048 // h, 4, 3) for h in (32, 64, 128, 256)]
        store.put_many(_entries(estimator, specs))
        full = store.query(pareto_only=False)
        pareto = store.query(pareto_only=True)
        assert 0 < len(pareto) <= len(full)

    def test_query_limit_and_rank_direction(self, store, estimator):
        store.put_many(_entries(estimator, SPECS))
        top = store.query(pareto_only=False, rank_by="area_f2_per_bit", limit=1)
        assert len(top) == 1
        areas = [e.metrics.area_f2_per_bit
                 for e in store.query(pareto_only=False,
                                      rank_by="area_f2_per_bit")]
        assert areas == sorted(areas)  # smaller area ranks first

    def test_unknown_rank_metric_rejected(self, store):
        with pytest.raises(StoreError, match="rank metric"):
            store.query(rank_by="speed")


class TestAtomicJsonExport:
    def test_export_ends_with_newline_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "out.json"
        export_json([{"a": 1}], path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["records"] == [{"a": 1}]
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_export_replaces_existing_document_atomically(self, tmp_path):
        path = tmp_path / "out.json"
        export_json([{"a": 1}], path)
        export_json([{"a": 2}], path, metadata={"run": 2})
        document = load_json(path)
        assert document["records"] == [{"a": 2}]
        assert document["metadata"] == {"run": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
