"""Unit tests for the behavioral simulation (SAR ADC, QR column, Monte Carlo)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.arch.spec import ACIMDesignSpec
from repro.sim import (
    MonteCarloSnr,
    NoiseSettings,
    QrColumnSimulator,
    SarAdc,
    binary_workload,
    cdac_switching_energy,
    code_to_value,
    gaussian_workload,
    measure_statistics,
    sar_adc_energy,
)
from repro.sim.sar_adc import adc_energy_samples
from repro.sim.workloads import sparse_workload


class TestSarAdc:
    def test_full_scale_codes(self):
        adc = SarAdc(bits=4, v_low=0.0, v_high=1.6)
        assert adc.convert(-0.5) == 0
        assert adc.convert(2.0) == 15

    def test_midscale_code(self):
        adc = SarAdc(bits=3, v_low=0.0, v_high=0.8)
        assert adc.convert(0.4) == 4

    def test_conversion_is_monotonic(self):
        adc = SarAdc(bits=5, v_low=0.0, v_high=0.9)
        voltages = np.linspace(0.0, 0.9, 200)
        codes = [adc.convert(v) for v in voltages]
        assert all(b >= a for a, b in zip(codes, codes[1:]))

    def test_quantization_error_bounded_by_half_lsb(self):
        adc = SarAdc(bits=6, v_low=0.0, v_high=0.9)
        rng = np.random.default_rng(1)
        for v in rng.uniform(0.01, 0.89, 100):
            reconstructed = adc.code_to_voltage(adc.convert(v))
            assert abs(reconstructed - v) <= adc.lsb / 2 + 1e-12

    def test_vectorised_matches_scalar(self):
        adc = SarAdc(bits=4, v_low=0.0, v_high=0.9)
        voltages = np.linspace(0.0, 0.9, 33)
        vector_codes = adc.convert_many(voltages)
        scalar_codes = np.array([adc.convert(v) for v in voltages])
        assert np.array_equal(vector_codes, scalar_codes)

    def test_comparator_noise_changes_results(self):
        noisy = SarAdc(bits=8, v_low=0.0, v_high=0.9, comparator_noise_sigma=0.01)
        rng = np.random.default_rng(7)
        codes = {noisy.convert(0.45, rng=rng) for _ in range(50)}
        assert len(codes) > 1

    def test_code_to_value_range(self):
        values = code_to_value(np.arange(8), bits=3, low=-1.0, high=1.0)
        assert values[0] == pytest.approx(-0.875)
        assert values[-1] == pytest.approx(0.875)

    def test_invalid_configuration(self):
        with pytest.raises(SimulationError):
            SarAdc(bits=0)
        with pytest.raises(SimulationError):
            SarAdc(bits=3, v_low=1.0, v_high=0.5)
        with pytest.raises(SimulationError):
            SarAdc(bits=3).code_to_voltage(8)


class TestAdcEnergy:
    def test_cdac_energy_scales_with_total_capacitance(self):
        assert cdac_switching_energy(6) == pytest.approx(2 * cdac_switching_energy(5))

    def test_total_energy_monotonic(self):
        energies = [sar_adc_energy(b) for b in range(1, 9)]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_energy_samples_helper(self):
        samples = adc_energy_samples((2, 6))
        assert set(samples) == {2, 3, 4, 5, 6}

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            sar_adc_energy(0)
        with pytest.raises(SimulationError):
            cdac_switching_energy(3, unit_capacitance=-1e-15)


class TestQrColumnSimulator:
    def _spec(self):
        return ACIMDesignSpec(64, 8, 4, 3)

    def test_ideal_simulation_matches_ideal_dot_product_coarsely(self):
        simulator = QrColumnSimulator(self._spec(), noise=NoiseSettings.ideal())
        rng = np.random.default_rng(3)
        n = self._spec().local_arrays_per_column
        for _ in range(20):
            x = (rng.random(n) < 0.5).astype(float)
            w = rng.choice((-1.0, 1.0), n)
            ideal = simulator.ideal_dot_product(x, w)
            measured = simulator.dot_product(x, w)
            # With B=3 over a +/-16 range one LSB is 4 product units.
            assert abs(measured - ideal) <= 2.5

    def test_zero_products_give_midscale(self):
        simulator = QrColumnSimulator(self._spec(), noise=NoiseSettings.ideal())
        code, estimate = simulator.compute_cycle(np.zeros(16))
        assert abs(estimate) <= 2.0
        assert code in (2 ** 3 // 2 - 1, 2 ** 3 // 2)

    def test_full_scale_positive(self):
        simulator = QrColumnSimulator(self._spec(), noise=NoiseSettings.ideal())
        code, estimate = simulator.compute_cycle(np.ones(16))
        assert code == 7
        assert estimate > 10

    def test_mismatch_sampling_repeatable_with_seed(self):
        spec = self._spec()
        sim_a = QrColumnSimulator(spec, rng=np.random.default_rng(5))
        sim_b = QrColumnSimulator(spec, rng=np.random.default_rng(5))
        assert np.allclose(sim_a.capacitors, sim_b.capacitors)

    def test_mismatch_disabled_gives_nominal_caps(self):
        simulator = QrColumnSimulator(self._spec(), noise=NoiseSettings.ideal())
        assert np.allclose(simulator.capacitors, 1e-15)

    def test_wrong_product_count_rejected(self):
        simulator = QrColumnSimulator(self._spec())
        with pytest.raises(SimulationError):
            simulator.mac_phase(np.zeros(5))

    def test_out_of_range_products_rejected(self):
        simulator = QrColumnSimulator(self._spec())
        with pytest.raises(SimulationError):
            simulator.mac_phase(np.full(16, 2.0))

    def test_charge_redistribution_is_capacitance_weighted_mean(self):
        simulator = QrColumnSimulator(self._spec(), noise=NoiseSettings.ideal())
        voltages = np.linspace(0.0, 0.9, 16)
        v_x = simulator.charge_redistribution(voltages)
        assert v_x == pytest.approx(np.mean(voltages))

    def test_infeasible_spec_rejected(self):
        with pytest.raises(Exception):
            QrColumnSimulator(ACIMDesignSpec(8, 4, 8, 4))


class TestWorkloads:
    def test_binary_statistics_match_claim(self):
        stats = measure_statistics(binary_workload(), length=128, samples=100)
        assert stats["measured_mean_x_squared"] == pytest.approx(
            stats["claimed_mean_x_squared"], abs=0.05)
        assert stats["measured_sigma_w"] == pytest.approx(
            stats["claimed_sigma_w"], abs=0.05)

    def test_sparse_workload_density(self):
        generator = sparse_workload(density=0.1)
        x, _w = generator.sample(10_000, np.random.default_rng(0))
        assert np.mean(x) == pytest.approx(0.1, abs=0.02)

    def test_gaussian_workload_is_quantised(self):
        generator = gaussian_workload(bits_x=2, bits_w=2)
        x, w = generator.sample(1000, np.random.default_rng(0))
        assert len(np.unique(np.round(x, 6))) <= 2 ** 2 + 1
        assert np.max(np.abs(w)) <= generator.statistics.w_max + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            binary_workload(activation_density=0.0)
        with pytest.raises(SimulationError):
            binary_workload().sample(0)


class TestMonteCarloSnr:
    def test_snr_improves_with_adc_bits(self):
        low = MonteCarloSnr(ACIMDesignSpec(64, 8, 4, 2), seed=9).run(trials=600)
        high = MonteCarloSnr(ACIMDesignSpec(64, 8, 4, 4), seed=9).run(trials=600)
        assert high.snr_db > low.snr_db + 5.0

    def test_snr_degrades_with_longer_accumulation(self):
        short = MonteCarloSnr(ACIMDesignSpec(64, 8, 8, 3), seed=11).run(trials=600)
        long = MonteCarloSnr(ACIMDesignSpec(256, 8, 4, 3), seed=11).run(trials=600)
        assert short.snr_db > long.snr_db

    def test_measured_snr_tracks_analytic_model(self, estimator):
        spec = ACIMDesignSpec(64, 8, 4, 4)
        measurement = MonteCarloSnr(spec, seed=21).run(trials=1500)
        analytic = estimator.snr_model.design_snr_db(
            spec.adc_bits, spec.local_arrays_per_column)
        assert measurement.snr_db == pytest.approx(analytic, abs=4.0)

    def test_measurement_record_fields(self):
        measurement = MonteCarloSnr(ACIMDesignSpec(32, 4, 4, 3), seed=2).run(trials=200)
        assert measurement.trials >= 200 - 8
        assert measurement.signal_variance > 0
        assert measurement.error_variance > 0

    def test_too_few_trials_rejected(self):
        with pytest.raises(SimulationError):
            MonteCarloSnr(ACIMDesignSpec(32, 4, 4, 3)).run(trials=5)
