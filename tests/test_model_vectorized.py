"""Tests of the vectorized array-model core: SpecBatch and the NumPy kernels.

The contract under test:

* :class:`~repro.arch.batch.SpecBatch` round-trips with scalar specs, its
  feasibility mask mirrors the scalar Equation-12 rules, and its grid
  constructors reproduce the historical enumeration order exactly;
* the vectorized estimator path agrees with the retained scalar reference
  within 1e-12 relative on all eight metrics (property-tested on random
  spec batches);
* on the power-of-two design space the Equation-12 *objectives* are
  bit-identical between the two paths, so a fixed-seed NSGA-II run produces
  a bit-identical Pareto front before and after the vectorization (asserted
  in ``tests/test_engine.py`` alongside the cross-backend regression).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec, enumerate_design_space
from repro.errors import ModelError, SpecificationError
from repro.model.estimator import (
    ACIMEstimator,
    METRIC_FIELDS,
    MetricsArrays,
    ModelParameters,
)

#: Strategy for one feasible design point: H = L * 2^k with k >= B_ADC.
feasible_specs = st.builds(
    lambda local_exp, extra_exp, width, adc_bits: ACIMDesignSpec(
        height=(2 ** local_exp) * (2 ** max(extra_exp, adc_bits)),
        width=width,
        local_array_size=2 ** local_exp,
        adc_bits=adc_bits,
    ),
    local_exp=st.integers(min_value=1, max_value=5),
    extra_exp=st.integers(min_value=0, max_value=10),
    width=st.integers(min_value=1, max_value=512),
    adc_bits=st.integers(min_value=1, max_value=8),
)


class TestSpecBatch:
    def test_roundtrip_with_scalar_specs(self):
        specs = list(enumerate_design_space(4096))
        batch = SpecBatch.from_specs(specs)
        assert len(batch) == len(specs)
        assert batch.to_specs() == specs
        assert batch.as_tuples() == [spec.as_tuple() for spec in specs]

    def test_scalar_indexing_and_slicing(self):
        specs = list(enumerate_design_space(1024))
        batch = SpecBatch.from_specs(specs)
        assert batch[0] == specs[0]
        assert batch.spec_at(len(specs) - 1) == specs[-1]
        sub = batch[2:5]
        assert isinstance(sub, SpecBatch)
        assert sub.to_specs() == specs[2:5]
        taken = batch.take([4, 1, 0])
        assert taken.to_specs() == [specs[4], specs[1], specs[0]]

    def test_concat(self):
        specs = list(enumerate_design_space(1024))
        batch = SpecBatch.from_specs(specs)
        joined = SpecBatch.concat([batch[:3], batch[3:]])
        assert joined.to_specs() == specs
        assert len(SpecBatch.concat([])) == 0

    def test_derived_columns_match_scalar_properties(self):
        specs = list(enumerate_design_space(4096))
        batch = SpecBatch.from_specs(specs)
        assert batch.array_size.tolist() == [s.array_size for s in specs]
        assert batch.local_arrays_per_column.tolist() == [
            s.local_arrays_per_column for s in specs
        ]

    def test_feasible_mask_matches_scalar_rules(self):
        rng = np.random.default_rng(11)
        specs = [
            ACIMDesignSpec(int(h), int(w), int(l), int(b))
            for h, w, l, b in zip(
                rng.integers(1, 300, 400), rng.integers(1, 300, 400),
                rng.integers(1, 48, 400), rng.integers(1, 9, 400),
            )
        ]
        batch = SpecBatch.from_specs(specs)
        assert batch.feasible_mask().tolist() == [
            s.is_feasible() for s in specs
        ]
        assert batch.feasible_mask(1024).tolist() == [
            s.is_feasible(1024) for s in specs
        ]

    def test_validate_raises_on_infeasible_row(self):
        batch = SpecBatch.from_specs(
            [ACIMDesignSpec(64, 16, 2, 4), ACIMDesignSpec(8, 4, 8, 4)]
        )
        with pytest.raises(SpecificationError):
            batch.validate()
        batch[:1].validate()  # the feasible prefix passes

    def test_enumerate_matches_iterator_order(self):
        for array_size in (64, 1024, 16384):
            batch = SpecBatch.enumerate(array_size)
            assert batch.to_specs() == list(enumerate_design_space(array_size))

    def test_enumerate_non_power_of_two_space(self):
        kwargs = dict(
            local_array_sizes=(2, 3, 4, 6),
            power_of_two_heights=False,
            min_height=3,
            max_height=256,
        )
        batch = SpecBatch.enumerate(1152, **kwargs)
        assert batch.to_specs() == list(enumerate_design_space(1152, **kwargs))
        assert len(batch) > 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(SpecificationError):
            SpecBatch(height=[2, 4], width=[1], local_array_size=[2, 2],
                      adc_bits=[1, 1])


class TestVectorizedParity:
    """The array kernels track the scalar reference within 1e-12 relative."""

    @staticmethod
    def _assert_parity(estimator, specs):
        reference = estimator.evaluate_batch_reference(specs)
        vectorized = estimator.evaluate_batch(specs)
        assert len(vectorized) == len(reference)
        for ref, vec in zip(reference, vectorized):
            assert vec.spec == ref.spec
            for field in METRIC_FIELDS:
                assert getattr(vec, field) == pytest.approx(
                    getattr(ref, field), rel=1e-12, abs=0.0
                ), field

    @settings(max_examples=25, deadline=None)
    @given(st.lists(feasible_specs, min_size=1, max_size=40))
    def test_random_batches_simplified_snr(self, specs):
        self._assert_parity(ACIMEstimator(), specs)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(feasible_specs, min_size=1, max_size=40))
    def test_random_batches_full_snr(self, specs):
        estimator = ACIMEstimator(ModelParameters(use_simplified_snr=False))
        self._assert_parity(estimator, specs)

    def test_whole_grid_parity_calibrated(self):
        estimator = ACIMEstimator(ModelParameters.calibrated())
        specs = list(enumerate_design_space(16384))
        self._assert_parity(estimator, specs)

    def test_scalar_fast_path_parity(self):
        estimator = ACIMEstimator()
        specs = list(enumerate_design_space(4096))
        vectorized = estimator.evaluate_batch(specs)
        for spec, vec in zip(specs, vectorized):
            scalar = estimator.evaluate(spec)
            for field in METRIC_FIELDS:
                assert getattr(scalar, field) == pytest.approx(
                    getattr(vec, field), rel=1e-12, abs=0.0
                ), field

    def test_objectives_bit_identical_on_power_of_two_space(self):
        # Stronger than the 1e-12 bound: the Equation-12 objectives go
        # through log10 of powers of two and pure arithmetic only, where
        # the NumPy ufuncs agree with ``math`` bit for bit — the property
        # the bit-identical NSGA-II front regression rests on.
        estimator = ACIMEstimator()
        specs = []
        for exp in (10, 12, 14, 16, 20):
            specs.extend(enumerate_design_space(2 ** exp))
        reference = estimator.evaluate_batch_reference(specs)
        vectorized = estimator.evaluate_batch(specs)
        assert [m.objectives() for m in vectorized] == [
            m.objectives() for m in reference
        ]
        scalar = [estimator.evaluate(spec).objectives() for spec in specs]
        assert scalar == [m.objectives() for m in vectorized]


class TestEvaluateArrays:
    def test_structure_of_arrays_result(self):
        estimator = ACIMEstimator()
        batch = SpecBatch.enumerate(4096)
        arrays = estimator.evaluate_arrays(batch)
        assert isinstance(arrays, MetricsArrays)
        assert len(arrays) == len(batch)
        objectives = arrays.objectives_array()
        assert objectives.shape == (len(batch), 4)
        metrics = arrays.to_metrics()
        assert metrics == estimator.evaluate_batch(batch)
        assert arrays.metrics_at(3) == metrics[3]
        np.testing.assert_array_equal(
            objectives[:, 0], [-m.snr_db for m in metrics]
        )

    def test_empty_batch(self):
        estimator = ACIMEstimator()
        empty = SpecBatch(height=[], width=[], local_array_size=[], adc_bits=[])
        arrays = estimator.evaluate_arrays(empty)
        assert len(arrays) == 0
        assert arrays.to_metrics() == []
        assert estimator.evaluate_batch([]) == []

    def test_invalid_spec_rejected(self):
        estimator = ACIMEstimator()
        with pytest.raises(SpecificationError):
            estimator.evaluate_batch([ACIMDesignSpec(8, 4, 8, 4)])

    def test_duplicates_return_equal_metrics(self):
        estimator = ACIMEstimator()
        spec = ACIMDesignSpec(64, 16, 2, 4)
        results = estimator.evaluate_batch([spec, spec, spec])
        assert results[0] == results[1] == results[2]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            ACIMEstimator(kernel="gpu")

    def test_reference_kernel_estimator_uses_scalar_loop(self):
        estimator = ACIMEstimator(kernel="reference")
        specs = list(enumerate_design_space(1024))
        assert estimator.evaluate_batch(specs) == \
            estimator.evaluate_batch_reference(specs)


class TestKernelDomainChecks:
    def test_snr_kernels_reject_bad_domains(self):
        estimator = ACIMEstimator()
        snr = estimator.snr_model
        with pytest.raises(ModelError):
            snr.simplified_snr_db_array(np.array([0]), np.array([4]))
        with pytest.raises(ModelError):
            snr.total_snr_db_array(np.array([4]), np.array([0]))

    def test_energy_kernel_rejects_bad_adc_bits(self):
        estimator = ACIMEstimator()
        with pytest.raises(ModelError):
            estimator.energy_model.adc_energy_array(np.array([0]))

    def test_snr_kernel_values_match_scalar_functions(self):
        snr = ACIMEstimator().snr_model
        adc = np.array([1, 3, 5, 8])
        n = np.array([2, 8, 32, 256])
        for adc_bits, length in zip(adc.tolist(), n.tolist()):
            index = int(np.where(adc == adc_bits)[0][0])
            assert snr.simplified_snr_db_array(adc, n)[index] == pytest.approx(
                snr.simplified_snr_db(adc_bits, length), rel=1e-12, abs=0.0)
            assert snr.total_snr_db_array(adc, n)[index] == pytest.approx(
                snr.total_snr_db(adc_bits, length), rel=1e-12, abs=0.0)
            assert snr.design_snr_db_array(adc, n)[index] == pytest.approx(
                snr.design_snr_db(adc_bits, length), rel=1e-12, abs=0.0)
