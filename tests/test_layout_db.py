"""Unit tests for the layout database (cells, instances, grids, DRC)."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    DRCChecker,
    GridNode,
    LayoutCell,
    PlacementGrid,
    Rect,
    RoutingGrid,
    Transform,
)
from repro.layout.drc import summarize_violations
from repro.layout.geometry import Orientation, Point


def _leaf(name="leaf", width=1000, height=500):
    cell = LayoutCell(name, boundary=Rect(0, 0, width, height))
    cell.add_shape("M1", Rect(100, 100, width - 100, height - 100), net="X")
    cell.add_pin("A", "M1", Rect(0, 200, 100, 300))
    return cell


class TestLayoutCell:
    def test_boundary_is_bounding_box(self):
        cell = _leaf()
        assert cell.bounding_box() == Rect(0, 0, 1000, 500)
        assert cell.width == 1000 and cell.height == 500

    def test_bounding_box_from_contents_when_no_boundary(self):
        cell = LayoutCell("c")
        cell.add_shape("M1", Rect(10, 10, 110, 60))
        assert cell.bounding_box() == Rect(10, 10, 110, 60)

    def test_empty_cell_has_no_bbox(self):
        assert LayoutCell("empty").bounding_box() is None

    def test_duplicate_pin_rejected(self):
        cell = _leaf()
        with pytest.raises(LayoutError):
            cell.add_pin("A", "M1", Rect(0, 0, 10, 10))

    def test_pin_lookup(self):
        cell = _leaf()
        assert cell.pin("A").layer == "M1"
        assert cell.has_pin("A")
        with pytest.raises(LayoutError):
            cell.pin("B")

    def test_instance_placement_and_pin_access(self):
        parent = LayoutCell("parent")
        child = _leaf()
        instance = parent.add_instance("I0", child, Transform(5000, 1000))
        assert instance.bounding_box() == Rect(5000, 1000, 6000, 1500)
        access = instance.pin_access("A")
        assert access == Point(5000 + 50, 1000 + 250)

    def test_duplicate_instance_rejected(self):
        parent = LayoutCell("parent")
        child = _leaf()
        parent.add_instance("I0", child)
        with pytest.raises(LayoutError):
            parent.add_instance("I0", child)

    def test_self_instantiation_rejected(self):
        cell = _leaf()
        with pytest.raises(LayoutError):
            cell.add_instance("X", cell)

    def test_flat_shapes_respect_transforms(self):
        parent = LayoutCell("parent")
        child = _leaf()
        parent.add_instance("I0", child, Transform(10000, 0))
        flat = list(parent.iter_flat_shapes())
        # child has 2 shapes (internal + pin shape)
        assert len(flat) == 2
        assert all(shape.rect.x_lo >= 10000 for shape in flat)

    def test_flat_shapes_depth_limit(self):
        parent = LayoutCell("parent")
        parent.add_shape("M1", Rect(0, 0, 10, 10))
        parent.add_instance("I0", _leaf())
        own_only = list(parent.iter_flat_shapes(depth=0))
        assert len(own_only) == 1

    def test_instance_count_recursive(self):
        grand = _leaf("grand")
        mid = LayoutCell("mid")
        mid.add_instance("G0", grand)
        top = LayoutCell("top")
        top.add_instance("M0", mid)
        top.add_instance("M1", mid)
        assert top.instance_count() == 2
        assert top.instance_count(recursive=True) == 4

    def test_collect_cells(self):
        mid = LayoutCell("mid")
        mid.add_instance("G0", _leaf("grand"))
        top = LayoutCell("top")
        top.add_instance("M0", mid)
        cells = top.collect_cells()
        assert set(cells) == {"top", "mid", "grand"}

    def test_set_boundary_from_contents(self):
        cell = LayoutCell("c")
        cell.add_shape("M1", Rect(100, 100, 400, 300))
        boundary = cell.set_boundary_from_contents(margin=50)
        assert boundary == Rect(50, 50, 450, 350)

    def test_set_boundary_on_empty_cell_raises(self):
        with pytest.raises(LayoutError):
            LayoutCell("c").set_boundary_from_contents()

    def test_move_instance(self):
        parent = LayoutCell("parent")
        parent.add_instance("I0", _leaf())
        parent.move_instance("I0", Transform(123, 456))
        assert parent.instance("I0").transform.dx == 123


class TestPlacementGrid:
    def test_dimensions(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        assert grid.columns == 10
        assert grid.rows == 5

    def test_place_and_occupancy(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        grid.place("A", 0, 0, 2, 2)
        assert not grid.can_place(1, 1, 1, 1)
        assert grid.can_place(1, 1, 1, 1, ignore="A")
        assert grid.can_place(2, 2, 2, 2)
        assert grid.utilization() == pytest.approx(4 / 50)

    def test_remove_frees_sites(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        grid.place("A", 0, 0, 2, 2)
        grid.remove("A")
        assert grid.can_place(0, 0, 2, 2)

    def test_out_of_bounds_placement(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        assert not grid.can_place(9, 4, 2, 2)

    def test_site_conversion(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        assert grid.site_origin(3, 2) == Point(300, 200)
        assert grid.site_of(Point(350, 220)) == (3, 2)

    def test_invalid_site_raises(self):
        grid = PlacementGrid(Rect(0, 0, 1000, 500), 100, 100)
        with pytest.raises(LayoutError):
            grid.site_origin(100, 0)


class TestRoutingGrid:
    def _grid(self, technology):
        return RoutingGrid(Rect(0, 0, 2000, 2000), technology.routing_layers[:3],
                           pitch=100)

    def test_node_count(self, technology):
        grid = self._grid(technology)
        assert grid.node_count() == grid.columns * grid.rows * 3

    def test_point_node_roundtrip(self, technology):
        grid = self._grid(technology)
        node = grid.point_to_node(Point(500, 700), 1)
        assert grid.node_to_point(node) == Point(500, 700)

    def test_obstacles_block_neighbors(self, technology):
        grid = self._grid(technology)
        node = GridNode(5, 5, 0)
        blocked = GridNode(6, 5, 0)
        grid.add_obstacle(blocked)
        neighbors = [n for n, _cost in grid.neighbors(node)]
        assert blocked not in neighbors

    def test_obstacle_rect_blocks_area(self, technology):
        grid = self._grid(technology)
        count = grid.add_obstacle_rect(0, Rect(0, 0, 500, 500))
        assert count > 0
        assert grid.is_blocked(GridNode(2, 2, 0))

    def test_clear_obstacle(self, technology):
        grid = self._grid(technology)
        node = GridNode(3, 3, 1)
        grid.add_obstacle(node)
        grid.clear_obstacle(node)
        assert not grid.is_blocked(node)

    def test_preferred_direction_neighbors(self, technology):
        grid = self._grid(technology)
        # Layer 0 (M1) is horizontal: in-layer neighbors only differ in x.
        node = GridNode(5, 5, 0)
        in_layer = [n for n, _c in grid.neighbors(node) if n.layer == 0]
        assert all(n.y == 5 for n in in_layer)

    def test_via_neighbors_have_higher_cost(self, technology):
        grid = self._grid(technology)
        node = GridNode(5, 5, 1)
        costs = {n.layer: cost for n, cost in grid.neighbors(node)}
        assert costs[2] > costs[1]


class TestDRC:
    def test_clean_cell(self, technology):
        cell = LayoutCell("clean", boundary=Rect(0, 0, 2000, 2000))
        cell.add_shape("M1", Rect(0, 0, 500, 200), net="a")
        cell.add_shape("M1", Rect(0, 400, 500, 600), net="b")
        checker = DRCChecker(technology)
        assert checker.is_clean(cell)

    def test_width_violation(self, technology):
        cell = LayoutCell("narrow")
        cell.add_shape("M1", Rect(0, 0, 20, 500))
        violations = DRCChecker(technology).check(cell)
        assert any(v.rule == "min_width" for v in violations)

    def test_spacing_violation(self, technology):
        cell = LayoutCell("tight")
        cell.add_shape("M1", Rect(0, 0, 500, 200), net="a")
        cell.add_shape("M1", Rect(0, 220, 500, 420), net="b")
        violations = DRCChecker(technology).check(cell)
        assert any(v.rule == "min_spacing" for v in violations)

    def test_same_net_shapes_do_not_violate_spacing(self, technology):
        cell = LayoutCell("same_net")
        cell.add_shape("M1", Rect(0, 0, 500, 200), net="a")
        cell.add_shape("M1", Rect(0, 210, 500, 400), net="a")
        violations = DRCChecker(technology).check(cell)
        assert not any(v.rule == "min_spacing" for v in violations)

    def test_area_violation(self, technology):
        cell = LayoutCell("tiny")
        cell.add_shape("M1", Rect(0, 0, 60, 60))
        violations = DRCChecker(technology).check(cell)
        assert any(v.rule == "min_area" for v in violations)

    def test_violations_found_in_hierarchy(self, technology):
        child = LayoutCell("child")
        child.add_shape("M1", Rect(0, 0, 20, 500))
        parent = LayoutCell("parent")
        parent.add_instance("I0", child, Transform(1000, 1000))
        violations = DRCChecker(technology).check(parent)
        assert violations and violations[0].location.x_lo >= 1000

    def test_summary(self, technology):
        cell = LayoutCell("narrow")
        cell.add_shape("M1", Rect(0, 0, 20, 500))
        summary = summarize_violations(DRCChecker(technology).check(cell))
        assert summary.get("min_width", 0) >= 1

    def test_all_violations_of_a_rule_are_reported(self, technology):
        # Five too-narrow shapes must yield five min_width records, plus
        # the min_area records for the same shapes -- one firing rule
        # never hides later shapes or later rules.
        cell = LayoutCell("many_narrow")
        for i in range(5):
            cell.add_shape("M1", Rect(i * 2000, 0, i * 2000 + 20, 500))
        violations = DRCChecker(technology).check(cell)
        widths = [v for v in violations if v.rule == "min_width"]
        assert len(widths) == 5
        assert {v.location.x_lo for v in widths} == {i * 2000 for i in range(5)}

    def test_max_violations_truncates_but_does_not_skip_rules(self, technology):
        cell = LayoutCell("mixed")
        cell.add_shape("M1", Rect(0, 0, 20, 500))        # width violation
        cell.add_shape("M1", Rect(5000, 0, 5500, 200), net="a")
        cell.add_shape("M1", Rect(5000, 220, 5500, 420), net="b")  # spacing
        full = DRCChecker(technology).check(cell)
        rules = {v.rule for v in full}
        assert "min_width" in rules and "min_spacing" in rules
        truncated = DRCChecker(technology).check(cell, max_violations=1)
        assert len(truncated) == 1
        assert truncated[0] == full[0]

    def test_assert_clean_raises_with_full_violation_report(self, technology):
        from repro.errors import DRCError

        cell = LayoutCell("dirty")
        for i in range(3):
            cell.add_shape("M1", Rect(i * 2000, 0, i * 2000 + 20, 500))
        with pytest.raises(DRCError) as excinfo:
            DRCChecker(technology).assert_clean(cell)
        error = excinfo.value
        record = error.as_dict()
        assert record["code"] == "drc"
        assert len(record["violations"]) == len(error.violations) >= 3
        first = record["violations"][0]
        assert first["rule"] == "min_width"
        assert first["layer"] == "M1"
        assert {"x_lo", "y_lo", "x_hi", "y_hi"} <= set(first)
        # The clean path raises nothing.
        clean = LayoutCell("clean", boundary=Rect(0, 0, 2000, 2000))
        clean.add_shape("M1", Rect(0, 0, 500, 200), net="a")
        DRCChecker(technology).assert_clean(clean)

    def test_library_leaf_cells_have_no_overlapping_different_nets(
        self, technology, cell_library
    ):
        # Leaf library cells should at least not contain metal shorts.
        checker = DRCChecker(technology)
        for name in ("sram8t", "sar_dff", "cmos_switch"):
            violations = checker.check(cell_library.layout(name))
            shorts = [v for v in violations if v.rule == "min_spacing" and v.measured == 0]
            assert not shorts, f"{name} has overlapping shapes on different nets"


class TestDefExport:
    def test_def_contains_components(self, tmp_path):
        from repro.layout.def_export import write_def

        parent = LayoutCell("top", boundary=Rect(0, 0, 5000, 5000))
        parent.add_instance("I0", _leaf(), Transform(100, 200))
        text = write_def(parent, tmp_path / "top.def")
        assert "DESIGN top ;" in text
        assert "COMPONENTS 1 ;" in text
        assert "- I0 leaf + PLACED ( 100 200 ) R0 ;" in text
        assert (tmp_path / "top.def").exists()
