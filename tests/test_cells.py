"""Unit tests for the customized cell library."""

import pytest

from repro.errors import CellLibraryError, FlowError
from repro.cells import (
    CellFootprints,
    CellLibrary,
    CmosSwitchCell,
    ComputeCapacitorCell,
    DynamicComparatorCell,
    InputBufferCell,
    LocalComputeCell,
    OutputBufferCell,
    SarDffCell,
    SenseAmplifierCell,
    Sram8TCell,
    default_cell_library,
)
from repro.cells.library import sar_controller_for
from repro.cells.sar_logic import SarControlCell
from repro.model.area import AreaParameters
from repro.netlist.device import DeviceType
from repro.netlist.traversal import count_devices, total_capacitance
from repro.units import um2_to_f2


class TestFootprints:
    def test_derived_from_area_parameters(self):
        footprints = CellFootprints.from_area_parameters(AreaParameters())
        # A_SRAM ~ 1612 F^2 at a 2 um column pitch is ~0.63 um tall.
        assert footprints.sram == pytest.approx(632, abs=3)
        assert footprints.local_compute == pytest.approx(1980, abs=10)
        assert footprints.comparator == pytest.approx(11368, abs=60)
        assert footprints.sar_dff == pytest.approx(2349, abs=15)

    def test_column_height_matches_figure8b(self):
        footprints = CellFootprints.from_area_parameters(AreaParameters())
        # Figure 8(b): H=128, L=8, B=3 columns are about 131 um tall.
        height = footprints.column_height(128, 8, 3)
        assert height == pytest.approx(131_000, rel=0.02)

    def test_column_height_matches_figure8a(self):
        footprints = CellFootprints.from_area_parameters(AreaParameters())
        height = footprints.column_height(128, 2, 3)
        assert height == pytest.approx(226_000, rel=0.02)

    def test_column_height_requires_multiple(self):
        footprints = CellFootprints.from_area_parameters(AreaParameters())
        with pytest.raises(CellLibraryError):
            footprints.column_height(100, 8, 3)

    def test_invalid_footprints_rejected(self):
        with pytest.raises(CellLibraryError):
            CellFootprints(column_width=0, sram=1, local_compute=1, comparator=1,
                           sar_dff=1, io_buffer=1)


class TestCellTemplates:
    CELLS = ["sram8t", "compute_cap", "local_compute", "sense_amp", "comparator",
             "sar_dff", "cmos_switch", "input_buffer", "output_buffer"]

    def test_library_provides_all_cells(self, cell_library):
        for name in self.CELLS:
            assert cell_library.has_cell(name)

    def test_netlists_validate(self, cell_library):
        for name in self.CELLS:
            cell_library.netlist(name).validate()

    def test_layouts_have_boundaries_and_pins(self, cell_library):
        for name in self.CELLS:
            layout = cell_library.layout(name)
            assert layout.boundary is not None and layout.boundary.area > 0
            assert layout.pins

    def test_netlist_layout_pin_consistency(self, cell_library):
        assert cell_library.check_consistency() == []

    def test_sram_has_eight_transistors(self, cell_library):
        counts = count_devices(cell_library.netlist("sram8t"))
        assert counts[DeviceType.NMOS] + counts[DeviceType.PMOS] == 8

    def test_local_compute_has_compute_capacitor(self, cell_library, technology):
        capacitance = total_capacitance(cell_library.netlist("local_compute"))
        assert capacitance == pytest.approx(technology.electrical.unit_capacitance)

    def test_switch_is_complementary_pair(self, cell_library):
        counts = count_devices(cell_library.netlist("cmos_switch"))
        assert counts[DeviceType.NMOS] == 1
        assert counts[DeviceType.PMOS] == 1

    def test_comparator_pins(self, cell_library):
        pins = {p.name for p in cell_library.netlist("comparator").pins}
        assert {"INP", "INN", "CLK", "COM", "COMB"} <= pins

    def test_supply_rails_present_in_every_layout(self, cell_library):
        for name in self.CELLS:
            layout = cell_library.layout(name)
            assert layout.has_pin("VDD") and layout.has_pin("VSS")

    def test_layout_shapes_stay_inside_boundary(self, cell_library):
        for name in self.CELLS:
            layout = cell_library.layout(name)
            boundary = layout.boundary
            for shape in layout.shapes:
                assert boundary.expanded(1).contains_rect(shape.rect), (
                    f"{name}: shape on {shape.layer} escapes the boundary")

    def test_cell_area_f2_close_to_model_constants(self, cell_library, technology):
        area_params = AreaParameters()
        sram_area = cell_library.template("sram8t").area_f2(technology)
        assert sram_area == pytest.approx(area_params.a_sram, rel=0.02)
        comp_area = cell_library.template("comparator").area_f2(technology)
        assert comp_area == pytest.approx(area_params.a_comparator, rel=0.02)

    def test_describe_mentions_devices(self, cell_library):
        text = cell_library.template("sram8t").describe()
        assert "8 devices" in text

    def test_invalid_footprint_rejected(self):
        with pytest.raises(CellLibraryError):
            Sram8TCell(height_dbu=0)


class TestSarController:
    def test_controller_stacks_dffs(self, cell_library, technology):
        controller = sar_controller_for(cell_library, bits=4)
        assert isinstance(controller, SarControlCell)
        netlist = controller.netlist()
        assert len(netlist.instances) == 4
        layout = controller.layout(technology)
        assert layout.instance_count() == 4
        dff_height = cell_library.template("sar_dff").height_dbu
        assert layout.boundary.height == 4 * dff_height

    def test_controller_exposes_per_bit_outputs(self, cell_library, technology):
        controller = sar_controller_for(cell_library, bits=3)
        pins = {p.name for p in controller.netlist().pins}
        assert {"P0", "P1", "P2", "N0", "N1", "N2"} <= pins
        layout = controller.layout(technology)
        assert layout.has_pin("P2") and layout.has_pin("N0")

    def test_controller_requires_positive_bits(self, cell_library):
        with pytest.raises(CellLibraryError):
            sar_controller_for(cell_library, bits=0)


class TestCellLibraryContainer:
    def test_duplicate_registration_rejected(self, technology):
        library = CellLibrary("dup", technology)
        library.register(Sram8TCell(632))
        with pytest.raises(CellLibraryError):
            library.register(Sram8TCell(632))

    def test_unknown_cell_raises(self, cell_library):
        with pytest.raises(CellLibraryError):
            cell_library.template("not_a_cell")

    def test_layout_view_is_cached(self, cell_library):
        assert cell_library.layout("sram8t") is cell_library.layout("sram8t")

    def test_report_lists_cells(self, cell_library):
        report = cell_library.report()
        assert "sram8t" in report and "comparator" in report

    def test_custom_area_parameters_change_footprints(self, technology):
        big = AreaParameters(a_sram=3000.0, a_local_compute=5050.67,
                             a_comparator=29000.0, a_dff=5992.0)
        library = default_cell_library(technology, area_parameters=big)
        assert library.template("sram8t").height_dbu > 1000
