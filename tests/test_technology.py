"""Unit tests for the technology package (layers, rules, generic28, I/O)."""

import pytest

from repro.errors import TechnologyError
from repro.technology import (
    DesignRule,
    DesignRuleSet,
    Layer,
    LayerType,
    MetalDirection,
    RuleType,
    Technology,
    ViaDefinition,
    generic28,
    technology_from_dict,
    technology_to_dict,
)
from repro.technology.layers import LayerMap


class TestLayer:
    def test_routing_layer_flag(self):
        layer = Layer("M1", 10, layer_type=LayerType.METAL, pitch=100,
                      default_width=50, min_width=50, min_spacing=50)
        assert layer.is_routing
        assert not layer.is_via

    def test_non_routing_metal_without_pitch(self):
        layer = Layer("MTOP", 30, layer_type=LayerType.METAL)
        assert not layer.is_routing

    def test_via_layer_flag(self):
        layer = Layer("VIA1", 11, layer_type=LayerType.VIA)
        assert layer.is_via

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Layer("", 1)

    def test_negative_gds_rejected(self):
        with pytest.raises(ValueError):
            Layer("M1", -1)

    def test_key_is_layer_datatype_pair(self):
        assert Layer("M1", 10, gds_datatype=5).key() == (10, 5)


class TestViaDefinition:
    def test_connects_is_order_independent(self):
        via = ViaDefinition("VIA12", "M1", "VIA1", "M2", 50, 70, 10, 10)
        assert via.connects("M1", "M2")
        assert via.connects("M2", "M1")
        assert not via.connects("M1", "M3")

    def test_footprint_includes_enclosure(self):
        via = ViaDefinition("VIA12", "M1", "VIA1", "M2", 50, 70, 10, 20)
        assert via.footprint() == (70, 90)

    def test_invalid_cut_size(self):
        with pytest.raises(ValueError):
            ViaDefinition("V", "M1", "VIA1", "M2", 0, 70, 10, 10)


class TestLayerMap:
    def test_add_and_lookup(self):
        layer_map = LayerMap()
        layer_map.add("M1", 10)
        assert layer_map.lookup("M1") == (10, 0)
        assert layer_map.lookup("M9") is None

    def test_reverse_lookup(self):
        layer_map = LayerMap()
        layer_map.add("M2", 12, 0)
        assert layer_map.reverse_lookup(12, 0) == "M2"
        assert layer_map.reverse_lookup(99) is None

    def test_duplicate_rejected(self):
        layer_map = LayerMap()
        layer_map.add("M1", 10)
        with pytest.raises(ValueError):
            layer_map.add("M1", 11)


class TestDesignRules:
    def test_lookup_by_type_and_layer(self):
        rules = DesignRuleSet([
            DesignRule(RuleType.MIN_WIDTH, "M1", 50),
            DesignRule(RuleType.MIN_SPACING, "M1", 60),
        ])
        assert rules.min_width("M1") == 50
        assert rules.min_spacing("M1") == 60
        assert rules.min_width("M2", default=42) == 42

    def test_duplicate_rule_rejected(self):
        rules = DesignRuleSet()
        rules.add(DesignRule(RuleType.MIN_WIDTH, "M1", 50))
        with pytest.raises(ValueError):
            rules.add(DesignRule(RuleType.MIN_WIDTH, "M1", 60))

    def test_enclosure_requires_other_layer(self):
        with pytest.raises(ValueError):
            DesignRule(RuleType.ENCLOSURE, "M1", 10)

    def test_from_layer_defaults(self):
        layers = [Layer("M1", 10, min_width=50, min_spacing=60)]
        rules = DesignRuleSet.from_layer_defaults(layers)
        assert rules.min_width("M1") == 50
        assert rules.min_spacing("M1") == 60

    def test_describe_mentions_layer(self):
        rule = DesignRule(RuleType.MIN_WIDTH, "M1", 50, name="M1.W")
        assert "M1" in rule.describe()


class TestGeneric28:
    def test_validates(self, technology):
        technology.validate()

    def test_feature_size(self, technology):
        assert technology.feature_size_nm() == pytest.approx(28.0)

    def test_has_six_routing_layers(self, technology):
        assert len(technology.routing_layers) == 6

    def test_routing_directions_alternate(self, technology):
        directions = [layer.direction for layer in technology.routing_layers]
        for lower, upper in zip(directions, directions[1:]):
            assert lower != upper

    def test_vias_exist_between_adjacent_layers(self, technology):
        routing = technology.routing_layers
        for lower, upper in zip(routing, routing[1:]):
            assert technology.via_between(lower.name, upper.name) is not None

    def test_unknown_layer_raises(self, technology):
        with pytest.raises(TechnologyError):
            technology.layer("M99")

    def test_unknown_via_raises(self, technology):
        with pytest.raises(TechnologyError):
            technology.via_between("M1", "M6")

    def test_layer_map_covers_all_layers(self, technology):
        assert len(technology.layer_map) == len(technology.layers)

    def test_electrical_defaults(self, technology):
        assert technology.electrical.vdd == pytest.approx(0.9)
        assert technology.electrical.vcm == pytest.approx(0.45)
        assert technology.electrical.unit_capacitance == pytest.approx(1e-15)

    def test_routing_layer_index(self, technology):
        assert technology.routing_layer_index("M1") == 0
        assert technology.routing_layer_index("M3") == 2
        with pytest.raises(TechnologyError):
            technology.routing_layer_index("POLY")


class TestTechnologyConstruction:
    def test_duplicate_layer_rejected(self):
        layers = [Layer("M1", 10), Layer("M1", 11)]
        with pytest.raises(TechnologyError):
            Technology("t", 28e-9, layers)

    def test_via_referencing_unknown_layer_rejected(self):
        layers = [Layer("M1", 10, pitch=100), Layer("VIA1", 11), Layer("M2", 12, pitch=100)]
        vias = [ViaDefinition("V", "M1", "VIA1", "M9", 50, 70, 10, 10)]
        with pytest.raises(TechnologyError):
            Technology("t", 28e-9, layers, vias)

    def test_validate_requires_two_routing_layers(self):
        tech = Technology("t", 28e-9, [Layer("M1", 10, pitch=100, min_width=50)])
        with pytest.raises(TechnologyError):
            tech.validate()

    def test_bad_feature_size(self):
        with pytest.raises(TechnologyError):
            Technology("t", 0.0, [Layer("M1", 10)])


class TestTechnologySerialisation:
    def test_roundtrip_preserves_layers_and_rules(self, technology):
        data = technology_to_dict(technology)
        rebuilt = technology_from_dict(data)
        assert rebuilt.name == technology.name
        assert len(rebuilt.layers) == len(technology.layers)
        assert len(rebuilt.vias) == len(technology.vias)
        assert rebuilt.rules.min_width("M1") == technology.rules.min_width("M1")
        assert rebuilt.electrical.vdd == technology.electrical.vdd
        rebuilt.validate()

    def test_roundtrip_preserves_directions(self, technology):
        rebuilt = technology_from_dict(technology_to_dict(technology))
        assert rebuilt.layer("M2").direction is MetalDirection.VERTICAL

    def test_missing_field_raises(self):
        with pytest.raises(TechnologyError):
            technology_from_dict({"name": "broken"})

    def test_save_and_load_file(self, technology, tmp_path):
        from repro.technology.library_io import load_technology, save_technology

        path = tmp_path / "tech.json"
        save_technology(technology, path)
        loaded = load_technology(path)
        assert loaded.name == technology.name
        assert loaded.feature_size == technology.feature_size
