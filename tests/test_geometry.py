"""Unit tests for layout geometry (points, rects, transforms, HPWL)."""

import pytest

from repro.layout.geometry import Orientation, Point, Rect, Transform, hpwl


class TestPoint:
    def test_translation(self):
        assert Point(1, 2).translated(3, -5) == Point(4, -3)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7

    def test_ordering(self):
        assert Point(1, 2) < Point(2, 0)

    def test_as_tuple(self):
        assert Point(7, 9).as_tuple() == (7, 9)


class TestRect:
    def test_normalises_swapped_corners(self):
        rect = Rect(10, 20, 0, 5)
        assert (rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi) == (0, 5, 10, 20)

    def test_from_size(self):
        rect = Rect.from_size(5, 5, 10, 20)
        assert rect.width == 10
        assert rect.height == 20
        assert rect.area == 200

    def test_from_size_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect.from_size(0, 0, -1, 5)

    def test_from_center(self):
        rect = Rect.from_center(Point(10, 10), 4, 6)
        assert rect.center == Point(10, 10)
        assert rect.width == 4
        assert rect.height == 6

    def test_contains_point_inclusive(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(10, 10))
        assert not rect.contains_point(Point(11, 0))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert not outer.contains_rect(Rect(2, 2, 12, 8))

    def test_overlap_excludes_touching(self):
        a = Rect(0, 0, 10, 10)
        assert not a.overlaps(Rect(10, 0, 20, 10))
        assert a.touches(Rect(10, 0, 20, 10))
        assert a.overlaps(Rect(9, 9, 20, 20))

    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 20, 20)
        assert a.intersection(b) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(20, 20, 30, 30)) is None

    def test_spacing_to(self):
        a = Rect(0, 0, 10, 10)
        assert a.spacing_to(Rect(15, 0, 20, 10)) == 5
        assert a.spacing_to(Rect(0, 12, 10, 20)) == 2
        assert a.spacing_to(Rect(5, 5, 20, 20)) == 0
        # Diagonal spacing adds both components.
        assert a.spacing_to(Rect(13, 14, 20, 20)) == 7

    def test_union_and_bounding(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(10, 10, 20, 20)
        assert a.union(b) == Rect(0, 0, 20, 20)
        assert Rect.bounding([a, b]) == Rect(0, 0, 20, 20)
        assert Rect.bounding([]) is None

    def test_expanded(self):
        assert Rect(5, 5, 10, 10).expanded(2) == Rect(3, 3, 12, 12)

    def test_degenerate(self):
        assert Rect(0, 0, 0, 10).is_degenerate()
        assert not Rect(0, 0, 1, 10).is_degenerate()


class TestTransform:
    def test_identity(self):
        assert Transform().apply_point(Point(3, 4)) == Point(3, 4)

    def test_translation(self):
        assert Transform(10, 20).apply_point(Point(3, 4)) == Point(13, 24)

    def test_r90(self):
        assert Transform(0, 0, Orientation.R90).apply_point(Point(1, 0)) == Point(0, 1)

    def test_r180(self):
        assert Transform(0, 0, Orientation.R180).apply_point(Point(2, 3)) == Point(-2, -3)

    def test_mirror_x(self):
        assert Transform(0, 0, Orientation.MX).apply_point(Point(2, 3)) == Point(2, -3)

    def test_mirror_y(self):
        assert Transform(0, 0, Orientation.MY).apply_point(Point(2, 3)) == Point(-2, 3)

    def test_rect_transform_is_normalised(self):
        rect = Rect(0, 0, 10, 5)
        rotated = Transform(0, 0, Orientation.R90).apply_rect(rect)
        assert rotated.width == 5
        assert rotated.height == 10

    def test_compose_matches_sequential_application(self):
        inner = Transform(5, 7, Orientation.R90)
        outer = Transform(-3, 2, Orientation.MX)
        composed = outer.compose(inner)
        for point in (Point(0, 0), Point(3, 1), Point(-2, 8)):
            assert composed.apply_point(point) == outer.apply_point(inner.apply_point(point))

    def test_compose_all_orientation_pairs(self):
        probe = Point(3, 5)
        for o1 in Orientation:
            for o2 in Orientation:
                outer = Transform(11, -4, o1)
                inner = Transform(-6, 9, o2)
                composed = outer.compose(inner)
                assert composed.apply_point(probe) == outer.apply_point(
                    inner.apply_point(probe))

    def test_swaps_axes_flag(self):
        assert Orientation.R90.swaps_axes
        assert not Orientation.MX.swaps_axes


class TestHpwl:
    def test_two_points(self):
        assert hpwl([Point(0, 0), Point(3, 4)]) == 7

    def test_multi_point_uses_bounding_box(self):
        points = [Point(0, 0), Point(10, 0), Point(5, 20)]
        assert hpwl(points) == 30

    def test_single_point_is_zero(self):
        assert hpwl([Point(5, 5)]) == 0
        assert hpwl([]) == 0
