"""Unit tests for sensitivity analysis and datasheet generation."""

import pytest

from repro.errors import OptimizationError
from repro.arch.spec import ACIMDesignSpec
from repro.dse.sensitivity import (
    PERTURBABLE_PARAMETERS,
    SensitivityAnalyzer,
    perturb_parameters,
)
from repro.flow.datasheet import DatasheetWriter
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.model.estimator import ModelParameters


class TestPerturbation:
    def test_perturbs_only_requested_field(self):
        base = ModelParameters()
        perturbed = perturb_parameters(base, "k1", 0.5)
        assert perturbed.energy.k1 == pytest.approx(base.energy.k1 * 1.5)
        assert perturbed.energy.k2 == base.energy.k2
        assert perturbed.area == base.area

    def test_every_registered_parameter_is_perturbable(self):
        base = ModelParameters()
        for name in PERTURBABLE_PARAMETERS:
            perturbed = perturb_parameters(base, name, 0.1)
            bundle_name, field_name = PERTURBABLE_PARAMETERS[name]
            original = getattr(getattr(base, bundle_name), field_name)
            changed = getattr(getattr(perturbed, bundle_name), field_name)
            assert changed == pytest.approx(original * 1.1)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(OptimizationError):
            perturb_parameters(ModelParameters(), "not_a_constant", 0.1)


class TestDesignPointSensitivity:
    SPEC = ACIMDesignSpec(128, 128, 8, 3)

    def test_directions_of_change(self):
        analyzer = SensitivityAnalyzer()
        results = {r.parameter: r for r in analyzer.design_point_sensitivity(
            self.SPEC, parameters=("k2", "a_sram", "conversion_time_per_bit"))}
        # More CDAC energy -> lower efficiency; throughput and area untouched.
        assert results["k2"].tops_per_watt_change < 0
        assert results["k2"].tops_change == pytest.approx(0.0, abs=1e-9)
        # Bigger SRAM cell -> bigger area only.
        assert results["a_sram"].area_change > 0
        assert results["a_sram"].tops_change == pytest.approx(0.0, abs=1e-9)
        # Slower conversion -> lower throughput.
        assert results["conversion_time_per_bit"].tops_change < 0

    def test_magnitudes_bounded_by_perturbation(self):
        analyzer = SensitivityAnalyzer()
        for result in analyzer.design_point_sensitivity(self.SPEC,
                                                        relative_change=0.2):
            assert abs(result.area_change) <= 0.2 + 1e-9
            assert abs(result.tops_change) <= 0.2 + 1e-9

    def test_snr_insensitive_to_energy_constants(self):
        analyzer = SensitivityAnalyzer()
        results = {r.parameter: r for r in analyzer.design_point_sensitivity(
            self.SPEC, parameters=("k1", "k2"))}
        assert results["k1"].snr_change_db == pytest.approx(0.0, abs=1e-9)


class TestFrontierSensitivity:
    def test_frontier_is_stable_under_moderate_perturbations(self):
        analyzer = SensitivityAnalyzer()
        results = analyzer.frontier_sensitivity(
            1024, parameters=("k1", "k2", "a_local_compute"), relative_change=0.2)
        assert len(results) == 3
        for result in results:
            # The 4-objective frontier membership barely moves: the
            # conclusions do not hinge on the calibrated constants.
            assert result.jaccard_similarity >= 0.9
            assert abs(result.area_range_shift) <= 0.25
            assert abs(result.efficiency_range_shift) <= 0.25

    def test_energy_constant_shifts_efficiency_range(self):
        analyzer = SensitivityAnalyzer()
        (result,) = analyzer.frontier_sensitivity(
            1024, parameters=("e_compute",), relative_change=0.5)
        assert result.efficiency_range_shift < -0.1


class TestDatasheet:
    SPEC = ACIMDesignSpec(64, 16, 4, 3)

    def test_contains_all_sections(self):
        text = DatasheetWriter().render(self.SPEC)
        for heading in ("# EasyACIM macro", "## Design parameters",
                        "## Estimated performance", "## Cycle timing",
                        "## Operating sequence"):
            assert heading in text

    def test_parameter_values_rendered(self):
        text = DatasheetWriter().render(self.SPEC)
        assert "| Array height H | 64 |" in text
        assert "| ADC precision B_ADC | 3 bit |" in text
        assert "1:1:2:4" in text

    def test_physical_and_interface_sections(self, cell_library):
        report = LayoutGenerator(cell_library).generate(self.SPEC, route_column=False)
        netlist = TemplateNetlistGenerator(cell_library).generate(self.SPEC)
        text = DatasheetWriter().render(
            self.SPEC, layout_report=report, netlist=netlist)
        assert "## Physical summary" in text
        assert "## Interface" in text
        assert "Supplies" in text

    def test_write_to_file(self, tmp_path):
        path = DatasheetWriter().write(tmp_path / "macro.md", self.SPEC)
        assert path.exists()
        assert path.read_text().startswith("# EasyACIM macro")

    def test_infeasible_spec_rejected(self):
        with pytest.raises(Exception):
            DatasheetWriter().render(ACIMDesignSpec(8, 8, 8, 4))
