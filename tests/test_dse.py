"""Unit tests for the design-space exploration package."""

import math
import random

import pytest

from repro.errors import OptimizationError
from repro.arch.spec import ACIMDesignSpec
from repro.dse import (
    ACIMDesignProblem,
    DistillationCriteria,
    Individual,
    NSGA2,
    NSGA2Config,
    crowding_distance,
    distill,
    dominates,
    exhaustive_pareto_front,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front,
)
from repro.dse.distill import distill_report
from repro.dse.exhaustive import evaluate_all
from repro.dse.explorer import _ExplorerCore


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (1, 3))
        assert not dominates((1, 3), (2, 1))

    def test_length_mismatch(self):
        with pytest.raises(OptimizationError):
            dominates((1, 2), (1, 2, 3))

    def test_pareto_front_extraction(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(points)
        assert set(front) == {0, 1, 2}

    def test_pareto_front_keeps_duplicates(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert set(pareto_front(points)) == {0, 1}

    def test_non_dominated_sort_layers(self):
        points = [(1, 1), (2, 2), (3, 3)]
        fronts = non_dominated_sort(points)
        assert fronts == [[0], [1], [2]]

    def test_non_dominated_sort_partitions_population(self):
        rng = random.Random(0)
        points = [(rng.random(), rng.random()) for _ in range(30)]
        fronts = non_dominated_sort(points)
        flattened = sorted(i for front in fronts for i in front)
        assert flattened == list(range(30))

    def test_crowding_distance_boundaries_infinite(self):
        points = [(0, 10), (2, 6), (5, 3), (9, 0)]
        distances = crowding_distance(points)
        assert math.isinf(distances[0]) and math.isinf(distances[-1])
        assert all(d > 0 for d in distances)

    def test_crowding_distance_small_fronts(self):
        assert crowding_distance([(1, 2)]) == [math.inf]
        assert crowding_distance([]) == []

    def test_hypervolume_2d(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        volume = hypervolume_2d(points, reference=(4.0, 4.0))
        assert volume == pytest.approx(6.0)

    def test_hypervolume_ignores_points_beyond_reference(self):
        assert hypervolume_2d([(5.0, 5.0)], reference=(4.0, 4.0)) == 0.0


class _ZDT1Problem:
    """Classic two-objective benchmark with a known Pareto front (g = 1)."""

    def __init__(self, dimensions=6):
        self.dimensions = dimensions

    def random_genome(self, rng):
        return tuple(rng.random() for _ in range(self.dimensions))

    def evaluate(self, genome):
        f1 = genome[0]
        g = 1.0 + 9.0 * sum(genome[1:]) / (self.dimensions - 1)
        f2 = g * (1.0 - math.sqrt(f1 / g))
        return (f1, f2), 0.0

    def crossover(self, a, b, rng):
        alpha = rng.random()
        return tuple(alpha * x + (1 - alpha) * y for x, y in zip(a, b))

    def mutate(self, genome, rng):
        index = rng.randrange(len(genome))
        values = list(genome)
        values[index] = min(1.0, max(0.0, values[index] + rng.gauss(0, 0.1)))
        return tuple(values)

    def genome_key(self, genome):
        return tuple(round(v, 6) for v in genome)


class TestNSGA2:
    def test_converges_towards_zdt1_front(self):
        problem = _ZDT1Problem()
        optimizer = NSGA2(problem, NSGA2Config(population_size=40, generations=60,
                                               seed=2))
        front = optimizer.run()
        assert front
        # On the true front f2 = 1 - sqrt(f1); require decent convergence.
        mean_gap = sum(
            abs(ind.objectives[1] - (1 - math.sqrt(ind.objectives[0])))
            for ind in front
        ) / len(front)
        assert mean_gap < 0.35

    def test_front_is_mutually_non_dominated(self):
        problem = _ZDT1Problem()
        front = NSGA2(problem, NSGA2Config(population_size=30, generations=30,
                                           seed=5)).run()
        objectives = [ind.objectives for ind in front]
        assert set(pareto_front(objectives)) == set(range(len(objectives)))

    def test_history_is_recorded(self):
        optimizer = NSGA2(_ZDT1Problem(), NSGA2Config(population_size=20,
                                                      generations=5, seed=1))
        optimizer.run()
        assert len(optimizer.history) == 5
        assert optimizer.evaluations > 20

    def test_deterministic_for_fixed_seed(self):
        config = NSGA2Config(population_size=20, generations=10, seed=42)
        front_a = NSGA2(_ZDT1Problem(), config).run()
        front_b = NSGA2(_ZDT1Problem(), config).run()
        assert [i.objectives for i in front_a] == [i.objectives for i in front_b]

    def test_constraint_domination_prefers_feasible(self):
        class ConstrainedProblem(_ZDT1Problem):
            def evaluate(self, genome):
                objectives, _ = super().evaluate(genome)
                violation = 1.0 if genome[0] < 0.5 else 0.0
                return objectives, violation

        front = NSGA2(ConstrainedProblem(), NSGA2Config(population_size=30,
                                                        generations=20, seed=3)).run()
        assert all(ind.feasible for ind in front)
        assert all(ind.genome[0] >= 0.5 for ind in front)

    def test_invalid_config(self):
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=2)
        with pytest.raises(OptimizationError):
            NSGA2Config(crossover_probability=1.5)


class TestACIMDesignProblem:
    def test_decode_respects_array_size(self):
        problem = ACIMDesignProblem(16384)
        rng = random.Random(0)
        for _ in range(50):
            spec = problem.decode(problem.random_genome(rng))
            assert spec.array_size == 16384

    def test_encode_decode_roundtrip(self):
        problem = ACIMDesignProblem(16384)
        spec = ACIMDesignSpec(128, 128, 8, 3)
        assert problem.decode(problem.encode(spec)) == spec

    def test_decode_columns_matches_scalar_decode(self):
        # The vectorized decode used by evaluate_many must mirror decode()
        # rule for rule (index wrap-around, B_ADC clamping) — including on
        # out-of-range genes, which wrap/clamp rather than error.
        problem = ACIMDesignProblem(16384)
        rng = random.Random(3)
        genomes = [problem.random_genome(rng) for _ in range(60)]
        genomes += [(997, 313, 40), (-1, -2, 0), (0, 0, 1)]
        h, w, l, b = problem.decode_columns(genomes)
        for index, genome in enumerate(genomes):
            spec = problem.decode(genome)
            assert (h[index], w[index], l[index], b[index]) == spec.as_tuple()

    def test_feasible_genomes_have_zero_violation(self):
        problem = ACIMDesignProblem(4096)
        genome = problem.encode(ACIMDesignSpec(64, 64, 8, 3))
        _objectives, violation = problem.evaluate(genome)
        assert violation == 0.0

    def test_infeasible_genome_has_positive_violation(self):
        problem = ACIMDesignProblem(4096, max_adc_bits=8)
        # H = 16, L = 16 -> H/L = 1 cannot support 8 ADC bits.
        genome = (problem.heights.index(16), problem.local_array_sizes.index(16), 8)
        _objectives, violation = problem.evaluate(genome)
        assert violation > 0

    def test_evaluation_is_cached(self):
        problem = ACIMDesignProblem(4096)
        genome = problem.encode(ACIMDesignSpec(64, 64, 8, 3))
        first = problem.evaluate(genome)
        second = problem.evaluate(genome)
        assert first is second

    def test_mutation_and_crossover_stay_in_bounds(self):
        problem = ACIMDesignProblem(4096)
        rng = random.Random(1)
        genome = problem.random_genome(rng)
        for _ in range(100):
            genome = problem.mutate(genome, rng)
            other = problem.random_genome(rng)
            child = problem.crossover(genome, other, rng)
            spec = problem.decode(child)
            assert spec.array_size == 4096
            assert 1 <= spec.adc_bits <= 8

    def test_feasible_specs_enumeration(self):
        problem = ACIMDesignProblem(1024)
        specs = problem.feasible_specs()
        assert specs
        assert all(s.is_feasible(1024) for s in specs)

    def test_small_array_size_rejected(self):
        with pytest.raises(OptimizationError):
            ACIMDesignProblem(2)


class TestExplorer:
    CONFIG = NSGA2Config(population_size=32, generations=16, seed=7)

    def test_explore_returns_feasible_pareto_set(self):
        explorer = _ExplorerCore(config=self.CONFIG)
        result = explorer.explore(4096)
        assert result.pareto_set
        for design in result.pareto_set:
            assert design.spec.is_feasible(4096)

    def test_pareto_set_is_non_dominated(self):
        explorer = _ExplorerCore(config=self.CONFIG)
        result = explorer.explore(4096)
        objectives = [d.objectives for d in result.pareto_set]
        assert set(pareto_front(objectives)) == set(range(len(objectives)))

    def test_explorer_solutions_are_true_pareto_points(self):
        # With four objectives almost every feasible point is non-dominated
        # (the 4 kb space has ~213 Pareto points), so a population-bounded
        # GA cannot return them all; what it returns must nevertheless be
        # exclusively true Pareto points, and a healthy fraction of the
        # population budget should survive to the final front.
        config = NSGA2Config(population_size=60, generations=40, seed=13)
        explorer = _ExplorerCore(config=config)
        result = explorer.explore(4096)
        truth = {d.spec.as_tuple() for d in exhaustive_pareto_front(4096)}
        found = {d.spec.as_tuple() for d in result.pareto_set}
        assert found <= truth
        assert len(found) >= config.population_size // 3

    def test_explorer_covers_energy_area_tradeoff(self):
        # On the 2-D energy/area projection (the paper's Figure-10 axes) the
        # GA front should achieve most of the exhaustive front's hypervolume.
        config = NSGA2Config(population_size=60, generations=40, seed=13)
        result = _ExplorerCore(config=config).explore(4096)
        truth = exhaustive_pareto_front(4096)

        def projection(designs):
            return [(d.metrics.energy_per_mac * 1e15, d.metrics.area_f2_per_bit / 1e3)
                    for d in designs]

        reference = (50.0, 10.0)
        hv_truth = hypervolume_2d(projection(truth), reference)
        hv_found = hypervolume_2d(projection(result.pareto_set), reference)
        assert hv_found >= 0.85 * hv_truth

    def test_metric_ranges_and_table(self):
        result = _ExplorerCore(config=self.CONFIG).explore(4096)
        ranges = result.metric_ranges()
        assert ranges["snr_db"][0] <= ranges["snr_db"][1]
        table = result.as_table()
        assert table and table[0]["snr_db"] >= table[-1]["snr_db"]

    def test_explore_many(self):
        results = _ExplorerCore(config=self.CONFIG).explore_many([1024, 2048])
        assert set(results) == {1024, 2048}


class TestExhaustiveBaseline:
    def test_front_is_subset_of_all(self):
        designs = evaluate_all(1024)
        front = exhaustive_pareto_front(1024)
        assert 0 < len(front) <= len(designs)

    def test_front_members_not_dominated(self):
        designs = evaluate_all(1024)
        front = exhaustive_pareto_front(1024)
        for member in front:
            assert not any(
                dominates(other.objectives, member.objectives) for other in designs)


class TestDistillation:
    def _designs(self):
        return exhaustive_pareto_front(4096)

    def test_distill_filters_by_snr(self):
        designs = self._designs()
        criteria = DistillationCriteria(min_snr_db=20.0)
        selected = distill(designs, criteria)
        assert all(d.metrics.snr_db >= 20.0 for d in selected)
        assert len(selected) < len(designs)

    def test_scenario_presets_are_progressively_restrictive(self):
        designs = self._designs()
        report = distill_report(designs, [
            DistillationCriteria.transformer(),
            DistillationCriteria.cnn(),
            DistillationCriteria.snn(),
        ])
        assert set(report) == {"transformer", "cnn", "snn"}
        assert all(count <= len(designs) for count in report.values())

    def test_no_criteria_accepts_everything(self):
        designs = self._designs()
        assert len(distill(designs, DistillationCriteria())) == len(designs)

    def test_max_adc_bits_bound(self):
        designs = self._designs()
        selected = distill(designs, DistillationCriteria(max_adc_bits=3))
        assert all(d.spec.adc_bits <= 3 for d in selected)
