"""Unit tests for the estimation model (SNR, throughput, energy, area)."""

import math

import pytest

from repro.errors import ModelError
from repro.arch.spec import ACIMDesignSpec
from repro.model import (
    ACIMEstimator,
    AreaModel,
    AreaParameters,
    EnergyModel,
    EnergyParameters,
    ModelParameters,
    SnrModel,
    SnrParameters,
    ThroughputModel,
    WorkloadStatistics,
)


class TestWorkloadStatistics:
    def test_binary_statistics(self):
        stats = WorkloadStatistics.binary()
        assert stats.mean_x_squared == pytest.approx(0.5)
        assert stats.zeta_x == pytest.approx(2.0)
        assert stats.zeta_w == pytest.approx(1.0)

    def test_quantization_steps(self):
        stats = WorkloadStatistics.binary()
        assert stats.delta_x == pytest.approx(0.5)
        assert stats.delta_w == pytest.approx(1.0)

    def test_output_variance_scales_with_n(self):
        stats = WorkloadStatistics.binary()
        assert stats.output_variance(32) == pytest.approx(2 * stats.output_variance(16))

    def test_gaussian_factory(self):
        stats = WorkloadStatistics.gaussian(bits_x=4, bits_w=4, crest_factor=3.0)
        assert stats.zeta_x == pytest.approx(3.0)
        assert stats.bits_x == 4

    def test_invalid_statistics_rejected(self):
        with pytest.raises(ModelError):
            WorkloadStatistics(sigma_x=0, sigma_w=1, x_max=1, w_max=1, mean_x_squared=1)
        with pytest.raises(ModelError):
            WorkloadStatistics(sigma_x=1, sigma_w=1, x_max=1, w_max=1,
                               mean_x_squared=1, bits_x=0)


class TestSnrModel:
    def test_total_snr_combines_terms_as_parallel(self):
        model = SnrModel()
        total = model.total_snr(4, 16)
        assert total <= model.snr_pre(16)
        assert total <= model.sqnr_output(4, 16)

    def test_snr_increases_with_adc_bits(self):
        model = SnrModel()
        assert model.design_snr_db(5, 32) > model.design_snr_db(3, 32)

    def test_snr_decreases_with_accumulation_length(self):
        model = SnrModel()
        assert model.design_snr_db(4, 16) > model.design_snr_db(4, 64)

    def test_sqnr_output_six_db_per_bit(self):
        model = SnrModel()
        delta = model.sqnr_output_db(6, 16) - model.sqnr_output_db(5, 16)
        assert delta == pytest.approx(6.0)

    def test_sqnr_output_minus_three_db_per_doubling(self):
        model = SnrModel()
        delta = model.sqnr_output_db(5, 32) - model.sqnr_output_db(5, 16)
        assert delta == pytest.approx(-10 * math.log10(2))

    def test_analog_snr_independent_of_n(self):
        model = SnrModel()
        from repro.units import linear_to_db
        assert linear_to_db(model.snr_analog(16)) == pytest.approx(
            linear_to_db(model.snr_analog(256)), abs=1e-9)

    def test_analog_snr_improves_with_larger_capacitor(self):
        small_cap = SnrModel(SnrParameters(unit_capacitance=0.5e-15))
        large_cap = SnrModel(SnrParameters(unit_capacitance=4e-15))
        assert large_cap.snr_analog(16) > small_cap.snr_analog(16)

    def test_simplified_form_structure(self):
        params = SnrParameters(k3=1e-15, k4=5.0, unit_capacitance=1e-15)
        model = SnrModel(params)
        value = model.simplified_snr_db(3, 16)
        expected = 6 * 3 - 10 * math.log10(16) - 10 * math.log10(1.0) + 5.0
        assert value == pytest.approx(expected)

    def test_noise_budget_keys(self):
        budget = SnrModel().noise_budget(3, 16)
        assert {"snr_analog_db", "sqnr_output_db", "total_snr_db"} <= set(budget)

    def test_invalid_inputs(self):
        model = SnrModel()
        with pytest.raises(ModelError):
            model.sqnr_output_db(0, 16)
        with pytest.raises(ModelError):
            model.design_snr_db(3, 0)

    def test_charge_injection_ignored_by_default(self):
        assert SnrParameters().charge_injection_variance == 0.0


class TestThroughputModel:
    def test_figure8a_throughput(self):
        spec = ACIMDesignSpec(128, 128, 2, 3)
        assert ThroughputModel().tops(spec) == pytest.approx(3.277, rel=0.03)

    def test_figure8b_throughput(self, figure8_spec_b):
        assert ThroughputModel().tops(figure8_spec_b) == pytest.approx(0.813, rel=0.03)

    def test_figure8c_matches_figure8b(self, figure8_spec_b):
        spec_c = ACIMDesignSpec(64, 256, 8, 3)
        model = ThroughputModel()
        assert model.tops(spec_c) == pytest.approx(model.tops(figure8_spec_b), rel=1e-6)

    def test_smaller_l_increases_throughput(self):
        model = ThroughputModel()
        fast = ACIMDesignSpec(128, 128, 2, 3)
        slow = ACIMDesignSpec(128, 128, 8, 3)
        assert model.tops(fast) > model.tops(slow)

    def test_more_adc_bits_decrease_throughput(self):
        model = ThroughputModel()
        low = ACIMDesignSpec(128, 128, 4, 3)
        high = ACIMDesignSpec(128, 128, 4, 5)
        assert model.tops(low) > model.tops(high)

    def test_breakdown_sums_to_cycle(self, figure8_spec_b):
        b = ThroughputModel().breakdown(figure8_spec_b)
        assert b.cycle_time == pytest.approx(
            b.compute_time + b.setup_time + b.conversion_time)
        assert b.tops == pytest.approx(2 * b.macs_per_second / 1e12)


class TestEnergyModel:
    def test_adc_energy_grows_exponentially(self):
        model = EnergyModel()
        assert model.adc_energy(8) > 10 * model.adc_energy(4)

    def test_energy_amortised_over_local_arrays(self):
        model = EnergyModel()
        few = ACIMDesignSpec(32, 8, 4, 3)     # H/L = 8
        many = ACIMDesignSpec(256, 8, 4, 3)   # H/L = 64
        assert model.energy_per_mac(few) > model.energy_per_mac(many)

    def test_efficiency_range_matches_paper_claims(self):
        # The paper claims 50-750 TOPS/W across the design space.
        model = EnergyModel()
        worst = ACIMDesignSpec(2048, 8, 8, 8)
        best = ACIMDesignSpec(2048, 8, 32, 1)
        assert model.tops_per_watt(worst) == pytest.approx(60, rel=0.35)
        assert model.tops_per_watt(best) == pytest.approx(720, rel=0.15)

    def test_breakdown_consistency(self, figure8_spec_b):
        b = EnergyModel().breakdown(figure8_spec_b)
        assert b.total_per_mac == pytest.approx(b.compute + b.control + b.adc_per_mac)
        assert b.adc_per_mac == pytest.approx(b.adc_total / 16)

    def test_power_scales_with_throughput(self, figure8_spec_b):
        model = EnergyModel()
        assert model.power(figure8_spec_b, 2e12) == pytest.approx(
            2 * model.power(figure8_spec_b, 1e12))

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            EnergyParameters(k1=-1.0)
        with pytest.raises(ModelError):
            EnergyModel().adc_energy(0)


class TestAreaModel:
    @pytest.mark.parametrize("height,width,local,expected", [
        (128, 128, 2, 4504.0),
        (128, 128, 8, 2610.0),
        (64, 256, 8, 2977.0),
    ])
    def test_figure8_areas(self, height, width, local, expected):
        spec = ACIMDesignSpec(height, width, local, 3)
        assert AreaModel().area_per_bit_f2(spec) == pytest.approx(expected, rel=0.005)

    def test_figure8_total_area_in_um2(self, figure8_spec_b):
        # 256 um x 131 um from the paper's Figure 8(b).
        total = AreaModel().total_area_um2(figure8_spec_b)
        assert total == pytest.approx(256 * 131, rel=0.02)

    def test_larger_l_reduces_area(self):
        model = AreaModel()
        assert model.area_per_bit_f2(ACIMDesignSpec(128, 128, 8, 3)) < \
            model.area_per_bit_f2(ACIMDesignSpec(128, 128, 2, 3))

    def test_larger_h_amortises_column_overhead(self):
        model = AreaModel()
        assert model.area_per_bit_f2(ACIMDesignSpec(128, 128, 8, 3)) < \
            model.area_per_bit_f2(ACIMDesignSpec(64, 256, 8, 3))

    def test_more_adc_bits_increase_area(self):
        model = AreaModel()
        assert model.area_per_bit_f2(ACIMDesignSpec(128, 128, 8, 3)) < \
            model.area_per_bit_f2(ACIMDesignSpec(128, 128, 8, 4))

    def test_breakdown_sums(self, figure8_spec_b):
        b = AreaModel().breakdown(figure8_spec_b)
        assert b.per_bit == pytest.approx(
            b.sram + b.local_compute + b.comparator + b.sar_logic)
        assert b.total_f2 == pytest.approx(b.per_bit * 16384)

    def test_estimated_dimensions_consistent_with_area(self, figure8_spec_b):
        model = AreaModel()
        width_um, height_um = model.estimated_dimensions_um(figure8_spec_b)
        assert width_um * height_um == pytest.approx(
            model.total_area_um2(figure8_spec_b), rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            AreaParameters(a_sram=0.0)


class TestEstimator:
    def test_objectives_signs(self, estimator, figure8_spec_b):
        metrics = estimator.evaluate(figure8_spec_b)
        objectives = metrics.objectives()
        assert objectives[0] == pytest.approx(-metrics.snr_db)
        assert objectives[1] == pytest.approx(-metrics.tops)
        assert objectives[2] == pytest.approx(metrics.energy_per_mac)
        assert objectives[3] == pytest.approx(metrics.area_f2_per_bit)

    def test_metrics_dictionary(self, estimator, figure8_spec_b):
        record = estimator.evaluate(figure8_spec_b).as_dict()
        assert record["H"] == 128 and record["B_ADC"] == 3
        assert record["area_f2_per_bit"] == pytest.approx(2610, rel=0.01)

    def test_infeasible_spec_rejected(self, estimator):
        with pytest.raises(Exception):
            estimator.evaluate(ACIMDesignSpec(8, 4, 8, 4))

    def test_full_snr_option(self, figure8_spec_b):
        est = ACIMEstimator(ModelParameters(use_simplified_snr=False))
        metrics = est.evaluate(figure8_spec_b)
        assert metrics.snr_db == pytest.approx(
            est.snr_model.design_snr_db(3, 16), abs=1e-9)

    def test_calibrated_parameters_align_simplified_and_full(self, figure8_spec_b):
        params = ModelParameters.calibrated()
        est = ACIMEstimator(params)
        simplified = est.snr_model.simplified_snr_db(3, 16)
        full = est.snr_model.design_snr_db(3, 16)
        assert simplified == pytest.approx(full, abs=4.0)

    def test_sub_models_exposed(self, estimator):
        assert estimator.snr_model is not None
        assert estimator.area_model is not None
        assert estimator.energy_model is not None
        assert estimator.throughput_model is not None
