"""Unit tests for repro.units (constants, conversions, dB helpers)."""

import math

import pytest

from repro import units


class TestDbHelpers:
    def test_db_roundtrip(self):
        assert units.linear_to_db(units.db_to_linear(17.3)) == pytest.approx(17.3)

    def test_db_of_ten_is_ten(self):
        assert units.linear_to_db(10.0) == pytest.approx(10.0)

    def test_db_of_one_is_zero(self):
        assert units.linear_to_db(1.0) == pytest.approx(0.0)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_zero_ratio_rejected(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_amplitude_db_uses_20log(self):
        assert units.amplitude_db(10.0) == pytest.approx(20.0)

    def test_amplitude_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.amplitude_db(0.0)


class TestAreaConversions:
    F28 = 28e-9

    def test_f2_to_um2_roundtrip(self):
        f2 = 2610.0
        um2 = units.f2_to_um2(f2, self.F28)
        assert units.um2_to_f2(um2, self.F28) == pytest.approx(f2)

    def test_one_f2_at_28nm(self):
        assert units.f2_area_m2(1.0, self.F28) == pytest.approx(784e-18)

    def test_figure8b_area_consistency(self):
        # 16 kb at 2610 F^2/bit is about 33 500 um^2 (256 um x 131 um).
        total_um2 = units.f2_to_um2(2610.0 * 16384, self.F28)
        assert total_um2 == pytest.approx(256.0 * 131.0, rel=0.02)

    def test_invalid_feature_size(self):
        with pytest.raises(ValueError):
            units.f2_area_m2(100.0, 0.0)


class TestEfficiencyConversions:
    def test_one_pj_per_op_is_one_tops_per_watt(self):
        assert units.energy_per_op_to_tops_per_watt(1e-12) == pytest.approx(1.0)

    def test_efficiency_roundtrip(self):
        energy = 3.3e-15
        eff = units.energy_per_op_to_tops_per_watt(energy)
        assert units.tops_per_watt_to_energy_per_op(eff) == pytest.approx(energy)

    def test_tops_per_watt(self):
        assert units.tops_per_watt(2e12, 1.0) == pytest.approx(2.0)

    def test_tops_per_watt_rejects_zero_power(self):
        with pytest.raises(ValueError):
            units.tops_per_watt(1e12, 0.0)

    def test_ops_to_tops(self):
        assert units.ops_to_tops(3.277e12) == pytest.approx(3.277)


class TestDbuHelpers:
    def test_um_dbu_roundtrip(self):
        assert units.dbu_to_um(units.um_to_dbu(1.234)) == pytest.approx(1.234)

    def test_snap_to_grid(self):
        assert units.snap_to_grid(1003, 5) == 1005
        assert units.snap_to_grid(1002, 5) == 1000

    def test_snap_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            units.snap_to_grid(100, 0)

    def test_boltzmann_constant(self):
        assert units.BOLTZMANN_K == pytest.approx(1.380649e-23)

    def test_kt_over_c_magnitude(self):
        # kT/C for 1 fF at room temperature is about (2 mV)^2.
        sigma = math.sqrt(units.BOLTZMANN_K * units.ROOM_TEMPERATURE_K / 1e-15)
        assert 1.5e-3 < sigma < 2.5e-3
