"""Unit tests for the synthesizable architecture (spec, structure, timing)."""

import pytest

from repro.errors import ModelError, SpecificationError
from repro.arch import (
    ACIMDesignSpec,
    COMPUTE_MODEL_CATALOG,
    ComputeModel,
    OperatingState,
    SynthesizableACIM,
    TimingModel,
    TimingParameters,
    enumerate_design_space,
    valid_heights,
)
from repro.arch.compute_models import select_compute_model
from repro.arch.spec import design_space_size


class TestDesignSpec:
    def test_figure8_specs_are_feasible(self):
        for height, width, local in ((128, 128, 2), (128, 128, 8), (64, 256, 8)):
            spec = ACIMDesignSpec(height, width, local, 3)
            assert spec.is_feasible(16 * 1024)

    def test_derived_quantities(self, figure8_spec_b):
        spec = figure8_spec_b
        assert spec.array_size == 16384
        assert spec.local_arrays_per_column == 16
        assert spec.dot_product_length == 16
        assert spec.capacitor_units_per_column == 8

    def test_sar_group_ratios(self):
        spec = ACIMDesignSpec(64, 4, 4, 3)
        assert spec.sar_group_ratios == (1, 1, 2, 4)
        assert sum(spec.sar_group_ratios) == 2 ** 3

    def test_adc_bits_constraint(self):
        # H/L = 8 supports at most 3 bits.
        assert ACIMDesignSpec(64, 4, 8, 3).is_feasible()
        assert not ACIMDesignSpec(64, 4, 8, 4).is_feasible()

    def test_local_larger_than_height_infeasible(self):
        assert not ACIMDesignSpec(8, 4, 16, 1).is_feasible()

    def test_height_not_multiple_of_local_infeasible(self):
        assert not ACIMDesignSpec(12, 4, 8, 1).is_feasible()

    def test_array_size_constraint(self):
        spec = ACIMDesignSpec(128, 128, 8, 3)
        assert spec.is_feasible(16384)
        assert not spec.is_feasible(8192)

    def test_validate_raises_with_reason(self):
        with pytest.raises(SpecificationError) as excinfo:
            ACIMDesignSpec(64, 4, 8, 5).validate()
        assert "2^" in str(excinfo.value) or "H/L" in str(excinfo.value)

    def test_describe_mentions_parameters(self, figure8_spec_b):
        text = figure8_spec_b.describe()
        assert "H=128" in text and "B_ADC=3" in text

    def test_ordering_and_hashing(self):
        a = ACIMDesignSpec(64, 4, 8, 3)
        b = ACIMDesignSpec(64, 4, 8, 3)
        assert a == b
        assert len({a, b}) == 1


class TestDesignSpaceEnumeration:
    def test_valid_heights_divide_array_size(self):
        for height in valid_heights(16384):
            assert 16384 % height == 0

    def test_valid_heights_power_of_two_filter(self):
        heights = valid_heights(48, power_of_two_only=True)
        assert heights == [1, 2, 4, 8, 16]

    def test_enumeration_yields_only_feasible(self):
        for spec in enumerate_design_space(4096):
            assert spec.is_feasible(4096)

    def test_enumeration_respects_limits(self):
        specs = list(enumerate_design_space(1024, local_array_sizes=(2, 4),
                                            max_adc_bits=3))
        assert specs
        assert all(s.adc_bits <= 3 for s in specs)
        assert all(s.local_array_size in (2, 4) for s in specs)

    def test_larger_arrays_have_larger_design_space(self):
        assert design_space_size(16384) > design_space_size(1024)

    def test_bad_array_size(self):
        with pytest.raises(SpecificationError):
            valid_heights(0)


class TestSynthesizableACIM:
    def test_compute_model_is_qr(self):
        assert SynthesizableACIM.compute_model is ComputeModel.CHARGE_REDISTRIBUTION

    def test_column_structure(self, figure8_spec_b):
        acim = SynthesizableACIM(figure8_spec_b)
        column = acim.column_plan(0)
        assert column.num_local_arrays == 16
        assert column.num_rows == 128
        assert column.total_cdac_units() == 8
        assert len(column.sar_groups) == figure8_spec_b.adc_bits + 1

    def test_sar_group_weights_follow_binary_ratio(self, figure8_spec_b):
        acim = SynthesizableACIM(figure8_spec_b)
        weights = [g.weight for g in acim.column_plan(0).sar_groups]
        assert weights == [1, 1, 2, 4]

    def test_local_array_rows_partition_column(self, figure8_spec_b):
        acim = SynthesizableACIM(figure8_spec_b)
        rows = [r for array in acim.column_plan(0).local_arrays for r in array.rows]
        assert rows == list(range(128))

    def test_unused_local_arrays(self, figure8_spec_b):
        acim = SynthesizableACIM(figure8_spec_b)
        assert acim.unused_local_arrays_per_column() == 16 - 8

    def test_component_counts(self, figure8_spec_b):
        counts = SynthesizableACIM(figure8_spec_b).component_counts()
        assert counts["sram8t"] == 16384
        assert counts["comparator"] == 128
        assert counts["sar_dff"] == 3 * 128
        assert counts["local_compute"] == 16 * 128

    def test_columns_are_identical(self, small_spec):
        acim = SynthesizableACIM(small_spec)
        columns = acim.columns()
        assert len(columns) == small_spec.width
        assert all(c.local_arrays == columns[0].local_arrays for c in columns)

    def test_invalid_column_index(self, small_spec):
        acim = SynthesizableACIM(small_spec)
        with pytest.raises(SpecificationError):
            acim.column_plan(small_spec.width)

    def test_describe_contains_ratio(self, figure8_spec_b):
        assert "1:1:2:4" in SynthesizableACIM(figure8_spec_b).describe()

    def test_infeasible_spec_rejected(self):
        with pytest.raises(SpecificationError):
            SynthesizableACIM(ACIMDesignSpec(8, 4, 8, 4))


class TestComputeModels:
    def test_catalog_has_three_models(self):
        assert len(COMPUTE_MODEL_CATALOG) == 3

    def test_selection_is_qr(self):
        assert select_compute_model() is ComputeModel.CHARGE_REDISTRIBUTION

    def test_qr_supports_capacitor_reuse(self):
        qr = COMPUTE_MODEL_CATALOG[ComputeModel.CHARGE_REDISTRIBUTION]
        assert qr.supports_capacitor_reuse
        assert not qr.pvt_sensitive

    def test_is_more_robust_than_current_summing(self):
        qr = COMPUTE_MODEL_CATALOG[ComputeModel.CHARGE_REDISTRIBUTION]
        cs = COMPUTE_MODEL_CATALOG[ComputeModel.CURRENT_SUMMING]
        assert qr.robustness_score() > cs.robustness_score()


class TestTiming:
    def test_cycle_time_near_five_ns_for_figure8(self, figure8_spec_b):
        model = TimingModel(figure8_spec_b)
        assert model.cycle_time == pytest.approx(5.0e-9, rel=0.05)

    def test_setup_time_respects_lower_bound(self, figure8_spec_b):
        model = TimingModel(figure8_spec_b)
        assert model.setup_time >= model.minimum_setup_time

    def test_conversion_time_scales_with_bits(self):
        short = TimingModel(ACIMDesignSpec(64, 4, 8, 2))
        long = TimingModel(ACIMDesignSpec(64, 4, 8, 3))
        assert long.conversion_time > short.conversion_time

    def test_macs_per_cycle(self, figure8_spec_b):
        assert TimingModel(figure8_spec_b).macs_per_cycle() == 16 * 128

    def test_events_cover_both_states(self, small_spec):
        events = TimingModel(small_spec).events()
        states = {event.state for event in events}
        assert states == {OperatingState.MAC, OperatingState.ADC_CONVERSION}

    def test_events_are_time_ordered(self, small_spec):
        events = TimingModel(small_spec).events()
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_comparison_events_match_adc_bits(self, small_spec):
        events = TimingModel(small_spec).events()
        comparisons = [e for e in events if e.signal.startswith("COMP[")]
        assert len(comparisons) == small_spec.adc_bits

    def test_state_durations_sum_to_cycle(self, small_spec):
        model = TimingModel(small_spec)
        durations = model.state_durations()
        assert sum(durations.values()) == pytest.approx(model.cycle_time)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            TimingParameters(compute_delay=-1.0)
        with pytest.raises(ModelError):
            TimingParameters(setup_margin=0.5)
