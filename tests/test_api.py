"""Tests of the typed ``repro.api`` session layer.

Covers the request/result dict round-trips (property-tested), the
structured validation errors and their machine-readable codes, the
session workflows themselves — including the fixed-seed parity regression
between ``Session.explore`` and the legacy ``DesignSpaceExplorer`` path —
the deprecation shims over the legacy front doors, and the CLI adapters'
shared flags and uniform ``--json`` output.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest
from hypothesis import given, settings, strategies as st

import repro.errors as errors_module
from repro.api import (
    REQUEST_TYPES,
    ApiResult,
    CampaignRequest,
    EstimateRequest,
    ExploreRequest,
    FlowRequest,
    LayoutRequest,
    LibraryRequest,
    QueryRequest,
    Session,
    SessionConfig,
    ValidateSnrRequest,
    request_from_dict,
)
from repro.cli import main
from repro.dse.exhaustive import exhaustive_pareto_front
from repro.errors import (
    EngineError,
    FlowError,
    OptimizationError,
    ReproError,
    RequestError,
    SpecificationError,
    StoreError,
    TechnologyError,
)

FAST = dict(population=16, generations=4, seed=3)


def _signature(rows):
    """Order-preserving identity of a Pareto payload (spec + metrics)."""
    return [tuple(sorted(row.items())) for row in rows]


# ---------------------------------------------------------------------------
# Requests: round-trips and validation
# ---------------------------------------------------------------------------


class TestRequestRoundTrip:
    @pytest.mark.parametrize("kind", sorted(REQUEST_TYPES))
    def test_defaults_round_trip_through_json(self, kind):
        cls = REQUEST_TYPES[kind]
        request = cls(name="x") if kind == "campaign" else cls()
        wire = json.loads(json.dumps(request.to_dict()))
        assert request_from_dict(wire) == request
        assert request_from_dict(wire).to_dict() == request.to_dict()

    def test_kind_discriminator_dispatches(self):
        request = request_from_dict({"kind": "estimate", "height": 16,
                                     "width": 4, "local_array_size": 4,
                                     "adc_bits": 2})
        assert isinstance(request, EstimateRequest)
        assert request.height == 16

    @settings(max_examples=40, deadline=None)
    @given(
        local=st.sampled_from([1, 2, 4, 8]),
        bits=st.integers(min_value=1, max_value=4),
        multiplier=st.integers(min_value=1, max_value=4),
        width=st.integers(min_value=1, max_value=64),
        sweep=st.booleans(),
    )
    def test_estimate_round_trip_property(self, local, bits, multiplier,
                                          width, sweep):
        request = EstimateRequest(
            height=local * (2 ** bits) * multiplier,
            width=width,
            local_array_size=local,
            adc_bits=bits,
            adc_sweep=sweep,
        )
        wire = json.loads(json.dumps(request.to_dict()))
        assert EstimateRequest.from_dict(wire) == request

    @settings(max_examples=40, deadline=None)
    @given(
        array_size=st.sampled_from([256, 1024, 4096]),
        population=st.integers(min_value=4, max_value=60),
        generations=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2 ** 31),
        min_snr=st.one_of(
            st.none(),
            st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        sizes=st.lists(
            st.sampled_from([2, 4, 8, 16, 32]), min_size=1, max_size=5,
            unique=True,
        ),
    )
    def test_explore_round_trip_property(self, array_size, population,
                                         generations, seed, min_snr, sizes):
        request = ExploreRequest(
            array_size=array_size,
            population=population,
            generations=generations,
            seed=seed,
            min_snr_db=min_snr,
            local_array_sizes=tuple(sizes),
        )
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = request_from_dict(wire)
        assert rebuilt == request
        # Tuples must come back as tuples, not lists.
        assert isinstance(rebuilt.local_array_sizes, tuple)


class TestRequestValidation:
    def test_unknown_kind_raises_request_error(self):
        with pytest.raises(RequestError) as excinfo:
            request_from_dict({"kind": "teleport"})
        assert excinfo.value.code == "request"

    def test_unknown_field_raises_request_error(self):
        with pytest.raises(RequestError, match="unknown field"):
            request_from_dict({"kind": "estimate", "heigth": 128})

    def test_kind_mismatch_raises(self):
        with pytest.raises(RequestError, match="does not match"):
            EstimateRequest.from_dict({"kind": "explore"})

    def test_infeasible_spec_raises_specification_error(self):
        with pytest.raises(SpecificationError) as excinfo:
            EstimateRequest(height=8, width=8, local_array_size=8,
                            adc_bits=4).validate()
        assert excinfo.value.code == "specification"

    def test_bad_population_raises_optimization_error(self):
        with pytest.raises(OptimizationError):
            ExploreRequest(array_size=1024, population=2).validate()

    def test_bad_explore_method_raises(self):
        with pytest.raises(RequestError, match="unknown explore method"):
            ExploreRequest(array_size=1024, method="random").validate()

    def test_campaign_needs_name_and_known_action(self):
        with pytest.raises(RequestError, match="name"):
            CampaignRequest(name="").validate()
        with pytest.raises(RequestError, match="action"):
            CampaignRequest(name="x", action="pause").validate()
        with pytest.raises(StoreError):
            CampaignRequest(name="x", checkpoint_every=0).validate()

    def test_campaign_shards_validated(self):
        with pytest.raises(RequestError, match="shards"):
            CampaignRequest(name="x", shards=0).validate()
        with pytest.raises(RequestError, match="shards only applies"):
            CampaignRequest(name="x", action="resume", shards=2).validate()
        CampaignRequest(name="x", shards=2).validate()

    def test_small_flow_array_raises_flow_error(self):
        with pytest.raises(FlowError):
            FlowRequest(array_size=8).validate()

    def test_bad_rank_metric_raises_store_error(self):
        with pytest.raises(StoreError, match="rank metric"):
            QueryRequest(rank_by="speed").validate()

    def test_layout_views_need_output_dir(self):
        with pytest.raises(RequestError, match="output_dir"):
            LayoutRequest(spice=True).validate()


class TestErrorCodes:
    def test_every_error_class_has_a_distinct_code(self):
        classes = [
            value for value in vars(errors_module).values()
            if isinstance(value, type) and issubclass(value, ReproError)
        ]
        codes = [cls.code for cls in classes]
        assert len(classes) > 10
        assert len(set(codes)) == len(codes)

    def test_as_dict_is_machine_readable(self):
        record = SpecificationError("H too small").as_dict()
        assert record == {
            "code": "specification",
            "error": "SpecificationError",
            "message": "H too small",
        }


# ---------------------------------------------------------------------------
# Result envelope and session config
# ---------------------------------------------------------------------------


class TestApiResult:
    def test_round_trip_excludes_artifacts(self):
        result = ApiResult(
            kind="explore", status="ok", payload={"pareto_size": 3},
            warnings=["w"], engine_stats={"evaluations": 5},
            runtime_seconds=0.25, artifacts={"rich": object()},
        )
        rebuilt = ApiResult.from_dict(json.loads(result.to_json()))
        assert rebuilt == result  # artifacts excluded from equality
        assert rebuilt.artifacts == {}
        assert "artifacts" not in result.to_dict()

    def test_unknown_field_and_status_rejected(self):
        with pytest.raises(RequestError):
            ApiResult.from_dict({"kind": "x", "status": "ok", "extra": 1})
        with pytest.raises(RequestError, match="status"):
            ApiResult.from_dict({"kind": "x", "status": "great"})


class TestSessionConfig:
    def test_round_trip(self):
        config = SessionConfig(backend="thread", workers=2,
                               store="s.sqlite", cache_size=128)
        assert SessionConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))) == config

    def test_bad_backend_raises_engine_error(self):
        with pytest.raises(EngineError):
            SessionConfig(backend="gpu").validate()

    def test_bad_technology_raises_technology_error(self):
        with pytest.raises(TechnologyError):
            SessionConfig(technology="tsmc5").validate()

    def test_unknown_field_raises_request_error(self):
        with pytest.raises(RequestError):
            SessionConfig.from_dict({"backend": "serial", "wokers": 2})


# ---------------------------------------------------------------------------
# Session workflows
# ---------------------------------------------------------------------------


class TestSessionWorkflows:
    def test_estimate_matches_direct_estimator(self, estimator, small_spec):
        with Session() as session:
            result = session.estimate(EstimateRequest(
                height=small_spec.height, width=small_spec.width,
                local_array_size=small_spec.local_array_size,
                adc_bits=small_spec.adc_bits,
            ))
        assert result.ok
        assert result.payload["metrics"] == [
            estimator.evaluate(small_spec).as_dict()
        ]

    def test_estimate_sweep_covers_every_feasible_precision(self):
        with Session() as session:
            result = session.estimate(EstimateRequest(
                height=128, width=8, local_array_size=4, adc_bits=3,
                adc_sweep=True,
            ))
        # H/L = 32 local arrays support B_ADC in 1..5.
        assert [row["B_ADC"] for row in result.payload["metrics"]] == [1, 2, 3, 4, 5]

    def test_explore_parity_with_core_explorer(self):
        """Fixed-seed Session exploration == the direct explorer core."""
        from repro.dse.explorer import _ExplorerCore
        from repro.dse.nsga2 import NSGA2Config

        with Session() as session:
            result = session.explore(ExploreRequest(array_size=1024, **FAST))
        explorer = _ExplorerCore(config=NSGA2Config(
            population_size=FAST["population"],
            generations=FAST["generations"],
            seed=FAST["seed"],
        ))
        legacy = explorer.explore(1024)
        assert [d.spec.as_tuple() for d in result.artifacts["pareto_set"]] == [
            d.spec.as_tuple() for d in legacy.pareto_set
        ]
        assert [d.objectives for d in result.artifacts["pareto_set"]] == [
            d.objectives for d in legacy.pareto_set
        ]
        assert result.payload["pareto"] == [
            d.metrics.as_dict() for d in legacy.pareto_set
        ]

    def test_explore_distillation_bounds_apply(self):
        with Session() as session:
            everything = session.explore(ExploreRequest(array_size=1024, **FAST))
            bounded = session.explore(ExploreRequest(
                array_size=1024, min_snr_db=10.0, **FAST))
        assert bounded.payload["pareto"] == everything.payload["pareto"]
        assert bounded.payload["distilled_size"] <= bounded.payload["pareto_size"]
        assert all(row["snr_db"] >= 10.0 for row in bounded.payload["distilled"])

    def test_explore_exhaustive_matches_baseline(self, estimator):
        with Session() as session:
            result = session.explore(ExploreRequest(
                array_size=256, method="exhaustive"))
        baseline = sorted(
            exhaustive_pareto_front(256, estimator=estimator),
            key=lambda d: d.spec.as_tuple(),
        )
        assert result.payload["pareto"] == [
            d.metrics.as_dict() for d in baseline
        ]

    def test_explore_height_bounds_apply_to_every_method(self):
        with Session() as session:
            exhaustive = session.explore(ExploreRequest(
                array_size=256, method="exhaustive", min_height=64))
            heights = {row["H"] for row in exhaustive.payload["pareto"]}
            assert heights and all(h >= 64 for h in heights)
            # The sensitivity grid honors the same bounds (a grid emptied
            # by impossible bounds fails loudly instead of silently
            # analyzing the unrestricted space).
            with pytest.raises(OptimizationError):
                session.explore(ExploreRequest(
                    array_size=256, method="sensitivity",
                    sensitivity_parameters=("k1",), min_height=10_000))

    def test_explore_sensitivity_reports_each_parameter(self):
        with Session() as session:
            result = session.explore(ExploreRequest(
                array_size=256, method="sensitivity",
                sensitivity_parameters=("k1", "a_sram"),
            ))
        rows = result.payload["sensitivity"]
        assert [row["parameter"] for row in rows] == ["k1", "a_sram"]
        assert all(0.0 <= row["jaccard_similarity"] <= 1.0 for row in rows)

    def test_campaign_interrupt_resume_matches_uninterrupted(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            first = session.campaign(CampaignRequest(
                name="t", array_size=1024, stop_after=2, **FAST))
            assert first.status == "interrupted"
            assert not first.ok
        with Session.from_config(config) as session:
            resumed = session.campaign(
                CampaignRequest(name="t", action="resume"))
            assert resumed.ok
            assert resumed.payload["resumed"] is True
        with Session() as session:
            reference = session.explore(ExploreRequest(array_size=1024, **FAST))
        assert _signature(resumed.payload["pareto"]) == _signature(
            reference.payload["pareto"])

    def test_campaign_without_store_raises(self):
        with Session() as session:
            with pytest.raises(StoreError, match="store"):
                session.campaign(CampaignRequest(name="x", array_size=1024))

    def test_query_designs_and_campaigns(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            session.campaign(CampaignRequest(name="q", array_size=1024, **FAST))
            designs = session.query(QueryRequest(limit=4))
            campaigns = session.query(QueryRequest(what="campaigns"))
        assert designs.payload["count"] == len(designs.payload["designs"]) <= 4
        assert [c["name"] for c in campaigns.payload["campaigns"]] == ["q"]
        assert campaigns.payload["store"]["campaigns"] == 1

    def test_flow_records_campaign_and_serializes(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            result = session.flow(FlowRequest(
                array_size=256, population=16, generations=3, seed=1,
                max_layouts=1, generate_layouts=False,
                campaign_name="flow-rec",
            ))
            assert result.ok
            # Netlist generation is capped by max_layouts.
            assert result.payload["netlists"] == 1
            assert result.payload["distilled_size"] >= 1
            json.loads(result.to_json())  # payload is pure JSON
            campaigns = session.query(QueryRequest(what="campaigns"))
        assert "flow-rec" in [
            c["name"] for c in campaigns.payload["campaigns"]
        ]

    def test_flow_reuse_surfaces_physical_stats(self):
        with Session() as session:
            result = session.flow(FlowRequest(
                array_size=256, population=16, generations=3, seed=1,
                max_layouts=2))
        stats = result.payload["physical_stats"]
        assert result.payload["reuse"] == "auto"
        assert stats["macros_built"] >= 1
        assert set(stats["stages"]) >= {"netlist", "placement", "routing",
                                        "layout", "export"}
        # Stage timings/hit counters are folded into the flat engine stats.
        assert "stage_routing_seconds" in result.engine_stats
        assert "macros_reused" in result.engine_stats
        json.loads(result.to_json())

    def test_flow_reuse_off_is_the_flat_baseline(self):
        with Session() as session:
            flat = session.flow(FlowRequest(
                array_size=256, population=16, generations=3, seed=1,
                max_layouts=1, reuse="off"))
            auto = session.flow(FlowRequest(
                array_size=256, population=16, generations=3, seed=1,
                max_layouts=1))
        assert flat.payload["physical_stats"] == {}

        def geometry(payload):
            return {
                key: {k: v for k, v in report.items() if k != "runtime_s"}
                for key, report in payload["layouts"].items()
            }

        assert geometry(flat.payload) == geometry(auto.payload)

    def test_flow_rejects_unknown_reuse_mode(self):
        with pytest.raises(FlowError):
            FlowRequest(array_size=256, reuse="sometimes").validate()

    def test_session_layout_requests_share_the_macro_cache(self):
        request = LayoutRequest(height=16, width=4, local_array_size=4,
                                adc_bits=2, route_columns=True)
        with Session() as session:
            first = session.layout(request)
            second = session.layout(request)
        first_report = dict(first.payload["report"])
        second_report = dict(second.payload["report"])
        first_report.pop("runtime_s"), second_report.pop("runtime_s")
        assert first_report == second_report
        assert first.payload["physical_stats"]["macros_built"] == 3
        assert second.payload["physical_stats"]["macros_built"] == 0
        assert second.payload["physical_stats"]["macros_reused"] == 1
        assert second.engine_stats["stage_layout_cache_hits"] == 1

    def test_library_macros_listing(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            session.layout(LayoutRequest(height=16, width=4,
                                         local_array_size=4, adc_bits=2))
            listing = session.library_report(LibraryRequest(macros=True))
        macros = listing.payload["macros"]
        assert {row["kind"] for row in macros} >= {
            "local_array", "column", "acim_macro"}
        # A fresh session on the same store sees the persisted inventory.
        with Session.from_config(config) as session:
            cold = session.library_report(LibraryRequest(macros=True))
        assert all(row["source"] == "store"
                   for row in cold.payload["macros"])
        assert len(cold.payload["macros"]) == len(macros)

    def test_submit_dispatches_dicts_and_rejects_unknown(self):
        with Session() as session:
            result = session.submit({
                "kind": "estimate", "height": 16, "width": 4,
                "local_array_size": 4, "adc_bits": 2,
            })
            assert result.kind == "estimate" and result.ok
            with pytest.raises(RequestError):
                session.submit({"kind": "nope"})

    def test_validate_snr_skips_infeasible_with_warning(self):
        with Session() as session:
            result = session.validate_snr(ValidateSnrRequest(
                adc_bits=(3, 9), height=64, local_array_size=4, trials=50))
        assert [row["B_ADC"] for row in result.payload["points"]] == [3]
        assert any("B_ADC=9" in warning for warning in result.warnings)

    def test_library_report(self):
        with Session() as session:
            result = session.library_report(LibraryRequest(report=True))
        assert result.ok
        assert result.payload["consistent"] is True
        assert "sram8t" in result.payload["report"]

    def test_session_reuses_one_engine_across_requests(self):
        with Session() as session:
            session.estimate(EstimateRequest(height=16, width=4,
                                             local_array_size=4, adc_bits=2))
            again = session.estimate(EstimateRequest(
                height=16, width=4, local_array_size=4, adc_bits=2))
        # Second call is a pure cache hit on the session engine.
        assert again.engine_stats["evaluations"] == 0
        assert again.engine_stats["cache_hits"] == 1


# ---------------------------------------------------------------------------
# Legacy front doors (removed in 1.2.0)
# ---------------------------------------------------------------------------


class TestLegacyFrontDoorsRemoved:
    def test_legacy_front_doors_are_gone(self):
        """The one-release deprecation window has closed."""
        import repro

        for name in ("DesignSpaceExplorer", "EasyACIMFlow", "CampaignManager"):
            assert not hasattr(repro, name)
            assert name not in repro.__all__

    def test_session_paths_emit_no_deprecation_warnings(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = SessionConfig(store=str(tmp_path / "store.sqlite"))
            with Session.from_config(config) as session:
                session.explore(ExploreRequest(array_size=256, population=8,
                                               generations=2, seed=1))
                session.campaign(CampaignRequest(
                    name="clean", array_size=256, population=8,
                    generations=2, seed=1))
                session.flow(FlowRequest(
                    array_size=256, population=8, generations=2, seed=1,
                    generate_netlists=False, generate_layouts=False))

# ---------------------------------------------------------------------------
# CLI adapters
# ---------------------------------------------------------------------------


class TestCliThroughApi:
    def test_every_subcommand_has_shared_session_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["estimate", "--height", "16", "--width",
                                  "4", "--local", "4", "--adc-bits", "2",
                                  "--backend", "thread", "--workers", "2"])
        assert args.backend == "thread" and args.workers == 2
        for argv in (
            ["explore", "--json"],
            ["flow", "--json"],
            ["layout", "--height", "16", "--width", "4", "--local", "4",
             "--adc-bits", "2", "--json"],
            ["library", "--json"],
            ["validate-snr", "--json"],
            ["campaign", "run", "x", "--json"],
            ["campaign", "list", "--json"],
            ["campaign", "query", "--json"],
        ):
            parsed = parser.parse_args(argv)
            assert parsed.json_out == "-"
            assert hasattr(parsed, "backend")
            assert hasattr(parsed, "store")

    def test_estimate_json_stdout_is_an_api_result(self, capsys):
        exit_code = main(["estimate", "--height", "16", "--width", "4",
                          "--local", "4", "--adc-bits", "2", "--json"])
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        rebuilt = ApiResult.from_dict(document)
        assert rebuilt.kind == "estimate" and rebuilt.ok
        assert rebuilt.payload["metrics"][0]["H"] == 16

    def test_explore_json_file_alongside_tables(self, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        exit_code = main(["explore", "--array-size", "256", "--population",
                          "8", "--generations", "2", "--seed", "1",
                          "--json", str(json_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Pareto solutions" in captured  # human tables kept
        document = json.loads(json_path.read_text())
        assert document["kind"] == "explore"
        assert document["payload"]["pareto"]

    def test_campaign_cli_run_list_query(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        assert main(["campaign", "run", "cli-camp", "--store", store,
                     "--array-size", "256", "--population", "8",
                     "--generations", "2", "--seed", "1"]) == 0
        assert main(["campaign", "list", "--store", store]) == 0
        assert "cli-camp" in capsys.readouterr().out
        assert main(["campaign", "query", "--store", store, "--limit",
                     "3"]) == 0
        assert "tops_per_watt" in capsys.readouterr().out

    def test_flow_subcommand_smoke(self, capsys):
        exit_code = main(["flow", "--array-size", "256", "--population",
                          "8", "--generations", "2", "--seed", "1",
                          "--no-layouts", "--no-netlists"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "EasyACIM flow for 256-bit array" in captured

    def test_explore_sensitivity_via_cli(self, capsys):
        exit_code = main(["explore", "--array-size", "256", "--method",
                          "sensitivity"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "jaccard_similarity" in captured

    def test_invalid_request_surfaces_structured_error(self):
        with pytest.raises(SpecificationError):
            main(["estimate", "--height", "8", "--width", "8", "--local",
                  "8", "--adc-bits", "4"])

    def test_json_mode_emits_error_envelope_instead_of_traceback(self, capsys):
        exit_code = main(["estimate", "--height", "8", "--width", "8",
                          "--local", "8", "--adc-bits", "4", "--json"])
        assert exit_code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "error"
        assert document["payload"]["error"]["code"] == "specification"
        assert document["payload"]["error"]["error"] == "SpecificationError"

    def test_bare_json_still_writes_requested_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "pareto.csv"
        exit_code = main(["explore", "--array-size", "256", "--population",
                          "8", "--generations", "2", "--seed", "1",
                          "--csv", str(csv_path), "--json"])
        assert exit_code == 0
        # stdout is pure JSON; the explicitly requested export still lands.
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "explore"
        assert csv_path.read_text().startswith("H,W,L,B_ADC")
