"""Unit tests for the GDSII writer/reader."""

import struct

import pytest

from repro.errors import LayoutError
from repro.layout.gdsii import read_gds, write_gds, _to_real8, _from_real8
from repro.layout.geometry import Orientation, Rect, Transform
from repro.layout.layout import LayoutCell


def _hierarchy():
    leaf = LayoutCell("leaf", boundary=Rect(0, 0, 1000, 500))
    leaf.add_shape("M1", Rect(0, 0, 1000, 100))
    leaf.add_shape("M2", Rect(200, 0, 300, 500))
    top = LayoutCell("top", boundary=Rect(0, 0, 5000, 5000))
    top.add_shape("M3", Rect(0, 0, 5000, 200))
    top.add_instance("L0", leaf, Transform(100, 100))
    top.add_instance("L1", leaf, Transform(2000, 100, Orientation.MY))
    top.add_instance("L2", leaf, Transform(3000, 3000, Orientation.R90))
    return top


class TestReal8:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 1e-9, 1e-3, 90.0, 270.0, 2.5e-7])
    def test_roundtrip(self, value):
        assert _from_real8(_to_real8(value)) == pytest.approx(value, rel=1e-12)


class TestGdsWriter:
    def test_file_begins_with_header_record(self, tmp_path, technology):
        path = tmp_path / "out.gds"
        write_gds(_hierarchy(), path, technology)
        data = path.read_bytes()
        length, record_type, data_type = struct.unpack_from(">HBB", data, 0)
        assert record_type == 0x00  # HEADER
        assert data_type == 0x02

    def test_write_returns_byte_count(self, tmp_path, technology):
        path = tmp_path / "out.gds"
        count = write_gds(_hierarchy(), path, technology)
        assert count == path.stat().st_size

    def test_unknown_layer_raises(self, tmp_path, technology):
        cell = LayoutCell("bad")
        cell.add_shape("NOT_A_LAYER", Rect(0, 0, 10, 10))
        with pytest.raises(LayoutError):
            write_gds(cell, tmp_path / "bad.gds", technology)

    def test_deterministic_output(self, tmp_path, technology):
        path_a = tmp_path / "a.gds"
        path_b = tmp_path / "b.gds"
        write_gds(_hierarchy(), path_a, technology)
        write_gds(_hierarchy(), path_b, technology)
        assert path_a.read_bytes() == path_b.read_bytes()


class TestGdsRoundtrip:
    def test_structures_and_references_preserved(self, tmp_path, technology):
        path = tmp_path / "rt.gds"
        write_gds(_hierarchy(), path, technology)
        cells = read_gds(path, technology)
        assert set(cells) == {"top", "leaf"}
        top = cells["top"]
        assert top.instance_count() == 3
        assert len(top.shapes) == 1

    def test_geometry_preserved(self, tmp_path, technology):
        path = tmp_path / "rt.gds"
        write_gds(_hierarchy(), path, technology)
        leaf = read_gds(path, technology)["leaf"]
        rects = sorted((s.layer, s.rect) for s in leaf.shapes)
        assert ("M1", Rect(0, 0, 1000, 100)) in rects
        assert ("M2", Rect(200, 0, 300, 500)) in rects

    def test_orientations_preserved(self, tmp_path, technology):
        path = tmp_path / "rt.gds"
        write_gds(_hierarchy(), path, technology)
        top = read_gds(path, technology)["top"]
        orientations = {inst.transform.orientation for inst in top.instances}
        assert Orientation.MY in orientations
        assert Orientation.R90 in orientations

    def test_positions_preserved(self, tmp_path, technology):
        path = tmp_path / "rt.gds"
        write_gds(_hierarchy(), path, technology)
        top = read_gds(path, technology)["top"]
        offsets = {(inst.transform.dx, inst.transform.dy) for inst in top.instances}
        assert (100, 100) in offsets
        assert (3000, 3000) in offsets

    def test_library_cell_roundtrip(self, tmp_path, technology, cell_library):
        path = tmp_path / "sram.gds"
        original = cell_library.layout("sram8t")
        write_gds(original, path, technology)
        rebuilt = read_gds(path, technology)["sram8t"]
        assert len(rebuilt.shapes) == len(original.shapes)
