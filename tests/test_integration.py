"""Integration tests spanning multiple subsystems.

These tests exercise the combinations the paper's evaluation relies on:
the Figure-8 design points through model + netlist + layout, the estimation
model against the behavioral Monte-Carlo simulator, the explorer against the
published headline ranges, and the full flow from array size to exported
GDSII.
"""

import pytest

from repro import (
    ACIMDesignSpec,
    ACIMEstimator,
    ExploreRequest,
    FlowInputs,
    NSGA2Config,
    Session,
)
from repro.flow.controller import _FlowCore
from repro.dse.distill import DistillationCriteria
from repro.dse.exhaustive import exhaustive_pareto_front
from repro.flow.layout_gen import LayoutGenerator
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.layout.drc import DRCChecker
from repro.layout.gdsii import read_gds
from repro.model.calibration import FIGURE8_REFERENCE
from repro.netlist.traversal import count_leaf_instances
from repro.sim import MonteCarloSnr, NoiseSettings


class TestFigure8DesignPoints:
    """The three published 16 kb design points, end to end."""

    @pytest.mark.parametrize("spec_tuple,expected", list(FIGURE8_REFERENCE.items()))
    def test_model_reproduces_published_numbers(self, estimator, spec_tuple, expected):
        height, width, local, bits = spec_tuple
        expected_tops, expected_area = expected
        metrics = estimator.evaluate(ACIMDesignSpec(height, width, local, bits))
        assert metrics.tops == pytest.approx(expected_tops, rel=0.03)
        assert metrics.area_f2_per_bit == pytest.approx(expected_area, rel=0.01)

    def test_figure8c_has_higher_snr_than_b_at_same_throughput(self, estimator):
        metrics_b = estimator.evaluate(ACIMDesignSpec(128, 128, 8, 3))
        metrics_c = estimator.evaluate(ACIMDesignSpec(64, 256, 8, 3))
        assert metrics_c.tops == pytest.approx(metrics_b.tops, rel=1e-6)
        assert metrics_c.snr_db > metrics_b.snr_db
        assert metrics_c.area_f2_per_bit > metrics_b.area_f2_per_bit

    def test_netlist_of_figure8b_column_structure(self, cell_library):
        # Building the full 16 kb netlist is cheap because the hierarchy is
        # shared; verify the leaf counts match the architecture.
        spec = ACIMDesignSpec(128, 128, 8, 3)
        macro = TemplateNetlistGenerator(cell_library).generate(spec)
        counts = count_leaf_instances(macro)
        assert counts["sram8t"] == 16384
        assert counts["comparator"] == 128
        assert counts["sar_dff"] == 384

    def test_layout_dimensions_track_figure8_for_scaled_macro(self, cell_library):
        # A 1 kb macro with the Figure-8(b) column structure (H=128, L=8,
        # B=3, W=8): the column height must match the published 131 um.
        spec = ACIMDesignSpec(128, 8, 8, 3)
        report = LayoutGenerator(cell_library).generate(spec, route_column=False)
        assert report.height_um == pytest.approx(131 + 2.0, rel=0.05)


class TestModelAgainstSimulation:
    def test_snr_model_and_monte_carlo_agree_on_trends(self):
        estimator = ACIMEstimator()
        specs = [
            ACIMDesignSpec(64, 8, 8, 2),
            ACIMDesignSpec(64, 8, 4, 3),
            ACIMDesignSpec(128, 8, 4, 4),
        ]
        analytic = [
            estimator.snr_model.design_snr_db(s.adc_bits, s.local_arrays_per_column)
            for s in specs
        ]
        measured = [
            MonteCarloSnr(s, seed=33).run(trials=800).snr_db for s in specs
        ]
        # Ordering must agree and absolute values track within a few dB.
        assert sorted(range(3), key=lambda i: analytic[i]) == \
            sorted(range(3), key=lambda i: measured[i])
        for a, m in zip(analytic, measured):
            assert m == pytest.approx(a, abs=5.0)

    def test_noise_sources_degrade_measured_snr(self):
        spec = ACIMDesignSpec(128, 8, 4, 5)
        ideal = MonteCarloSnr(spec, noise=NoiseSettings.ideal(), seed=3).run(trials=600)
        noisy = MonteCarloSnr(
            spec,
            noise=NoiseSettings(cap_mismatch_kappa=4e-9, comparator_noise_sigma=0.01),
            seed=3,
        ).run(trials=600)
        assert noisy.snr_db < ideal.snr_db


class TestExplorerHeadlineClaims:
    def test_16kb_design_space_covers_paper_ranges(self):
        # Paper abstract: energy efficiency 50-750 TOPS/W, area
        # 1500-7500 F^2/bit across the design space (all array sizes); a
        # 16 kb array covers most of that span.
        designs = exhaustive_pareto_front(16384)
        efficiencies = [d.metrics.tops_per_watt for d in designs]
        areas = [d.metrics.area_f2_per_bit for d in designs]
        assert min(efficiencies) < 120
        assert max(efficiencies) > 600
        assert min(areas) < 2200
        assert max(areas) > 5000

    def test_explored_front_matches_exhaustive_extremes(self):
        with Session() as session:
            result = session.explore(ExploreRequest(
                array_size=16384, population=60, generations=30, seed=17))
        pareto_set = result.artifacts["pareto_set"]
        truth = exhaustive_pareto_front(16384)
        found_eff = max(d.metrics.tops_per_watt for d in pareto_set)
        true_eff = max(d.metrics.tops_per_watt for d in truth)
        assert found_eff >= 0.9 * true_eff
        found_area = min(d.metrics.area_f2_per_bit for d in pareto_set)
        true_area = min(d.metrics.area_f2_per_bit for d in truth)
        assert found_area <= 1.1 * true_area


class TestFullFlow:
    def test_flow_with_exported_layout_and_drc(self, tmp_path, technology):
        inputs = FlowInputs(
            array_size=256,
            nsga2=NSGA2Config(population_size=20, generations=8, seed=5),
            criteria=DistillationCriteria(max_adc_bits=3),
            max_layouts=1,
        )
        flow = _FlowCore(inputs)
        result = flow.run(route_columns=True, output_dir=str(tmp_path))
        assert result.layouts
        report = next(iter(result.layouts.values()))
        assert report.failed_nets == 0
        # GDS written and readable.
        cells = read_gds(report.gds_path, technology)
        assert report.layout.name in cells
        # The local-array level must be DRC-clean for metal shorts.
        local_array = next(
            cell for name, cell in report.layout.collect_cells().items()
            if name.startswith("local_array")
        )
        violations = DRCChecker(technology).check(local_array)
        shorts = [v for v in violations if v.rule == "min_spacing" and v.measured == 0]
        assert not shorts

    def test_flow_distillation_changes_selection(self):
        nsga2 = NSGA2Config(population_size=30, generations=12, seed=9)
        unconstrained = _FlowCore(FlowInputs(array_size=4096, nsga2=nsga2))
        constrained = _FlowCore(FlowInputs(
            array_size=4096, nsga2=nsga2,
            criteria=DistillationCriteria(min_snr_db=25.0)))
        free_run = unconstrained.run(generate_netlists=False, generate_layouts=False)
        tight_run = constrained.run(generate_netlists=False, generate_layouts=False)
        assert len(tight_run.distilled) <= len(free_run.distilled)
