"""Unit tests for model calibration (Figure-8 constants, k1..k4 fits)."""

import math

import pytest

from repro.errors import CalibrationError
from repro.model.area import AreaModel
from repro.model.calibration import (
    FIGURE8_REFERENCE,
    calibrate_cycle_time_from_figure8,
    derive_area_parameters_from_figure8,
    fit_adc_energy_constants,
    fit_snr_constants,
)
from repro.model.energy import EnergyParameters
from repro.model.notation import WorkloadStatistics
from repro.model.snr import SnrModel, SnrParameters
from repro.arch.spec import ACIMDesignSpec
from repro.sim.sar_adc import sar_adc_energy


class TestAreaCalibration:
    def test_reference_has_three_points(self):
        assert len(FIGURE8_REFERENCE) == 3

    def test_derived_constants_reproduce_figure8(self):
        params = derive_area_parameters_from_figure8()
        model = AreaModel(params)
        for (h, w, l, b), (_tops, f2) in FIGURE8_REFERENCE.items():
            spec = ACIMDesignSpec(h, w, l, b)
            assert model.area_per_bit_f2(spec) == pytest.approx(f2, rel=0.01)

    def test_derived_constants_match_defaults(self):
        params = derive_area_parameters_from_figure8()
        defaults = AreaModel().parameters
        assert params.a_sram == pytest.approx(defaults.a_sram, rel=0.01)
        assert params.a_local_compute == pytest.approx(defaults.a_local_compute, rel=0.01)
        lumped_fit = params.a_comparator + 3 * params.a_dff
        lumped_default = defaults.a_comparator + 3 * defaults.a_dff
        assert lumped_fit == pytest.approx(lumped_default, rel=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(CalibrationError):
            derive_area_parameters_from_figure8(comparator_fraction=1.5)


class TestCycleTimeCalibration:
    def test_cycle_time_close_to_default_timing(self):
        implied = calibrate_cycle_time_from_figure8()
        assert implied == pytest.approx(5.0e-9, rel=0.05)


class TestSnrCalibration:
    def test_fit_produces_positive_constants(self):
        k3, k4, rms = fit_snr_constants()
        assert k3 > 0
        assert rms >= 0

    def test_fitted_simplified_model_tracks_full_model(self):
        params = SnrParameters()
        k3, k4, rms = fit_snr_constants(snr_parameters=params)
        fitted = SnrParameters(
            unit_capacitance=params.unit_capacitance,
            cap_mismatch_kappa=params.cap_mismatch_kappa,
            k3=k3, k4=k4,
        )
        model = SnrModel(fitted)
        errors = []
        for bits in (2, 3, 4, 5):
            for n in (8, 16, 32, 64, 128):
                if n < 2 ** bits:
                    continue
                errors.append(abs(
                    model.simplified_snr_db(bits, n) - model.design_snr_db(bits, n)))
        assert sum(errors) / len(errors) < 3.0

    def test_k4_reflects_workload_crest_factors(self):
        workload = WorkloadStatistics.binary()
        _k3, k4, _rms = fit_snr_constants(workload=workload)
        assert k4 == pytest.approx(4.8 - workload.zeta_x_db - workload.zeta_w_db)

    def test_empty_grid_rejected(self):
        with pytest.raises(CalibrationError):
            fit_snr_constants(adc_bits_range=[8], local_arrays_range=[4])


class TestAdcEnergyCalibration:
    def test_fit_from_behavioral_model(self):
        k1, k2, rel_rms = fit_adc_energy_constants()
        assert k1 > 0 and k2 > 0
        assert rel_rms < 0.35

    def test_fitted_constants_in_default_ballpark(self):
        k1, k2, _ = fit_adc_energy_constants()
        defaults = EnergyParameters()
        assert math.log10(k1) == pytest.approx(math.log10(defaults.k1), abs=0.5)
        assert math.log10(k2) == pytest.approx(math.log10(defaults.k2), abs=0.5)

    def test_fit_from_explicit_samples(self):
        vdd = 0.9
        true_k1, true_k2 = 2.0e-15, 0.1e-15
        samples = {
            bits: true_k1 * (bits + math.log2(vdd)) + true_k2 * 4 ** bits * vdd ** 2
            for bits in range(2, 9)
        }
        k1, k2, rel_rms = fit_adc_energy_constants(samples, vdd=vdd)
        assert k1 == pytest.approx(true_k1, rel=1e-6)
        assert k2 == pytest.approx(true_k2, rel=1e-6)
        assert rel_rms < 1e-9

    def test_behavioral_energy_monotonic_in_bits(self):
        energies = [sar_adc_energy(bits) for bits in range(2, 9)]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_invalid_samples_rejected(self):
        with pytest.raises(CalibrationError):
            fit_adc_energy_constants({3: -1.0, 4: 1.0})
        with pytest.raises(CalibrationError):
            fit_adc_energy_constants({4: 1.0e-15})
