"""Unit tests for application mapping/evaluation and the SOTA references."""

import pytest

from repro.errors import ReproError
from repro.arch.spec import ACIMDesignSpec
from repro.apps import (
    ApplicationEvaluator,
    ArrayMapper,
    LayerKind,
    NetworkLayer,
    NetworkModel,
    example_cnn,
    example_snn,
    example_transformer,
)
from repro.dse.exhaustive import exhaustive_pareto_front
from repro.sota import SOTA_DESIGNS, compare_with_design_space, design_by_label


class TestNetworks:
    def test_example_networks_have_layers(self):
        for network in (example_cnn(), example_transformer(), example_snn()):
            assert network.layers
            assert network.total_macs > 0
            assert network.total_weights > 0

    def test_transformer_needs_more_snr_than_snn(self):
        assert example_transformer().min_snr_db > example_snn().min_snr_db

    def test_layer_mac_count(self):
        layer = NetworkLayer("fc", LayerKind.FULLY_CONNECTED, input_length=100,
                             output_count=10, vectors_per_inference=2)
        assert layer.macs_per_inference == 2000
        assert layer.weight_count == 1000

    def test_invalid_layer(self):
        with pytest.raises(ReproError):
            NetworkLayer("bad", LayerKind.FULLY_CONNECTED, input_length=0, output_count=1)


class TestMapping:
    SPEC = ACIMDesignSpec(128, 128, 8, 3)

    def test_layer_that_fits_one_tile(self):
        mapper = ArrayMapper(self.SPEC)
        layer = NetworkLayer("small", LayerKind.FULLY_CONNECTED, input_length=16,
                             output_count=64, vectors_per_inference=1)
        mapping = mapper.map_layer(layer)
        assert mapping.row_tiles == 1
        assert mapping.column_tiles == 1
        assert mapping.cycles_per_inference == 1
        assert mapping.digital_accumulations == 1

    def test_long_accumulation_needs_row_tiles(self):
        mapper = ArrayMapper(self.SPEC)
        layer = NetworkLayer("long", LayerKind.FULLY_CONNECTED, input_length=256,
                             output_count=16, vectors_per_inference=1)
        mapping = mapper.map_layer(layer)
        assert mapping.row_tiles == 16
        assert mapping.digital_accumulations == 16

    def test_wide_layer_needs_column_tiles(self):
        mapper = ArrayMapper(self.SPEC)
        layer = NetworkLayer("wide", LayerKind.FULLY_CONNECTED, input_length=16,
                             output_count=300, vectors_per_inference=1)
        assert mapper.map_layer(layer).column_tiles == 3

    def test_network_mapping_totals(self):
        report = ArrayMapper(self.SPEC).map_network(example_cnn())
        assert report.total_cycles >= sum(
            layer.vectors_per_inference for layer in example_cnn().layers)
        assert 0 < report.mean_utilization <= 1.0

    def test_utilization_bounded(self):
        report = ArrayMapper(self.SPEC).map_network(example_transformer())
        assert 0 < report.mean_utilization <= 1.0

    def test_empty_network_rejected(self):
        with pytest.raises(ReproError):
            ArrayMapper(self.SPEC).map_network(NetworkModel("empty"))


class TestApplicationEvaluator:
    def test_evaluation_produces_positive_metrics(self):
        result = ApplicationEvaluator().evaluate(
            ACIMDesignSpec(128, 128, 8, 3), example_cnn())
        assert result.latency_seconds > 0
        assert result.energy_per_inference > 0
        assert result.inferences_per_second > 0

    def test_transformer_requires_higher_precision_macro(self):
        evaluator = ApplicationEvaluator()
        low_precision = ACIMDesignSpec(512, 32, 4, 3)
        high_precision = ACIMDesignSpec(512, 32, 2, 7)
        transformer = example_transformer()
        low_result = evaluator.evaluate(low_precision, transformer)
        high_result = evaluator.evaluate(high_precision, transformer)
        assert high_result.effective_snr_db > low_result.effective_snr_db
        assert not low_result.meets_snr_requirement

    def test_snn_prefers_energy_over_snr(self):
        evaluator = ApplicationEvaluator()
        result = evaluator.evaluate(ACIMDesignSpec(512, 32, 16, 2), example_snn())
        assert result.energy_per_inference < 1e-6

    def test_digital_accumulation_penalty(self):
        evaluator = ApplicationEvaluator()
        spec = ACIMDesignSpec(128, 128, 8, 3)
        result = evaluator.evaluate(spec, example_transformer())
        assert result.effective_snr_db < result.macro_metrics.snr_db

    def test_result_dictionary(self):
        result = ApplicationEvaluator().evaluate(
            ACIMDesignSpec(128, 128, 8, 3), example_cnn())
        record = result.as_dict()
        assert record["network"] == "edge_cnn"
        assert record["H"] == 128

    def test_pareto_set_contains_a_point_per_scenario(self):
        # The motivation of the paper: one Pareto set serves different
        # applications; verify at least one solution meets each scenario's
        # SNR requirement for a 16 kb array.
        evaluator = ApplicationEvaluator()
        designs = exhaustive_pareto_front(16384)
        for network in (example_cnn(), example_snn()):
            results = [evaluator.evaluate(d.spec, network) for d in designs[:80]]
            assert any(r.meets_snr_requirement for r in results), network.name


class TestSotaReferences:
    def test_three_reference_designs(self):
        assert len(SOTA_DESIGNS) == 3
        assert {d.label for d in SOTA_DESIGNS} == {"A", "B", "C"}

    def test_lookup_by_label(self):
        assert design_by_label("A").technology_nm == 28
        with pytest.raises(ReproError):
            design_by_label("Z")

    def test_reference_values_in_paper_ranges(self):
        # The paper's claimed EasyACIM ranges bracket the SOTA points.
        for design in SOTA_DESIGNS:
            assert 50 <= design.energy_efficiency_tops_w <= 750
            assert 1500 <= design.area_f2_per_bit <= 7500

    def test_comparison_report_structure(self):
        designs = exhaustive_pareto_front(16384)
        report = compare_with_design_space(designs)
        assert set(report) == {"A", "B", "C"}
        for entry in report.values():
            assert "solutions_with_better_efficiency" in entry
            assert entry["reference"]["tops_per_watt"] > 0

    def test_design_space_covers_every_reference(self):
        # Figure 10's claim: the generated space reaches both better-than-
        # reference efficiency and better-than-reference area (on separate
        # solutions at least).
        designs = exhaustive_pareto_front(16384)
        report = compare_with_design_space(designs)
        assert all(entry["covered"] for entry in report.values())
