"""Unit tests for the end-to-end flow (netlist gen, layout gen, controller, baselines)."""

import pytest

from repro.errors import FlowError
from repro.arch.spec import ACIMDesignSpec
from repro.dse.distill import DistillationCriteria
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front
from repro.flow import (
    AutoDCIMBaselineFlow,
    FlowInputs,
    LayoutGenerator,
    TemplateNetlistGenerator,
    TraditionalManualFlow,
    design_table,
    flow_comparison_table,
    format_table,
    pareto_summary,
    solution_report,
)
from repro.flow.controller import _FlowCore
from repro.flow.report import csv_lines
from repro.netlist.traversal import count_leaf_instances, hierarchy_depth


FAST_NSGA2 = NSGA2Config(population_size=24, generations=10, seed=3)


class TestNetlistGenerator:
    def test_macro_netlist_validates(self, cell_library, small_spec):
        generator = TemplateNetlistGenerator(cell_library)
        macro = generator.generate(small_spec)
        macro.validate()

    def test_leaf_counts_match_architecture(self, cell_library, small_spec):
        generator = TemplateNetlistGenerator(cell_library)
        macro = generator.generate(small_spec)
        counts = count_leaf_instances(macro)
        expected = generator.expected_instance_counts(small_spec)
        for key in ("sram8t", "local_compute", "comparator", "sar_dff",
                    "input_buffer", "output_buffer"):
            assert counts[key] == expected[key], key

    def test_hierarchy_depth_is_four(self, cell_library, small_spec):
        # macro -> column -> local array / SAR controller -> leaf cells.
        macro = TemplateNetlistGenerator(cell_library).generate(small_spec)
        assert hierarchy_depth(macro) == 4

    def test_macro_pins_scale_with_dimensions(self, cell_library, small_spec):
        macro = TemplateNetlistGenerator(cell_library).generate(small_spec)
        pins = {pin.name for pin in macro.pins}
        assert f"XIN{small_spec.height - 1}" in pins
        assert f"DOUT{small_spec.width - 1}" in pins

    def test_spice_export_of_macro(self, cell_library, small_spec):
        from repro.netlist.spice import write_spice

        macro = TemplateNetlistGenerator(cell_library).generate(small_spec)
        text = write_spice(macro)
        assert ".SUBCKT sram8t" in text
        assert macro.name in text

    def test_different_specs_give_different_column_circuits(self, cell_library):
        generator = TemplateNetlistGenerator(cell_library)
        a = generator.generate(ACIMDesignSpec(16, 4, 4, 2))
        b = generator.generate(ACIMDesignSpec(32, 2, 4, 3))
        assert a.name != b.name
        counts_a = count_leaf_instances(a)
        counts_b = count_leaf_instances(b)
        assert counts_a["sar_dff"] != counts_b["sar_dff"]

    def test_infeasible_spec_rejected(self, cell_library):
        generator = TemplateNetlistGenerator(cell_library)
        with pytest.raises(Exception):
            generator.generate(ACIMDesignSpec(8, 8, 8, 4))


class TestLayoutGenerator:
    def test_small_macro_layout(self, cell_library, small_spec):
        generator = LayoutGenerator(cell_library)
        report = generator.generate(small_spec, route_column=True)
        assert report.width_um > 0 and report.height_um > 0
        assert report.failed_nets == 0
        assert report.routed_nets >= 3
        assert report.layout.instance_count() >= small_spec.width

    def test_layout_area_tracks_area_model(self, cell_library, small_spec, estimator):
        report = LayoutGenerator(cell_library).generate(small_spec, route_column=False)
        modelled = estimator.area_model.area_per_bit_f2(small_spec)
        # The layout adds peripheral buffers, so it is a bit bigger but in
        # the same range as the Equation-10 model.
        assert report.area_f2_per_bit == pytest.approx(modelled, rel=0.35)
        assert report.area_f2_per_bit >= modelled

    def test_gds_and_def_export(self, cell_library, small_spec, tmp_path, technology):
        from repro.layout.gdsii import read_gds

        report = LayoutGenerator(cell_library).generate(
            small_spec, route_column=False, export=True, output_dir=str(tmp_path))
        assert report.gds_path and report.def_path
        cells = read_gds(report.gds_path, technology)
        assert report.layout.name in cells

    def test_larger_l_gives_smaller_layout(self, cell_library):
        generator = LayoutGenerator(cell_library)
        small_l = generator.generate(ACIMDesignSpec(32, 4, 2, 2), route_column=False)
        large_l = generator.generate(ACIMDesignSpec(32, 4, 8, 2), route_column=False)
        assert large_l.area_um2 < small_l.area_um2

    def test_report_dictionary(self, cell_library, small_spec):
        report = LayoutGenerator(cell_library).generate(small_spec, route_column=False)
        record = report.as_dict()
        assert record["H"] == small_spec.height
        assert record["failed_nets"] == 0


class TestBaselines:
    def test_comparison_table_matches_paper_table2(self):
        table = {entry.name: entry for entry in flow_comparison_table()}
        assert table["Traditional Flow"].layout_design == "Manual"
        assert table["AutoDCIM-style"].design_type == "Digital"
        assert table["AutoDCIM-style"].parameter_determination == "User-defined"
        assert table["EasyACIM"].design_type == "Analog"
        assert table["EasyACIM"].design_space == "Pareto frontier"
        assert table["EasyACIM"].parameter_determination == "Automatic"

    def test_traditional_flow_single_feasible_point(self):
        flow = TraditionalManualFlow()
        points = flow.design_points(16384)
        assert len(points) == 1
        assert points[0].is_feasible(16384)

    def test_autodcim_baseline_evaluates_user_specs(self):
        baseline = AutoDCIMBaselineFlow()
        designs = baseline.run(16384)
        assert designs
        assert all(d.spec.is_feasible(16384) for d in designs)

    def test_autodcim_baseline_rejects_infeasible_user_spec(self):
        baseline = AutoDCIMBaselineFlow()
        with pytest.raises(FlowError):
            baseline.run(16384, user_specs=[ACIMDesignSpec(64, 64, 8, 3)])

    def test_autodcim_pareto_efficiency_below_explorer(self):
        baseline = AutoDCIMBaselineFlow()
        user_specs = [
            ACIMDesignSpec(128, 32, 4, 3),
            ACIMDesignSpec(128, 32, 4, 2),
            ACIMDesignSpec(64, 64, 4, 3),
            ACIMDesignSpec(64, 64, 8, 3),
            ACIMDesignSpec(32, 128, 8, 2),
        ]
        designs = baseline.run(4096, user_specs=user_specs)
        efficiency = baseline.pareto_efficiency(designs)
        assert 0.0 < efficiency <= 1.0


class TestReportHelpers:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        assert "a" in text.splitlines()[0]
        assert len(text.splitlines()) == 4

    def test_format_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_design_table_and_summary(self):
        from repro.dse.exhaustive import exhaustive_pareto_front

        designs = exhaustive_pareto_front(1024)
        rows = design_table(designs)
        assert len(rows) == len(designs)
        summary = pareto_summary(designs)
        assert summary["solutions"] == len(designs)
        assert summary["snr_db_min"] <= summary["snr_db_max"]

    def test_solution_report_mentions_metrics(self):
        from repro.dse.exhaustive import exhaustive_pareto_front

        design = exhaustive_pareto_front(1024)[0]
        text = solution_report(design)
        assert "SNR" in text and "TOPS" in text

    def test_csv_lines(self):
        rows = [{"a": 1.0, "b": 2.0}]
        lines = csv_lines(rows)
        assert lines[0] == "a,b"
        assert len(lines) == 2


class TestFlowCore:
    def test_flow_runs_end_to_end_without_layouts(self):
        flow = _FlowCore(FlowInputs(array_size=1024, nsga2=FAST_NSGA2))
        result = flow.run(generate_layouts=False)
        assert result.exploration.pareto_set
        assert result.distilled
        assert result.netlists
        assert result.runtime_seconds > 0
        assert "Pareto-frontier solutions" in result.summary()

    def test_flow_with_layouts_for_small_array(self):
        flow = _FlowCore(FlowInputs(array_size=256, nsga2=FAST_NSGA2, max_layouts=1))
        result = flow.run(generate_layouts=True, route_columns=False)
        assert len(result.layouts) == 1
        report = next(iter(result.layouts.values()))
        assert report.area_um2 > 0

    def test_distillation_criteria_applied(self):
        criteria = DistillationCriteria(min_snr_db=15.0, name="strict")
        flow = _FlowCore(FlowInputs(array_size=1024, nsga2=FAST_NSGA2,
                                       criteria=criteria))
        exploration = flow.explore()
        distilled = flow.distill(exploration)
        assert all(d.metrics.snr_db >= 15.0 for d in distilled) or \
            len(distilled) == len(exploration.pareto_set)

    def test_flow_rejects_tiny_arrays(self):
        with pytest.raises(FlowError):
            _FlowCore(FlowInputs(array_size=8))

    def test_flow_netlists_match_selected_specs(self):
        flow = _FlowCore(FlowInputs(array_size=1024, nsga2=FAST_NSGA2,
                                       max_layouts=2))
        result = flow.run(generate_layouts=False)
        for key, netlist in result.netlists.items():
            assert netlist.name.startswith("easyacim_1024b")
            assert key in {d.spec.as_tuple() for d in result.distilled}

    def test_flow_surfaces_engine_stats(self):
        flow = _FlowCore(FlowInputs(array_size=1024, nsga2=FAST_NSGA2))
        result = flow.run(generate_layouts=False)
        assert result.engine_stats["backend"] == "serial"
        assert result.engine_stats["tasks"] > 0
        assert "engine" in result.summary()

    def test_flow_honors_nsga2_backend_choice(self):
        # Parallelism configured only on the optimizer config must drive
        # the whole flow, not be silently ignored.
        import dataclasses

        nsga2 = dataclasses.replace(FAST_NSGA2, backend="thread", workers=2)
        flow = _FlowCore(FlowInputs(array_size=1024, nsga2=nsga2))
        assert flow.engine.backend == "thread"
        assert flow.engine.workers == 2
        result = flow.run(generate_layouts=False)
        assert result.engine_stats["backend"] == "thread"

    def test_flow_parallel_fanout_matches_serial(self):
        # The serial flow runs the reuse-aware pipeline path; the parallel
        # flow runs the flat reuse-off engine fan-out — their products must
        # agree, which cross-checks the reuse path against the baseline.
        serial = _FlowCore(FlowInputs(
            array_size=256, nsga2=FAST_NSGA2, max_layouts=2))
        with _FlowCore(FlowInputs(
                array_size=256, nsga2=FAST_NSGA2, max_layouts=2,
                backend="process", workers=2, reuse="off")) as parallel:
            serial_result = serial.run(generate_layouts=True,
                                       route_columns=False)
            parallel_result = parallel.run(generate_layouts=True,
                                           route_columns=False)
        assert parallel_result.engine_stats["backend"] == "process"
        assert set(parallel_result.netlists) == set(serial_result.netlists)
        assert set(parallel_result.layouts) == set(serial_result.layouts)
        for key, report in parallel_result.layouts.items():
            assert report.area_um2 == serial_result.layouts[key].area_um2
