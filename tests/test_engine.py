"""Tests of the unified evaluation engine (cache, backends, determinism)."""

import pytest

from repro.arch.spec import ACIMDesignSpec, enumerate_design_space
from repro.dse.exhaustive import evaluate_all
from repro.dse.explorer import _ExplorerCore
from repro.dse.nsga2 import NSGA2Config
from repro.engine import (
    BACKENDS,
    EvaluationCache,
    EvaluationEngine,
    parameters_cache_key,
    spec_cache_key,
    validate_backend,
)
from repro.errors import EngineError, OptimizationError
from repro.model.estimator import ACIMEstimator, ModelParameters


class TestEvaluationCache:
    def test_miss_then_hit(self):
        cache = EvaluationCache(max_size=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_bounded_lru_eviction(self):
        cache = EvaluationCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh recency: "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(EngineError):
            EvaluationCache(max_size=0)

    def test_parameter_keys_distinguish_bundles(self):
        base = ModelParameters()
        calibrated = ModelParameters.calibrated()
        assert parameters_cache_key(base) != parameters_cache_key(calibrated)
        spec = ACIMDesignSpec(64, 16, 2, 4)
        assert spec_cache_key(spec, base) != spec_cache_key(spec, calibrated)


class TestEvaluationEngine:
    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError):
            EvaluationEngine("gpu")
        with pytest.raises(EngineError):
            validate_backend("cluster")

    def test_map_preserves_order(self):
        for backend in ("serial", "thread"):
            with EvaluationEngine(backend, workers=2) as engine:
                assert engine.map(_square, list(range(20))) == [
                    i * i for i in range(20)
                ]

    def test_map_preserves_order_process(self):
        with EvaluationEngine("process", workers=2) as engine:
            assert engine.map(_square, list(range(20))) == [
                i * i for i in range(20)
            ]

    def test_evaluate_specs_matches_serial_evaluate(self):
        estimator = ACIMEstimator()
        specs = list(enumerate_design_space(1024))
        expected = [estimator.evaluate(spec) for spec in specs]
        for backend in BACKENDS:
            engine = EvaluationEngine(
                backend, workers=2, cache=EvaluationCache()
            )
            with engine:
                got = engine.evaluate_specs(estimator, specs)
            # The scalar fast path and the vectorized batch path agree
            # within the documented 1e-12 parity bound (transcendental
            # ufuncs may differ from ``math`` by a few ULP).
            for got_metrics, expected_metrics in zip(got, expected):
                _assert_metrics_close(got_metrics, expected_metrics, backend)

    def test_cache_hits_on_repeat_batches(self):
        engine = EvaluationEngine("serial", cache=EvaluationCache())
        estimator = ACIMEstimator()
        specs = list(enumerate_design_space(1024))
        engine.evaluate_specs(estimator, specs)
        first_evals = engine.stats.evaluations
        engine.evaluate_specs(estimator, specs)
        assert engine.stats.evaluations == first_evals
        assert engine.stats.cache_hits == len(specs)

    def test_duplicate_specs_evaluated_once(self):
        engine = EvaluationEngine("serial", cache=EvaluationCache())
        estimator = ACIMEstimator()
        spec = ACIMDesignSpec(64, 16, 2, 4)
        results = engine.evaluate_specs(estimator, [spec, spec, spec])
        assert results[0] == results[1] == results[2]
        assert engine.stats.evaluations == 1

    def test_stats_as_dict(self):
        engine = EvaluationEngine("serial", cache=EvaluationCache())
        engine.evaluate_specs(ACIMEstimator(), [ACIMDesignSpec(64, 16, 2, 4)])
        stats = engine.stats.as_dict()
        assert stats["backend"] == "serial"
        assert stats["evaluations"] == 1
        assert stats["busy_seconds"] > 0


class TestEstimatorBatch:
    def test_batch_equals_individual_evaluations(self):
        estimator = ACIMEstimator(ModelParameters.calibrated())
        specs = list(enumerate_design_space(4096))
        batch = estimator.evaluate_batch(specs)
        for spec, metrics in zip(specs, batch):
            _assert_metrics_close(metrics, estimator.evaluate(spec))

    def test_batch_with_full_snr_model(self):
        params = ModelParameters(use_simplified_snr=False)
        estimator = ACIMEstimator(params)
        specs = list(enumerate_design_space(1024))
        batch = estimator.evaluate_batch(specs)
        for spec, metrics in zip(specs, batch):
            _assert_metrics_close(metrics, estimator.evaluate(spec))


class TestExhaustiveThroughEngine:
    def test_evaluate_all_identical_across_backends(self):
        serial = evaluate_all(4096)
        for backend in ("thread", "process"):
            with EvaluationEngine(
                backend, workers=2, cache=EvaluationCache()
            ) as engine:
                parallel = evaluate_all(4096, engine=engine)
            assert [d.spec for d in parallel] == [d.spec for d in serial]
            assert [d.objectives for d in parallel] == [
                d.objectives for d in serial
            ]


class TestSeedDeterminismAcrossBackends:
    """The ISSUE's regression: same seed => identical Pareto set, any backend."""

    def test_serial_and_process_backends_agree(self):
        pareto_sets = {}
        for backend in ("serial", "process"):
            config = NSGA2Config(
                population_size=28, generations=10, seed=11,
                backend=backend, workers=2,
            )
            # A private cache per run so the comparison is between actual
            # computations, not a warm shared cache.
            engine = EvaluationEngine(
                backend, workers=2, cache=EvaluationCache()
            )
            with engine:
                explorer = _ExplorerCore(config=config, engine=engine)
                result = explorer.explore(4096)
            pareto_sets[backend] = {
                (design.spec.as_tuple(), design.objectives)
                for design in result.pareto_set
            }
        assert pareto_sets["serial"] == pareto_sets["process"]

    def test_vectorized_and_reference_kernels_agree_bit_identically(self):
        """The ISSUE 3 regression: the array-kernel refactor leaves a
        fixed-seed NSGA-II Pareto front bit-identical to the retained
        scalar-reference path (the pre-refactor implementation)."""
        pareto_sets = {}
        for kernel in ("reference", "vectorized"):
            config = NSGA2Config(population_size=28, generations=10, seed=11)
            estimator = ACIMEstimator(kernel=kernel)
            # A private cache per run so the two kernels cannot serve each
            # other's evaluations.
            engine = EvaluationEngine("serial", cache=EvaluationCache())
            with engine:
                explorer = _ExplorerCore(
                    estimator=estimator, config=config, engine=engine
                )
                result = explorer.explore(4096)
            pareto_sets[kernel] = [
                (design.spec.as_tuple(), design.objectives)
                for design in result.pareto_set
            ]
        assert pareto_sets["vectorized"] == pareto_sets["reference"]

    def test_engine_stats_surface_in_result(self):
        config = NSGA2Config(population_size=16, generations=4, seed=2)
        result = _ExplorerCore(config=config).explore(1024)
        assert result.engine_stats["backend"] == "serial"
        assert result.engine_stats["tasks"] > 0

    def test_engine_stats_are_per_run_deltas(self):
        config = NSGA2Config(population_size=16, generations=4, seed=2)
        with EvaluationEngine("serial", cache=EvaluationCache()) as engine:
            explorer = _ExplorerCore(config=config, engine=engine)
            first = explorer.explore(1024)
            second = explorer.explore(1024)
        # Identical seeded runs submit the identical number of tasks; a
        # cumulative (non-delta) snapshot would double on the second run.
        assert second.engine_stats["tasks"] == first.engine_stats["tasks"]
        # The second run is fully served by the engine's warm cache.
        assert second.engine_stats["evaluations"] == 0
        assert second.engine_stats["cache_hits"] > 0

    def test_invalid_backend_in_config(self):
        with pytest.raises(EngineError):
            NSGA2Config(backend="gpu")
        with pytest.raises(OptimizationError):
            NSGA2Config(workers=0)


def _square(value: int) -> int:
    return value * value


def _assert_metrics_close(got, expected, context=""):
    """Metrics records agree on the spec and within 1e-12 on every metric."""
    from repro.model.estimator import METRIC_FIELDS

    assert got.spec == expected.spec, context
    for field in METRIC_FIELDS:
        assert getattr(got, field) == pytest.approx(
            getattr(expected, field), rel=1e-12, abs=0.0
        ), (field, context)
