"""Unit tests for parasitic extraction and model back-annotation."""

import pytest

from repro.errors import LayoutError, ModelError
from repro.arch.spec import ACIMDesignSpec
from repro.flow.layout_gen import LayoutGenerator
from repro.layout.extraction import ParasiticExtractor
from repro.layout.geometry import Rect
from repro.layout.layout import LayoutCell
from repro.model.backannotate import BackAnnotator
from repro.model.estimator import ACIMEstimator


class TestParasiticExtractor:
    def _cell_with_wires(self):
        cell = LayoutCell("wires", boundary=Rect(0, 0, 20_000, 20_000))
        # 10 um of M2 (vertical) and 5 um of M3 (horizontal) on net "sig".
        cell.add_shape("M2", Rect(1000, 1000, 1100, 11_000), net="sig")
        cell.add_shape("M3", Rect(1000, 11_000, 6000, 11_100), net="sig")
        cell.add_shape("VIA2", Rect(1020, 10_980, 1070, 11_030), net="sig")
        # An unrelated power stripe.
        cell.add_shape("M5", Rect(0, 15_000, 20_000, 15_200), net="VDD")
        # Anonymous fill must be ignored.
        cell.add_shape("M1", Rect(0, 0, 500, 100))
        return cell

    def test_extracts_wirelength_per_net(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        assert set(report.nets) == {"sig", "VDD"}
        sig = report.net("sig")
        assert sig.wirelength_um == pytest.approx(15.0, rel=0.01)
        assert sig.segments_per_layer["M2"] == pytest.approx(10.0, rel=0.01)
        assert sig.via_count == 1

    def test_capacitance_uses_layer_constants(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        sig = report.net("sig")
        m2 = technology.layer("M2")
        m3 = technology.layer("M3")
        expected = 10.0 * m2.capacitance_per_um + 5.0 * m3.capacitance_per_um
        assert sig.capacitance == pytest.approx(expected, rel=0.01)

    def test_resistance_includes_via(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        sig = report.net("sig")
        via = technology.via("VIA23")
        assert sig.resistance > via.resistance

    def test_net_filter(self, technology):
        report = ParasiticExtractor(technology).extract(
            self._cell_with_wires(), nets=["VDD"])
        assert set(report.nets) == {"VDD"}

    def test_time_constant_positive(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        assert report.net("sig").time_constant(1e-15) > 0

    def test_unknown_net_raises(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        with pytest.raises(LayoutError):
            report.net("nope")

    def test_worst_net(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        assert report.worst_net() is not None
        assert ParasiticExtractor(technology).extract(
            LayoutCell("empty", boundary=Rect(0, 0, 10, 10))).worst_net() is None

    def test_totals(self, technology):
        report = ParasiticExtractor(technology).extract(self._cell_with_wires())
        assert report.total_wirelength_um == pytest.approx(
            sum(n.wirelength_um for n in report.nets.values()))
        assert report.total_capacitance > 0


class TestBackAnnotation:
    @pytest.fixture(scope="class")
    def annotated(self, cell_library, technology):
        spec = ACIMDesignSpec(64, 4, 4, 3)
        report = LayoutGenerator(cell_library).generate(spec, route_column=True)
        annotator = BackAnnotator(technology)
        return annotator.annotate(spec, report.layout)

    def test_rbl_parasitics_extracted(self, annotated):
        assert "RBL" in annotated.parasitics.nets
        assert annotated.parasitics.net("RBL").wirelength_um > 10.0

    def test_time_constant_not_smaller_than_pre_layout(self, annotated):
        assert annotated.tau_post >= annotated.tau_pre

    def test_wire_energy_is_small_but_positive(self, annotated):
        assert annotated.wire_energy_per_mac > 0
        # Wire energy must stay a small fraction of the compute energy.
        assert annotated.wire_energy_per_mac < 5e-15

    def test_refined_model_changes_are_modest(self, annotated):
        assert 0.0 <= annotated.cycle_time_change < 0.5
        assert 0.0 <= annotated.energy_change < 0.5

    def test_post_layout_parameters_usable(self, annotated):
        metrics = ACIMEstimator(annotated.post_layout).evaluate(annotated.spec)
        assert metrics.tops > 0

    def test_unrouted_layout_rejected(self, cell_library, technology):
        spec = ACIMDesignSpec(64, 4, 4, 3)
        report = LayoutGenerator(cell_library).generate(spec, route_column=False)
        with pytest.raises(ModelError):
            BackAnnotator(technology).annotate(spec, report.layout)
