"""Tests of resumable campaigns: checkpointing, kill/resume bit-identity,
warm starts from the persistent store, flow recording and the CLI."""

import json

import pytest

from repro.cli import main
from repro.dse.distill import DistillationCriteria
from repro.dse.explorer import _ExplorerCore
from repro.dse.nsga2 import NSGA2, NSGA2Config
from repro.dse.problem import ACIMDesignProblem
from repro.engine import reset_shared_cache
from repro.errors import OptimizationError, StoreError
from repro.flow.controller import FlowInputs, _FlowCore
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.store import ResultStore
from repro.store.campaign import _CampaignManagerCore

#: Small-but-real exploration: a few generations over the 1 kb space.
CONFIG = NSGA2Config(population_size=16, generations=6, seed=3)

ARRAY_SIZE = 1024


def _pareto_signature(designs):
    return [(design.spec.as_tuple(), design.objectives) for design in designs]


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store.sqlite") as store:
        yield store


@pytest.fixture(scope="module")
def reference_pareto():
    """The uninterrupted exploration every resume variant must reproduce."""
    result = _ExplorerCore(config=CONFIG).explore(ARRAY_SIZE)
    return _pareto_signature(result.pareto_set)


class TestStepwiseNSGA2:
    def test_run_equals_manual_stepping(self):
        monolithic = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG).run()
        stepped = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG)
        stepped.initialize()
        while not stepped.done:
            stepped.step()
        assert _population_signature(monolithic) == _population_signature(
            stepped.result()
        )

    def test_state_round_trips_through_json(self):
        optimizer = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG)
        optimizer.initialize()
        optimizer.step()
        snapshot = json.loads(json.dumps(optimizer.state()))
        restored = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG)
        restored.restore_state(snapshot)
        while not optimizer.done:
            optimizer.step()
        while not restored.done:
            restored.step()
        assert _population_signature(optimizer.result()) == (
            _population_signature(restored.result())
        )

    def test_step_before_initialize_rejected(self):
        optimizer = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG)
        with pytest.raises(OptimizationError):
            optimizer.step()
        with pytest.raises(OptimizationError):
            optimizer.state()

    def test_corrupt_state_rejected(self):
        optimizer = NSGA2(ACIMDesignProblem(ARRAY_SIZE), CONFIG)
        with pytest.raises(OptimizationError):
            optimizer.restore_state({"generation": 1})


def _population_signature(population):
    return sorted(
        (individual.genome, individual.objectives, individual.violation)
        for individual in population
    )


class TestCampaignResume:
    def test_interrupted_resume_is_bit_identical(self, store, reference_pareto):
        manager = _CampaignManagerCore(store)
        first = manager.run(
            "camp", ARRAY_SIZE, config=CONFIG, stop_after_generations=2
        )
        assert first.status == "interrupted"
        assert first.generations_done == 2
        assert store.get_campaign("camp").status == "interrupted"
        second = manager.resume("camp")
        assert second.status == "completed"
        assert second.resumed
        assert _pareto_signature(second.pareto_set) == reference_pareto
        # The recorded Pareto set reads back identically.
        stored = store.load_pareto("camp")
        assert [
            (e.spec.as_tuple(), e.metrics.objectives()) for e in stored
        ] == reference_pareto

    def test_kill_mid_generation_resumes_identically(
        self, store, reference_pareto, monkeypatch
    ):
        # A cold shared cache so the estimator actually runs (the kill is
        # injected into its batch evaluation path).
        reset_shared_cache()
        manager = _CampaignManagerCore(store)
        calls = {"count": 0}
        original = ACIMEstimator.evaluate_batch

        def dying_evaluate_batch(self, specs):
            calls["count"] += 1
            if calls["count"] == 4:  # partway through a later generation
                raise KeyboardInterrupt("simulated kill -9")
            return original(self, specs)

        monkeypatch.setattr(
            ACIMEstimator, "evaluate_batch", dying_evaluate_batch
        )
        with pytest.raises(KeyboardInterrupt):
            manager.run("killed", ARRAY_SIZE, config=CONFIG)
        monkeypatch.setattr(ACIMEstimator, "evaluate_batch", original)
        # The partial generation was never committed; resume replays from
        # the last durable checkpoint and lands on the identical front.
        assert store.latest_checkpoint("killed") is not None
        result = _CampaignManagerCore(store).resume("killed")
        assert result.status == "completed"
        assert _pareto_signature(result.pareto_set) == reference_pareto

    def test_checkpoint_cadence(self, store):
        manager = _CampaignManagerCore(store, checkpoint_every=3)
        manager.run("sparse", ARRAY_SIZE, config=CONFIG)
        # Generation 0 (initialization), 3 and 6 (final, forced).
        assert store.checkpoint_count("sparse") == 3
        with pytest.raises(StoreError):
            _CampaignManagerCore(store, checkpoint_every=0)

    def test_stop_commits_checkpoint_and_cadence_survives_resume(self, store):
        manager = _CampaignManagerCore(store, checkpoint_every=3)
        manager.run(
            "sparse", ARRAY_SIZE, config=CONFIG, stop_after_generations=2
        )
        # The stop itself is durable even though 2 is off-cadence.
        assert store.latest_checkpoint("sparse")[0] == 2
        # A resume through a default-cadence manager keeps the campaign's
        # recorded checkpoint_every=3: generations 0, 2 (stop), 3 and 6.
        result = _CampaignManagerCore(store).resume("sparse")
        assert result.status == "completed"
        assert store.checkpoint_count("sparse") == 4

    def test_overlapping_campaign_hits_persistent_store(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            _CampaignManagerCore(store).run("first", ARRAY_SIZE, config=CONFIG)
        # A separate store handle (a fresh process's view of the file):
        # the second campaign's engine warm-starts from the first's work.
        with ResultStore(path) as store:
            result = _CampaignManagerCore(store).run(
                "second",
                ARRAY_SIZE,
                config=NSGA2Config(population_size=16, generations=3, seed=9),
            )
            assert result.engine_stats["store_hits"] > 0

    def test_duplicate_name_rejected(self, store):
        manager = _CampaignManagerCore(store)
        manager.run("camp", ARRAY_SIZE, config=CONFIG)
        with pytest.raises(StoreError, match="already exists"):
            manager.run("camp", ARRAY_SIZE, config=CONFIG)

    def test_resume_of_completed_campaign_rejected(self, store):
        manager = _CampaignManagerCore(store)
        manager.run("camp", ARRAY_SIZE, config=CONFIG)
        with pytest.raises(StoreError, match="already completed"):
            manager.resume("camp")

    def test_resume_unknown_campaign_rejected(self, store):
        with pytest.raises(StoreError, match="no campaign"):
            _CampaignManagerCore(store).resume("ghost")

    def test_resume_with_different_model_parameters_rejected(self, store):
        _CampaignManagerCore(store).run(
            "camp", ARRAY_SIZE, config=CONFIG, stop_after_generations=1
        )
        other = _CampaignManagerCore(
            store, estimator=ACIMEstimator(ModelParameters.calibrated())
        )
        with pytest.raises(StoreError, match="different model parameters"):
            other.resume("camp")

    def test_query_across_campaigns(self, store):
        manager = _CampaignManagerCore(store)
        manager.run("camp", ARRAY_SIZE, config=CONFIG)
        entries = manager.query(
            criteria=DistillationCriteria(min_snr_db=0.0),
            rank_by="snr_db",
        )
        assert entries
        assert all(e.metrics.snr_db >= 0.0 for e in entries)
        values = [e.metrics.snr_db for e in entries]
        assert values == sorted(values, reverse=True)


class TestShardedCampaign:
    def test_sharded_front_is_bit_identical(self, store, reference_pareto):
        # Pre-warming cannot change results: evaluation is pure and never
        # consumes optimiser RNG, so the sharded front matches the
        # uninterrupted serial run bit-for-bit.
        reset_shared_cache()
        result = _CampaignManagerCore(store).run(
            "sharded", ARRAY_SIZE, config=CONFIG, shards=2
        )
        assert result.status == "completed"
        assert _pareto_signature(result.pareto_set) == reference_pareto
        assert result.shard_stats["shards"] == 2
        # The shards committed exactly the feasible grid, and the
        # optimisation leg then ran on warm store hits.
        grid = ACIMDesignProblem(ARRAY_SIZE).feasible_batch()
        assert result.shard_stats["points"] == len(grid)
        assert len(store) == len(grid)
        assert result.engine_stats["store_hits"] > 0

    def test_sharded_store_rows_match_serial_full_grid(self, tmp_path):
        # The row-count equivalence behind `make shard-smoke`: a sharded
        # campaign leaves behind the same store rows as serially
        # evaluating the full feasible grid.
        reset_shared_cache()
        serial_path = tmp_path / "serial.sqlite"
        with ResultStore(serial_path) as serial_store:
            problem = ACIMDesignProblem(ARRAY_SIZE)
            from repro.engine import EvaluationCache, EvaluationEngine

            with EvaluationEngine(
                "serial", cache=EvaluationCache(), store=serial_store
            ) as engine:
                engine.evaluate_specs(
                    ACIMEstimator(), problem.feasible_batch()
                )
            serial_rows = len(serial_store)
        reset_shared_cache()
        with ResultStore(tmp_path / "sharded.sqlite") as sharded_store:
            _CampaignManagerCore(sharded_store).run(
                "smoke", ARRAY_SIZE, config=CONFIG, shards=2
            )
            assert len(sharded_store) == serial_rows

    def test_sharded_needs_file_backed_store(self):
        with ResultStore(":memory:") as store:
            with pytest.raises(StoreError, match="file-backed"):
                _CampaignManagerCore(store).run(
                    "mem", ARRAY_SIZE, config=CONFIG, shards=2
                )
            # The rejection happens before the campaign row is created.
            assert store.get_campaign("mem") is None

    def test_invalid_shard_count_rejected(self, store):
        with pytest.raises(StoreError, match="at least 1"):
            _CampaignManagerCore(store).run(
                "bad", ARRAY_SIZE, config=CONFIG, shards=0
            )

    def test_plan_shards_never_empty(self):
        from repro.dse.shard import plan_shards

        assert plan_shards(0, 4) == []
        assert plan_shards(2, 8) == [(0, 1), (1, 2)]
        ranges = plan_shards(220, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 220
        assert all(lo < hi for lo, hi in ranges)
        assert [lo for lo, _ in ranges[1:]] == [hi for _, hi in ranges[:-1]]


class TestFlowRecording:
    def test_flow_records_campaign_and_pareto(self, store):
        # Cold shared cache so the flow actually computes (and therefore
        # writes behind) rather than riding earlier tests' warm entries.
        reset_shared_cache()
        inputs = FlowInputs(
            array_size=ARRAY_SIZE, nsga2=CONFIG, store=store,
            campaign_name="flow-camp",
        )
        result = _FlowCore(inputs).run(
            generate_netlists=False, generate_layouts=False
        )
        record = store.get_campaign("flow-camp")
        assert record is not None and record.status == "completed"
        assert record.evaluations == result.exploration.evaluations
        assert result.engine_stats["store_writes"] > 0
        stored = store.load_pareto("flow-camp")
        assert [
            (e.spec.as_tuple(), e.metrics.objectives()) for e in stored
        ] == _pareto_signature(result.exploration.pareto_set)
        # Re-running the same flow upserts instead of failing.
        _FlowCore(inputs).run(
            generate_netlists=False, generate_layouts=False
        )
        assert len(store.list_campaigns()) == 1

    def test_flow_warm_starts_from_store(self, store):
        def run():
            return _FlowCore(
                FlowInputs(array_size=ARRAY_SIZE, nsga2=CONFIG, store=store)
            ).run(generate_netlists=False, generate_layouts=False)

        run()
        # The second flow builds a fresh engine; all its hits against the
        # hydrated entries are attributed to the store.
        assert run().engine_stats["store_hits"] > 0


class TestCampaignCli:
    def _args(self, tmp_path, *extra):
        return list(extra) + ["--store", str(tmp_path / "store.sqlite")]

    def test_run_interrupt_resume_query(self, tmp_path, capsys):
        base = [
            "campaign", "run", "demo",
            "--array-size", str(ARRAY_SIZE),
            "--population", "16", "--generations", "5", "--seed", "3",
            "--stop-after", "2", "--engine-stats",
        ]
        assert main(self._args(tmp_path, *base)) == 0
        output = capsys.readouterr().out
        assert "interrupted" in output
        assert "campaign resume demo" in output

        assert main(self._args(tmp_path, "campaign", "resume", "demo")) == 0
        output = capsys.readouterr().out
        assert "completed" in output

        assert main(self._args(tmp_path, "campaign", "list")) == 0
        output = capsys.readouterr().out
        assert "demo" in output and "completed" in output

        assert main(self._args(
            tmp_path, "campaign", "query", "--rank-by", "snr_db", "--limit", "3"
        )) == 0
        output = capsys.readouterr().out
        assert "ranked by snr_db" in output

    def test_query_empty_store_fails_loudly(self, tmp_path, capsys):
        assert main(self._args(tmp_path, "campaign", "query")) == 1
        assert "no stored design points" in capsys.readouterr().out

    def test_query_exports(self, tmp_path, capsys):
        main(self._args(
            tmp_path, "campaign", "run", "demo",
            "--array-size", str(ARRAY_SIZE),
            "--population", "16", "--generations", "2",
        ))
        json_path = tmp_path / "query.json"
        assert main(self._args(
            tmp_path, "campaign", "query", "--json", str(json_path)
        )) == 0
        capsys.readouterr()
        # The uniform --json flag emits the repro.api result envelope
        # (ranked records under payload.designs) for every subcommand.
        document = json.loads(json_path.read_text())
        assert document["kind"] == "query"
        assert document["payload"]["designs"]
        assert document["payload"]["rank_by"] == "tops_per_watt"
