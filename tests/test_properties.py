"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arch.spec import ACIMDesignSpec, enumerate_design_space
from repro.dse.pareto import crowding_distance, dominates, non_dominated_sort, pareto_front
from repro.layout.geometry import Orientation, Point, Rect, Transform, hpwl
from repro.model.energy import EnergyModel
from repro.model.snr import SnrModel
from repro.model.throughput import ThroughputModel
from repro.netlist.spice import format_si, parse_si
from repro.sim.sar_adc import SarAdc
from repro.units import db_to_linear, linear_to_db


# ---------------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------------

coords = st.integers(min_value=-100_000, max_value=100_000)
rects = st.builds(Rect, coords, coords, coords, coords)
points = st.builds(Point, coords, coords)
orientations = st.sampled_from(list(Orientation))
transforms = st.builds(Transform, coords, coords, orientations)


@given(rects)
def test_rect_always_normalised(rect):
    assert rect.x_lo <= rect.x_hi
    assert rect.y_lo <= rect.y_hi
    assert rect.area >= 0


@given(rects, rects)
def test_rect_union_contains_both(a, b):
    union = a.union(b)
    assert union.contains_rect(a)
    assert union.contains_rect(b)


@given(rects, rects)
def test_rect_intersection_symmetric_and_contained(a, b):
    inter_ab = a.intersection(b)
    inter_ba = b.intersection(a)
    assert inter_ab == inter_ba
    if inter_ab is not None:
        assert a.expanded(0).contains_rect(inter_ab)
        assert b.contains_rect(inter_ab)


@given(rects, rects)
def test_rect_overlap_implies_zero_spacing(a, b):
    if a.overlaps(b):
        assert a.spacing_to(b) == 0


@given(transforms, rects)
def test_transform_preserves_area(transform, rect):
    assert transform.apply_rect(rect).area == rect.area


@given(transforms, transforms, points)
def test_transform_composition_matches_sequential(outer, inner, point):
    composed = outer.compose(inner)
    assert composed.apply_point(point) == outer.apply_point(inner.apply_point(point))


@given(st.lists(points, min_size=2, max_size=12))
def test_hpwl_invariant_under_translation(point_list):
    shifted = [p.translated(137, -59) for p in point_list]
    assert hpwl(point_list) == hpwl(shifted)


@given(st.lists(points, min_size=2, max_size=12))
def test_hpwl_non_negative_and_monotone_under_subset(point_list):
    total = hpwl(point_list)
    assert total >= 0
    assert total >= hpwl(point_list[:-1]) or len(point_list) <= 2


# ---------------------------------------------------------------------------
# Pareto dominance
# ---------------------------------------------------------------------------

objective_vectors = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False),
              st.floats(0, 100, allow_nan=False)),
    min_size=1, max_size=25,
)


@given(objective_vectors)
def test_dominance_is_irreflexive_and_antisymmetric(points_list):
    for u in points_list:
        assert not dominates(u, u)
    for u in points_list:
        for v in points_list:
            assert not (dominates(u, v) and dominates(v, u))


@given(objective_vectors)
def test_pareto_front_members_are_not_dominated(points_list):
    front = pareto_front(points_list)
    assert front
    for index in front:
        assert not any(
            dominates(points_list[j], points_list[index])
            for j in range(len(points_list)) if j != index)


@given(objective_vectors)
def test_non_dominated_sort_is_a_partition(points_list):
    fronts = non_dominated_sort(points_list)
    flattened = sorted(i for front in fronts for i in front)
    assert flattened == list(range(len(points_list)))
    # Earlier fronts never contain points dominated by later fronts.
    for rank, front in enumerate(fronts):
        for later in fronts[rank + 1:]:
            for i in front:
                assert not any(dominates(points_list[j], points_list[i]) for j in later)


@given(objective_vectors)
def test_crowding_distances_are_non_negative(points_list):
    distances = crowding_distance(points_list)
    assert len(distances) == len(points_list)
    assert all(d >= 0 for d in distances)


# ---------------------------------------------------------------------------
# Design-space specification
# ---------------------------------------------------------------------------

@given(
    height_exp=st.integers(min_value=1, max_value=10),
    width=st.integers(min_value=1, max_value=512),
    local_exp=st.integers(min_value=0, max_value=5),
    adc_bits=st.integers(min_value=1, max_value=8),
)
def test_feasible_specs_satisfy_equation12(height_exp, width, local_exp, adc_bits):
    height = 2 ** height_exp
    local = 2 ** local_exp
    spec = ACIMDesignSpec(height, width, local, adc_bits)
    if spec.is_feasible():
        assert spec.height % spec.local_array_size == 0
        assert spec.local_arrays_per_column >= 2 ** spec.adc_bits
        assert spec.local_array_size <= spec.height
        assert sum(spec.sar_group_ratios) == 2 ** spec.adc_bits


@given(array_exp=st.integers(min_value=6, max_value=14))
@settings(max_examples=20, deadline=None)
def test_enumerated_design_space_is_feasible_and_unique(array_exp):
    array_size = 2 ** array_exp
    specs = list(enumerate_design_space(array_size, max_adc_bits=6))
    assume(specs)
    assert len({s.as_tuple() for s in specs}) == len(specs)
    for spec in specs:
        assert spec.array_size == array_size
        assert spec.is_feasible(array_size)


# ---------------------------------------------------------------------------
# Estimation model monotonicity
# ---------------------------------------------------------------------------

feasible_specs = st.builds(
    lambda h_exp, l_exp, b: ACIMDesignSpec(
        2 ** h_exp, 4, 2 ** l_exp, min(b, h_exp - l_exp) or 1),
    h_exp=st.integers(min_value=3, max_value=11),
    l_exp=st.integers(min_value=1, max_value=3),
    b=st.integers(min_value=1, max_value=8),
).filter(lambda s: s.is_feasible())


@given(feasible_specs)
@settings(max_examples=60, deadline=None)
def test_throughput_energy_area_are_positive_and_consistent(spec):
    throughput = ThroughputModel().breakdown(spec)
    energy = EnergyModel().breakdown(spec)
    assert throughput.tops > 0
    assert throughput.cycle_time > 0
    assert energy.total_per_mac > 0
    assert energy.tops_per_watt > 0
    # TOPS/W must equal 2 ops / energy-per-MAC expressed in pJ.
    assert energy.tops_per_watt * (energy.total_per_mac * 1e12) == pytest.approx(2.0)


@given(feasible_specs, st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_snr_monotone_in_adc_bits(spec, bits):
    model = SnrModel()
    n = spec.local_arrays_per_column
    assert model.design_snr_db(bits + 1, n) >= model.design_snr_db(bits, n)


# ---------------------------------------------------------------------------
# dB and SPICE number round-trips
# ---------------------------------------------------------------------------

@given(st.floats(min_value=-120.0, max_value=120.0, allow_nan=False))
def test_db_roundtrip(value_db):
    assert math.isclose(linear_to_db(db_to_linear(value_db)), value_db, abs_tol=1e-9)


@given(st.floats(min_value=1e-17, max_value=1e14, allow_nan=False))
def test_spice_number_roundtrip(value):
    assert math.isclose(parse_si(format_si(value)), value, rel_tol=1e-4)


# ---------------------------------------------------------------------------
# SAR ADC invariants
# ---------------------------------------------------------------------------

@given(
    bits=st.integers(min_value=1, max_value=10),
    value=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)
def test_sar_adc_code_in_range_and_accurate(bits, value):
    adc = SarAdc(bits=bits, v_low=0.0, v_high=0.9)
    code = adc.convert(value)
    assert 0 <= code < 2 ** bits
    if adc.lsb / 2 < value < 0.9 - adc.lsb:
        assert abs(adc.code_to_voltage(code) - value) <= adc.lsb / 2 + 1e-12


@given(
    bits=st.integers(min_value=1, max_value=8),
    v_a=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    v_b=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)
def test_sar_adc_monotonicity_property(bits, v_a, v_b):
    adc = SarAdc(bits=bits, v_low=0.0, v_high=0.9)
    low, high = sorted((v_a, v_b))
    assert adc.convert(low) <= adc.convert(high)
