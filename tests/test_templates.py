"""Tests of parametric macro templates: the edit-cost metric and index,
route-plan serialization, the lookup ladder's per-rung accounting, the
store's ``template_index`` table (schema v2), and — the exactness
contract — byte-identical GDSII between template-derived and cold solves."""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.errors import StoreError
from repro.layout.drc import check_own_level_shorts
from repro.layout.gdsii import write_gds
from repro.layout.grid import GridNode
from repro.obs import MetricsRegistry, configure_tracing, get_tracer
from repro.physical import (
    MACRO_STAGE,
    PhysicalPipeline,
    plans_from_dict,
    plans_to_dict,
    edit_cost,
    family_digest,
    family_key,
    template_params,
)
from repro.physical.templates import SAR_SWAP_COST, TemplateIndex, template_for
from repro.routing.hier_router import CellRoutePlans
from repro.routing.router import NetPlan, RouteStep
from repro.store.result_store import SCHEMA_VERSION, ResultStore

#: BASE solves cold; H_NEIGHBOR derives the column by row growth,
#: B_NEIGHBOR by SAR-stack swap, L_NEIGHBOR the local array by row count.
BASE = ACIMDesignSpec(16, 4, 4, 2)
H_NEIGHBOR = ACIMDesignSpec(32, 4, 4, 2)
B_NEIGHBOR = ACIMDesignSpec(16, 4, 4, 1)
L_NEIGHBOR = ACIMDesignSpec(16, 4, 2, 2)


def _gds_bytes(cell, technology, tmp_path, tag):
    path = tmp_path / f"{tag}.gds"
    write_gds(cell, path, technology)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# The template math: parameter extraction, families, edit cost
# ---------------------------------------------------------------------------


class TestTemplateMath:
    def test_structural_params_extracted_per_kind(self):
        key = {"H": 64, "L": 4, "B": 3, "route": True, "pitch": 200}
        assert template_params("column", key) == {"H": 64, "B": 3}
        assert template_params("local_array", {"L": 4, "pitch": 200}) == {"L": 4}
        assert template_params("acim_macro", key) is None
        assert template_params("column", {"H": 64}) is None  # incomplete
        assert template_params("column", ["not", "a", "mapping"]) is None

    def test_family_is_the_non_structural_remainder(self):
        key = {"H": 64, "L": 4, "B": 3, "route": True}
        assert family_key("column", key) == {"L": 4, "route": True}
        digest_a = family_digest("column", "fp", family_key("column", key))
        same = {"H": 128, "L": 4, "B": 2, "route": True}
        digest_b = family_digest("column", "fp", family_key("column", same))
        assert digest_a == digest_b  # H/B changes stay in-family
        other = family_digest("column", "fp", {"L": 8, "route": True})
        assert other != digest_a

    def test_edit_cost_counts_rows_and_sar_swaps(self):
        assert edit_cost("local_array", {"L": 4}, {"L": 6}) == 2
        family = {"L": 4}
        assert edit_cost("column", {"H": 64, "B": 3}, {"H": 96, "B": 3},
                         family) == 8
        assert edit_cost("column", {"H": 64, "B": 3}, {"H": 64, "B": 4},
                         family) == SAR_SWAP_COST
        assert edit_cost("column", {"H": 64, "B": 3}, {"H": 96, "B": 4},
                         family) == 8 + SAR_SWAP_COST
        with pytest.raises(KeyError):
            edit_cost("acim_macro", {}, {})

    def test_nearest_ranks_by_cost_then_digest(self, cell_library):
        pipeline = PhysicalPipeline(cell_library)
        pipeline.run(BASE, route_columns=True)
        pipeline.run(H_NEIGHBOR, route_columns=True)
        index = pipeline.macro_library.templates
        assert len(index) >= 3  # two columns + at least one local array
        templates = [t for t in index.templates() if t.kind == "column"]
        family = templates[0].family_digest
        # Equidistant query (H=24 between 16 and 32): the tie must break
        # on digest, identically in any process.
        nearest = index.nearest("column", family, {"H": 24, "B": 2})
        assert nearest.digest == min(t.digest for t in templates)
        # A closer H wins outright.
        assert index.nearest(
            "column", family, {"H": 30, "B": 2}).params["H"] == 32
        assert index.nearest("column", "unknown-family", {"H": 16, "B": 2}) \
            is None

    def test_records_without_plans_are_not_templatable(self, cell_library):
        pipeline = PhysicalPipeline(cell_library)
        record = pipeline.run(BASE, route_columns=True)
        library = pipeline.macro_library
        solved = next(r for r in library.macros() if r.kind == "column")
        import dataclasses
        stripped = dataclasses.replace(solved, route_plans=None)
        assert template_for(
            "column", {"H": 16, "L": 4, "B": 2}, "fp", stripped) is None


# ---------------------------------------------------------------------------
# Route-plan serialization (the store leg of the template index)
# ---------------------------------------------------------------------------


class TestPlanSerialization:
    def _plans(self):
        return CellRoutePlans(
            origin=(-200, -400),
            pitch=200,
            nets={
                "RBL": NetPlan(
                    root=GridNode(0, 0, 1),
                    steps=(
                        RouteStep(target=GridNode(0, 3, 1),
                                  path=(GridNode(0, 0, 1), GridNode(0, 1, 1),
                                        GridNode(0, 2, 1), GridNode(0, 3, 1))),
                        RouteStep(target=GridNode(0, 2, 1)),  # already in tree
                    ),
                ),
                "LBL0": NetPlan(root=GridNode(2, 0, 1)),
            },
        )

    def test_json_round_trip_is_exact(self):
        plans = self._plans()
        document = json.loads(json.dumps(plans_to_dict(plans)))
        restored = plans_from_dict(document)
        assert restored == plans

    def test_absent_and_unsupported_payloads_return_none(self):
        assert plans_from_dict(None) is None
        assert plans_from_dict({"format": 999, "nets": {}}) is None

    def test_macro_payload_round_trips_plans_through_store(
        self, cell_library, tmp_path
    ):
        with ResultStore(tmp_path / "store.sqlite") as store:
            warm = PhysicalPipeline(cell_library, store=store)
            warm.run(BASE, route_columns=True)
            original = next(r for r in warm.macro_library.macros()
                            if r.kind == "column")
            cold = PhysicalPipeline(cell_library, store=store)
            hydrated = cold.macro_library._load("column", original.digest)
            assert hydrated is not None
            assert hydrated.route_plans == original.route_plans


# ---------------------------------------------------------------------------
# Exactness: derived macros are byte-identical to cold solves
# ---------------------------------------------------------------------------


class TestDerivedByteIdentity:
    @pytest.mark.parametrize("neighbor", [H_NEIGHBOR, B_NEIGHBOR, L_NEIGHBOR],
                             ids=["h-change", "b-change", "l-change"])
    def test_derived_solve_matches_cold_gds(
        self, cell_library, technology, tmp_path, neighbor
    ):
        warm = PhysicalPipeline(cell_library)
        warm.run(BASE, route_columns=True)
        derived = warm.run(neighbor, route_columns=True)
        assert derived.stats.macros_derived >= 1
        cold = PhysicalPipeline(cell_library, reuse=False)
        reference = cold.run(neighbor, route_columns=True)
        assert _gds_bytes(derived.report.layout, technology, tmp_path, "d") \
            == _gds_bytes(reference.report.layout, technology, tmp_path, "c")

    def test_derived_record_is_marked_and_clean(self, cell_library):
        pipeline = PhysicalPipeline(cell_library)
        pipeline.run(BASE, route_columns=True)
        pipeline.run(H_NEIGHBOR, route_columns=True)
        derived = [r for r in pipeline.macro_library.macros()
                   if r.source == "derived"]
        assert derived
        for record in derived:
            assert not check_own_level_shorts(
                pipeline.technology, record.layout)

    def test_short_check_catches_planted_violation(
        self, cell_library, technology
    ):
        pipeline = PhysicalPipeline(cell_library, reuse=False)
        cell = pipeline.run(BASE, route_columns=True).report.layout
        assert check_own_level_shorts(technology, cell) == []
        # Plant two overlapping same-layer shapes on different nets.
        metal = next(l.name for l in technology.layers if l.min_spacing > 0)
        from repro.layout.geometry import Rect
        cell.add_shape(metal, Rect(0, 0, 400, 400), net="NET_A")
        cell.add_shape(metal, Rect(200, 200, 600, 600), net="NET_B")
        violations = check_own_level_shorts(technology, cell)
        assert violations and all(v.rule == "min_spacing" for v in violations)


# ---------------------------------------------------------------------------
# The lookup ladder: per-rung counters and trace spans
# ---------------------------------------------------------------------------


class TestLookupLadder:
    def test_rung_counters_across_memory_and_store(
        self, cell_library, tmp_path
    ):
        metrics = MetricsRegistry()
        with ResultStore(tmp_path / "store.sqlite") as store:
            pipeline = PhysicalPipeline(
                cell_library, store=store, metrics=metrics)
            pipeline.run(BASE, route_columns=True)
            snapshot = metrics.snapshot()
            assert snapshot["physical.macro.built"] == 3
            # Exact repeat: memory hit.
            pipeline.run(BASE, route_columns=True)
            assert metrics.snapshot()["physical.macro.hit.memory"] == 1
            # Neighbouring config: the column derives from the in-memory
            # template (top macro re-solves: its key embeds W/H).
            result = pipeline.run(H_NEIGHBOR, route_columns=True)
            assert result.stats.macros_derived == 1
            assert metrics.snapshot()["physical.macro.derive.memory"] == 1
            assert pipeline.macro_library.derived == 1
            assert pipeline.macro_library.derived_from_store == 0

            # A cold process on the same store: exact artifacts hit the
            # store rung; a *new* neighbour hydrates the nearest template
            # from the template_index table and patches from it.
            fresh_metrics = MetricsRegistry()
            fresh = PhysicalPipeline(
                cell_library, store=store, metrics=fresh_metrics)
            fresh.run(B_NEIGHBOR, route_columns=True)
            fresh_snapshot = fresh_metrics.snapshot()
            assert fresh_snapshot["physical.macro.derive.store"] >= 1
            assert fresh.macro_library.derived_from_store >= 1

            exact = MetricsRegistry()
            replayer = PhysicalPipeline(
                cell_library, store=store, metrics=exact)
            replayer.run(BASE, route_columns=True)
            # The top acim_macro is an exact store hit, which
            # short-circuits its sub-macro requests entirely.
            assert exact.snapshot()["physical.macro.hit.store"] == 1

    def test_derive_emits_template_derive_span(self, cell_library):
        configure_tracing(enabled=True)
        try:
            pipeline = PhysicalPipeline(cell_library)
            pipeline.run(BASE, route_columns=True)
            pipeline.run(H_NEIGHBOR, route_columns=True)
            spans = [s for s in get_tracer().finished_spans()
                     if s.name == "physical.template_derive"]
            assert spans
            assert spans[0].attrs["kind"] == "column"
            assert spans[0].attrs["replayed"] >= 1
        finally:
            configure_tracing(enabled=False)

    def test_derived_macros_route_stages_actually_ran(self, cell_library):
        pipeline = PhysicalPipeline(cell_library)
        pipeline.run(BASE, route_columns=True)
        result = pipeline.run(H_NEIGHBOR, route_columns=True)
        # A derive is not a cache hit: placement/routing ran for the
        # patched macro, so stage cache_hits only reflect the true reuse.
        assert result.stats.stage("routing").runs >= 1
        assert result.stats.macros_reused == 1  # the shared local array


# ---------------------------------------------------------------------------
# Store schema v2: template_index, ordering bugfix, migration
# ---------------------------------------------------------------------------


class TestStoreTemplateIndex:
    def test_put_is_first_write_wins(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            assert store.put_template_entry(
                "column", "fam", {"H": 16, "B": 2}, "d" * 64) == 1
            assert store.put_template_entry(
                "column", "fam", {"H": 16, "B": 2}, "e" * 64) == 0
            entries = store.list_template_entries()
            assert len(entries) == 1
            assert entries[0]["artifact_digest"] == "d" * 64
            assert entries[0]["params"] == {"H": 16, "B": 2}
            assert store.template_entry_count() == 1
            assert store.stats()["templates"] == 1

    def test_listing_filters_by_kind_and_family(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.put_template_entry("column", "f1", {"H": 16, "B": 2}, "a" * 64)
            store.put_template_entry("column", "f2", {"H": 32, "B": 2}, "b" * 64)
            store.put_template_entry("local_array", "f3", {"L": 4}, "c" * 64)
            assert len(store.list_template_entries(kind="column")) == 2
            assert len(store.list_template_entries(family_digest="f3")) == 1

    def test_list_artifacts_insertion_order_with_stage_filter(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            # Digest order deliberately disagrees with insertion order;
            # same-second created_at timestamps used to fall back to it.
            for digest in ("b" * 64, "a" * 64, "c" * 64):
                store.put_artifact(digest, "macro", ["k", digest[:1]],
                                   payload={})
            store.put_artifact("d" * 64, "layout", ["k", "d"], payload={})
            digests = [row["digest"]
                       for row in store.list_artifacts(stage="macro")]
            assert digests == ["b" * 64, "a" * 64, "c" * 64]
            assert all("created_at" in row
                       for row in store.list_artifacts())

    def test_v1_file_migrates_in_place(self, tmp_path):
        path = tmp_path / "v1.sqlite"
        with ResultStore(path) as store:
            store.put_artifact("a" * 64, "macro", ["k"], payload={})
        # Rewind the file to schema v1: drop every v2 object, re-stamp.
        conn = sqlite3.connect(path)
        conn.executescript(
            "DROP TABLE template_index;"
            "DROP INDEX idx_artifacts_stage_created;"
            "UPDATE store_meta SET value = '1' "
            "WHERE key = 'schema_version';"
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            assert store.artifact_count("macro") == 1  # data survived
            assert store.put_template_entry(
                "column", "fam", {"H": 16, "B": 2}, "a" * 64) == 1
        conn = sqlite3.connect(path)
        stamped = conn.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        conn.close()
        assert int(stamped) == SCHEMA_VERSION

    def test_unknown_schema_version_still_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with ResultStore(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute("UPDATE store_meta SET value = '999' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError):
            ResultStore(path)


class TestConcurrentTemplateWriters:
    def test_two_processes_solve_the_same_macros(self, tmp_path):
        path = tmp_path / "store.sqlite"
        script = (
            "import sys\n"
            "from repro.arch.spec import ACIMDesignSpec\n"
            "from repro.cells.library import default_cell_library\n"
            "from repro.physical import PhysicalPipeline\n"
            "from repro.store.result_store import ResultStore\n"
            "from repro.technology.tech import generic28\n"
            "library = default_cell_library(generic28())\n"
            "with ResultStore(sys.argv[1]) as store:\n"
            "    pipeline = PhysicalPipeline(library, store=store)\n"
            "    pipeline.run(ACIMDesignSpec(16, 4, 4, 2),"
            " route_columns=True)\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src))
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path)],
                env=env, stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for worker in workers:
            _stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, stderr.decode()
        with ResultStore(path) as store:
            # Both processes solved the same three macros and registered
            # the same two templatable ones; first write won everywhere.
            assert store.artifact_count(MACRO_STAGE) == 3
            assert store.template_entry_count() == 2
            digests = [row["artifact_digest"]
                       for row in store.list_template_entries()]
            assert len(digests) == len(set(digests))
