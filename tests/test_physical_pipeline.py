"""Tests of the staged physical pipeline: content-addressed macro reuse,
layout serialization, artifact persistence, the macro-instance consumer
APIs of the placer/router, and the flow-level reuse knobs."""

import json

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.dse.nsga2 import NSGA2Config
from repro.errors import (
    FlowError,
    LayoutError,
    PlacementError,
    ReproError,
    RoutingError,
)
from repro.flow.controller import FlowInputs, _FlowCore
from repro.flow.layout_gen import LayoutGenerator
from repro.layout.gdsii import write_gds
from repro.layout.geometry import Rect, Transform
from repro.layout.layout import LayoutCell
from repro.physical import (
    MACRO_STAGE,
    MacroLibrary,
    PhysicalPipeline,
    artifact_digest,
    layout_from_dict,
    layout_to_dict,
)
from repro.placement.hierarchical import HierarchicalPlacer, MacroPlacement
from repro.routing.hier_router import HierarchicalRouter, LogicalNet
from repro.store.result_store import ResultStore

#: Small feasible specs; A and B share the column (H, L, B), C only L.
SPEC_A = ACIMDesignSpec(16, 4, 4, 2)
SPEC_B = ACIMDesignSpec(16, 8, 4, 2)
SPEC_C = ACIMDesignSpec(32, 4, 4, 2)


def _gds_bytes(cell, technology, tmp_path, tag):
    path = tmp_path / f"{tag}.gds"
    write_gds(cell, path, technology)
    return path.read_bytes()


# ---------------------------------------------------------------------------
# Layout serialization (the persistence substrate of the macro cache)
# ---------------------------------------------------------------------------


class TestLayoutSerialization:
    def test_round_trip_is_byte_identical(self, cell_library, technology, tmp_path):
        pipeline = PhysicalPipeline(cell_library, reuse=False)
        layout = pipeline.run(SPEC_A, route_columns=True).report.layout
        document = json.loads(json.dumps(layout_to_dict(layout)))
        rebuilt = layout_from_dict(document)
        original = _gds_bytes(layout, technology, tmp_path, "orig")
        restored = _gds_bytes(rebuilt, technology, tmp_path, "rebuilt")
        assert original == restored

    def test_round_trip_preserves_structure(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=False)
        layout = pipeline.run(SPEC_A, route_columns=True).report.layout
        rebuilt = layout_from_dict(layout_to_dict(layout))
        assert rebuilt.name == layout.name
        assert rebuilt.boundary == layout.boundary
        assert [s for s in rebuilt.shapes] == [s for s in layout.shapes]
        assert [p.name for p in rebuilt.pins] == [p.name for p in layout.pins]
        assert [i.name for i in rebuilt.instances] == \
            [i.name for i in layout.instances]
        assert rebuilt.flat_shape_count() == layout.flat_shape_count()

    def test_shared_subcells_stay_shared(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=False)
        layout = pipeline.run(SPEC_A, route_columns=False).report.layout
        rebuilt = layout_from_dict(layout_to_dict(layout))
        columns = [i.cell for i in rebuilt.instances
                   if i.name.startswith("COL")]
        assert len(columns) == SPEC_A.width
        assert all(cell is columns[0] for cell in columns)

    def test_unsupported_format_rejected(self):
        with pytest.raises(LayoutError):
            layout_from_dict({"format": 999, "top": "x", "cells": []})

    def test_name_collision_rejected(self):
        parent = LayoutCell("parent")
        parent.add_instance("A", LayoutCell("twin", boundary=Rect(0, 0, 1, 1)))
        parent.add_instance("B", LayoutCell("twin", boundary=Rect(0, 0, 2, 2)))
        with pytest.raises(LayoutError):
            layout_to_dict(parent)


# ---------------------------------------------------------------------------
# Pipeline reuse semantics
# ---------------------------------------------------------------------------


class TestPipelineReuse:
    def test_reuse_off_matches_reuse_on_byte_identically(
        self, cell_library, technology, tmp_path
    ):
        off = PhysicalPipeline(cell_library, reuse=False)
        on = PhysicalPipeline(cell_library, reuse=True)
        report_off = off.run(SPEC_A, route_columns=True).report
        report_on = on.run(SPEC_A, route_columns=True).report
        assert _gds_bytes(report_off.layout, technology, tmp_path, "off") == \
            _gds_bytes(report_on.layout, technology, tmp_path, "on")
        assert report_off.as_dict()["area_um2"] == report_on.as_dict()["area_um2"]
        assert report_off.routed_nets == report_on.routed_nets

    def test_designs_sharing_structure_share_macros(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=True)
        first = pipeline.run(SPEC_A, route_columns=True)
        assert first.stats.macros_built == 3  # local array, column, top
        assert first.stats.macros_reused == 0
        # Same column (H, L, B): only the top assembly is new.
        second = pipeline.run(SPEC_B, route_columns=True)
        assert second.stats.macros_built == 1
        assert second.stats.macros_reused == 2
        assert second.stats.stage("routing").runs == 0
        # Same L only: the local array is served and the neighbouring
        # column is derived from the solved template, not re-solved cold.
        third = pipeline.run(SPEC_C, route_columns=True)
        assert third.stats.macros_built == 1
        assert third.stats.macros_derived == 1
        assert third.stats.macros_reused == 1

    def test_repeated_run_is_a_full_cache_hit(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=True)
        pipeline.run(SPEC_A, route_columns=True)
        again = pipeline.run(SPEC_A, route_columns=True)
        assert again.stats.macros_built == 0
        assert again.stats.macros_reused == 1
        assert again.stats.stage("layout").cache_hits == 1
        assert again.stats.stage("placement").runs == 0
        assert again.stats.stage("routing").runs == 0

    def test_store_warm_starts_a_fresh_pipeline(
        self, cell_library, technology, tmp_path
    ):
        with ResultStore(tmp_path / "store.sqlite") as store:
            cold = PhysicalPipeline(cell_library, store=store)
            report_cold = cold.run(SPEC_A, route_columns=True).report
            assert store.artifact_count(MACRO_STAGE) == 3
            # A fresh pipeline on the same store simulates a new process.
            warm = PhysicalPipeline(cell_library, store=store)
            result = warm.run(SPEC_A, route_columns=True)
            assert result.stats.macros_built == 0
            assert result.stats.macros_reused == 1
            assert result.stats.stage("layout").store_hits == 1
            assert _gds_bytes(report_cold.layout, technology, tmp_path, "c") \
                == _gds_bytes(result.report.layout, technology, tmp_path, "w")
            # The replayed report carries the original routing figures.
            assert result.report.routed_nets == report_cold.routed_nets
            assert result.report.total_wirelength_um == \
                report_cold.total_wirelength_um

    def test_netlist_stage_caches(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=True)
        first = pipeline.run(SPEC_A, generate_netlist=True, generate_layout=False)
        second = pipeline.run(SPEC_A, generate_netlist=True, generate_layout=False)
        assert second.netlist is first.netlist
        assert second.stats.stage("netlist").cache_hits == 1
        # Reuse off always rebuilds.
        off = PhysicalPipeline(cell_library, reuse=False)
        a = off.run(SPEC_A, generate_netlist=True, generate_layout=False)
        b = off.run(SPEC_A, generate_netlist=True, generate_layout=False)
        assert a.netlist is not b.netlist

    def test_route_flag_is_part_of_the_macro_key(self, cell_library):
        pipeline = PhysicalPipeline(cell_library, reuse=True)
        routed = pipeline.run(SPEC_A, route_columns=True)
        floorplan = pipeline.run(SPEC_A, route_columns=False)
        assert routed.report.routed_nets > 0
        assert floorplan.report.routed_nets == 0
        assert floorplan.stats.macros_built == 3  # no cross-contamination

    def test_layout_generator_is_a_thin_driver(self, cell_library):
        generator = LayoutGenerator(cell_library)
        assert generator.pipeline.reuse is False
        report = generator.generate(SPEC_A, route_column=True)
        direct = PhysicalPipeline(cell_library, reuse=False).run(
            SPEC_A, route_columns=True
        ).report
        left, right = report.as_dict(), direct.as_dict()
        left.pop("runtime_s"), right.pop("runtime_s")
        assert left == right


# ---------------------------------------------------------------------------
# Artifact persistence
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            digest = artifact_digest("macro", ["column", {"H": 16}])
            assert store.get_artifact(digest) is None
            assert store.put_artifact(
                digest, "macro", ["column", {"H": 16}], {"x": 1}) == 1
            assert store.get_artifact(digest) == {"x": 1}

    def test_artifacts_are_immutable(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            digest = artifact_digest("macro", ["k"])
            store.put_artifact(digest, "macro", ["k"], {"first": True})
            assert store.put_artifact(
                digest, "macro", ["k"], {"second": True}) == 0
            assert store.get_artifact(digest) == {"first": True}

    def test_listing_and_counts(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.put_artifact(
                artifact_digest("macro", [1]), "macro", [1], {})
            store.put_artifact(
                artifact_digest("layout", [2]), "layout", [2], {})
            assert store.artifact_count() == 2
            assert store.artifact_count("macro") == 1
            rows = store.list_artifacts(stage="macro")
            assert len(rows) == 1
            assert rows[0]["stage"] == "macro"
            assert rows[0]["key"] == [1]
            assert store.stats()["artifacts"] == 2

    def test_same_key_same_digest(self, cell_library):
        library = MacroLibrary(cell_library)
        a = library.macro_digest("column", {"H": 16, "L": 4})
        b = library.macro_digest("column", {"H": 16, "L": 4})
        c = library.macro_digest("column", {"H": 32, "L": 4})
        assert a == b
        assert a != c
        assert a != library.macro_digest("local_array", {"H": 16, "L": 4})


# ---------------------------------------------------------------------------
# Placer: macro-instance consumption edge cases
# ---------------------------------------------------------------------------


def _solved_macro(name="macro", width=2000, height=1000):
    cell = LayoutCell(name, boundary=Rect(0, 0, width, height))
    cell.add_shape("M1", Rect(100, 100, width - 100, height - 100), net="X")
    cell.add_pin("P", "M2", Rect(900, 800, 1100, 1000))
    return cell


class TestMacroInstancePlacement:
    def test_single_instance_hierarchy(self):
        parent = LayoutCell("parent")
        boxes = HierarchicalPlacer().place_macro_instances(parent, [
            MacroPlacement("ONLY", _solved_macro(), Transform(0, 0)),
        ])
        assert boxes == {"ONLY": Rect(0, 0, 2000, 1000)}
        assert parent.instance_count() == 1

    def test_abutted_macros_are_legal(self):
        parent = LayoutCell("parent")
        macro = _solved_macro()
        HierarchicalPlacer().place_macro_instances(parent, [
            MacroPlacement("A", macro, Transform(0, 0)),
            MacroPlacement("B", macro, Transform(2000, 0)),  # shared edge
        ])
        assert parent.instance_count() == 2

    def test_overlapping_macros_raise_typed_error(self):
        parent = LayoutCell("parent")
        macro = _solved_macro()
        with pytest.raises(PlacementError) as excinfo:
            HierarchicalPlacer().place_macro_instances(parent, [
                MacroPlacement("A", macro, Transform(0, 0)),
                MacroPlacement("B", macro, Transform(1000, 0)),
            ])
        assert isinstance(excinfo.value, ReproError)
        assert "overlap" in str(excinfo.value)
        # The parent must not be half-modified.
        assert parent.instance_count() == 0

    def test_empty_macro_raises_typed_error(self):
        parent = LayoutCell("parent")
        with pytest.raises(PlacementError):
            HierarchicalPlacer().place_macro_instances(parent, [
                MacroPlacement("E", LayoutCell("empty"), Transform(0, 0)),
            ])
        assert parent.instance_count() == 0

    def test_overlap_check_can_be_disabled(self):
        parent = LayoutCell("parent")
        macro = _solved_macro()
        HierarchicalPlacer().place_macro_instances(parent, [
            MacroPlacement("A", macro, Transform(0, 0)),
            MacroPlacement("B", macro, Transform(1000, 0)),
        ], check_overlaps=False)
        assert parent.instance_count() == 2


# ---------------------------------------------------------------------------
# Router: macro-instance consumption edge cases
# ---------------------------------------------------------------------------


class TestHierRouterEdgeCases:
    def test_zero_net_macro_routes_cleanly(self, technology):
        parent = LayoutCell("parent")
        parent.add_instance("M0", _solved_macro(), Transform(0, 0))
        parent.boundary = Rect(0, 0, 4000, 2000)
        report = HierarchicalRouter(technology, pitch=200).route_cell(parent, [])
        assert report.result.complete
        assert not report.result.routes
        assert not report.result.failed

    def test_single_instance_hierarchy_routes(self, technology):
        macro = _solved_macro()
        macro.add_pin("Q", "M2", Rect(100, 800, 300, 1000))
        parent = LayoutCell("parent")
        parent.add_instance("M0", macro, Transform(0, 0))
        parent.boundary = Rect(0, 0, 4000, 2000)
        report = HierarchicalRouter(technology, pitch=200).route_cell(parent, [
            LogicalNet("n", terminals=(("M0", "P"), ("M0", "Q"))),
        ])
        assert report.result.complete
        assert any(shape.net == "n" for shape in parent.shapes)

    def test_single_terminal_net_raises(self, technology):
        parent = LayoutCell("parent")
        parent.add_instance("M0", _solved_macro(), Transform(0, 0))
        with pytest.raises(RoutingError):
            HierarchicalRouter(technology, pitch=200).route_cell(parent, [
                LogicalNet("n", terminals=(("M0", "P"),)),
            ])

    def test_unknown_instance_raises_typed_error(self, technology):
        parent = LayoutCell("parent")
        parent.add_instance("M0", _solved_macro(), Transform(0, 0))
        with pytest.raises(ReproError):
            HierarchicalRouter(technology, pitch=200).route_cell(parent, [
                LogicalNet("n", terminals=(("GHOST", "P"), ("M0", "P"))),
            ])


# ---------------------------------------------------------------------------
# Flow-level reuse
# ---------------------------------------------------------------------------


FAST_NSGA2 = NSGA2Config(population_size=16, generations=6, seed=3)


class TestFlowReuse:
    def test_reuse_modes_produce_identical_layouts(self):
        auto = _FlowCore(FlowInputs(
            array_size=256, nsga2=FAST_NSGA2, max_layouts=2)).run(
            route_columns=True)
        flat = _FlowCore(FlowInputs(
            array_size=256, nsga2=FAST_NSGA2, max_layouts=2,
            reuse="off")).run(route_columns=True)
        assert set(auto.layouts) == set(flat.layouts)
        for key, report in auto.layouts.items():
            assert report.area_um2 == flat.layouts[key].area_um2
            assert report.routed_nets == flat.layouts[key].routed_nets
        assert auto.physical_stats["macros_built"] >= 1
        assert not flat.physical_stats

    def test_flow_shares_pipeline_across_runs(self):
        pipeline = None
        first = _FlowCore(FlowInputs(
            array_size=256, nsga2=FAST_NSGA2, max_layouts=1))
        pipeline = first.pipeline
        first.run(route_columns=False)
        second = _FlowCore(FlowInputs(
            array_size=256, nsga2=FAST_NSGA2, max_layouts=1,
            pipeline=pipeline))
        result = second.run(route_columns=False)
        assert result.physical_stats["macros_reused"] >= 1

    def test_unknown_reuse_mode_rejected(self):
        with pytest.raises(FlowError):
            _FlowCore(FlowInputs(array_size=256, reuse="sometimes"))

    def test_parallel_engine_keeps_the_fanout_path(self):
        # reuse="auto" must not serialize an explicitly parallel flow:
        # worker pools cannot share one pipeline, so the engine fan-out
        # is kept and no pipeline statistics are produced.
        with _FlowCore(FlowInputs(
                array_size=256, nsga2=FAST_NSGA2, max_layouts=1,
                backend="thread", workers=2)) as flow:
            assert not flow._use_pipeline()
            result = flow.run(route_columns=False)
        assert result.layouts
        assert not result.physical_stats
