"""Shared fixtures for the EasyACIM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.arch.spec import ACIMDesignSpec
from repro.cells.library import default_cell_library
from repro.model.estimator import ACIMEstimator
from repro.technology.tech import generic28


@pytest.fixture(scope="session")
def technology():
    """The synthetic generic 28 nm technology used by all physical tests."""
    return generic28()


@pytest.fixture(scope="session")
def cell_library(technology):
    """The default cell library on the session technology."""
    return default_cell_library(technology)


@pytest.fixture(scope="session")
def estimator():
    """A default-parameter estimator shared by model-level tests."""
    return ACIMEstimator()


@pytest.fixture
def small_spec():
    """A small feasible design spec (fast netlist / layout generation)."""
    return ACIMDesignSpec(height=16, width=4, local_array_size=4, adc_bits=2)


@pytest.fixture
def figure8_spec_b():
    """Figure 8(b): the balanced 16 kb design point (H=128, L=8, B=3)."""
    return ACIMDesignSpec(height=128, width=128, local_array_size=8, adc_bits=3)
