"""Unit tests for the reporting utilities (ASCII plots, exports) and the CLI."""

import json

import pytest

from repro import __version__
from repro.errors import ReproError
from repro.cli import build_parser, main
from repro.dse.exhaustive import exhaustive_pareto_front
from repro.reporting import AsciiScatter, export_csv, export_json, render_pareto_front
from repro.reporting.export import load_json


class TestAsciiScatter:
    def test_render_contains_all_markers(self):
        plot = AsciiScatter("demo", "x", "y", width=32, height=10)
        plot.add_series("a", [(1, 1), (2, 2)])
        plot.add_series("b", [(3, 1), (4, 4)])
        text = plot.render()
        assert "o" in text and "x" in text
        assert "legend: o=a  x=b" in text

    def test_render_dimensions(self):
        plot = AsciiScatter("demo", "x", "y", width=40, height=12)
        plot.add_series("a", [(0, 0), (10, 5)])
        lines = plot.render().splitlines()
        data_rows = [line for line in lines if line.startswith("|")]
        assert len(data_rows) == 12
        assert all(len(line) == 42 for line in data_rows)

    def test_log_axis_requires_positive_values(self):
        plot = AsciiScatter("demo", "x", "y", log_x=True)
        with pytest.raises(ReproError):
            plot.add_series("a", [(0.0, 1.0)])

    def test_empty_plot_rejected(self):
        with pytest.raises(ReproError):
            AsciiScatter("demo", "x", "y").render()

    def test_too_small_plot_rejected(self):
        with pytest.raises(ReproError):
            AsciiScatter("demo", "x", "y", width=4, height=4)

    def test_render_pareto_front_with_categories(self):
        designs = exhaustive_pareto_front(1024)
        text = render_pareto_front(
            designs, category=lambda d: f"B={d.spec.adc_bits}")
        assert "legend:" in text
        assert "area_f2_per_bit" in text

    def test_render_pareto_front_single_series(self):
        designs = exhaustive_pareto_front(1024)[:10]
        text = render_pareto_front(designs)
        assert "designs" in text

    def test_render_pareto_front_empty(self):
        with pytest.raises(ReproError):
            render_pareto_front([])


class TestExports:
    def test_csv_roundtrip_columns(self, tmp_path):
        designs = exhaustive_pareto_front(1024)[:5]
        path = export_csv(designs, tmp_path / "out.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("H,W,L,B_ADC")
        assert len(lines) == 6

    def test_csv_with_dicts_and_column_selection(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        path = export_csv(rows, tmp_path / "d.csv", columns=["b"])
        assert path.read_text().splitlines()[0] == "b"

    def test_json_roundtrip_with_metadata(self, tmp_path):
        designs = exhaustive_pareto_front(1024)[:3]
        path = export_json(designs, tmp_path / "out.json", metadata={"array": 1024})
        data = load_json(path)
        assert data["metadata"]["array"] == 1024
        assert len(data["records"]) == 3

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            export_csv([], tmp_path / "x.csv")
        with pytest.raises(ReproError):
            export_json([], tmp_path / "x.json")

    def test_unknown_record_type_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            export_csv([object()], tmp_path / "x.csv")

    def test_load_json_rejects_other_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ReproError):
            load_json(path)


class TestCli:
    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        for command in ("explore", "layout", "estimate", "library", "validate-snr"):
            args = parser.parse_args(_minimal_args(command))
            assert args.command == command
        args = parser.parse_args(["campaign", "list"])
        assert args.command == "campaign"
        assert args.campaign_command == "list"

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_estimate_command(self, capsys):
        exit_code = main(["estimate", "--height", "128", "--width", "128",
                          "--local", "8", "--adc-bits", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "2.61e+03" in captured or "2610" in captured

    def test_explore_command_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "pareto.csv"
        json_path = tmp_path / "pareto.json"
        exit_code = main([
            "explore", "--array-size", "1024", "--population", "20",
            "--generations", "6", "--seed", "3",
            "--csv", str(csv_path), "--json", str(json_path), "--plot",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Pareto solutions" in captured
        assert csv_path.exists() and json_path.exists()

    def test_explore_command_with_engine_backend(self, capsys):
        exit_code = main([
            "explore", "--array-size", "1024", "--population", "20",
            "--generations", "6", "--seed", "3",
            "--backend", "thread", "--workers", "2", "--engine-stats",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Pareto solutions" in captured
        assert "thread" in captured
        assert "evals_per_s" in captured

    def test_layout_command(self, tmp_path, capsys):
        exit_code = main([
            "layout", "--height", "16", "--width", "4", "--local", "4",
            "--adc-bits", "2", "--out", str(tmp_path), "--no-route",
            "--spice", "--lef",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "GDS written" in captured
        assert list(tmp_path.glob("*.gds"))
        assert list(tmp_path.glob("*.lef"))
        assert list(tmp_path.glob("*.sp"))

    def test_library_command(self, capsys):
        exit_code = main(["library", "--report"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sram8t" in captured
        assert "consistent" in captured

    def test_validate_snr_command(self, capsys):
        exit_code = main(["validate-snr", "--adc-bits", "3",
                          "--height", "64", "--local", "4", "--trials", "100"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "analytic_dB" in captured

    def test_infeasible_layout_request_fails_loudly(self):
        with pytest.raises(Exception):
            main(["layout", "--height", "8", "--width", "8", "--local", "8",
                  "--adc-bits", "4", "--no-route"])


def _minimal_args(command):
    if command == "explore":
        return ["explore"]
    if command == "layout":
        return ["layout", "--height", "16", "--width", "4", "--local", "4",
                "--adc-bits", "2"]
    if command == "estimate":
        return ["estimate", "--height", "16", "--width", "4", "--local", "4",
                "--adc-bits", "2"]
    if command == "library":
        return ["library"]
    return ["validate-snr"]
