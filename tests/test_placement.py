"""Unit tests for the placement package (model, constraints, placers, templates)."""

import pytest

from repro.errors import PlacementError
from repro.layout.geometry import Point, Rect
from repro.layout.layout import LayoutCell
from repro.placement import (
    AbutmentConstraint,
    AlignmentConstraint,
    ArrayConstraint,
    ColumnStackTemplate,
    GridPlacer,
    GridPlacerConfig,
    HierarchicalPlacer,
    PlacementNet,
    PlacementObject,
    PlacementProblem,
    RowTemplate,
    SymmetryConstraint,
)
from repro.placement.template import GridArrayTemplate


def _problem(num_objects=4, region=Rect(0, 0, 10000, 10000)):
    problem = PlacementProblem(region)
    for i in range(num_objects):
        problem.add_object(PlacementObject(f"obj{i}", width=1000, height=800))
    for i in range(num_objects - 1):
        problem.add_net(PlacementNet(f"net{i}", terminals=[
            (f"obj{i}", "pin"), (f"obj{i + 1}", "pin")]))
    return problem


class TestPlacementModel:
    def test_object_requires_position_before_rect(self):
        obj = PlacementObject("a", 100, 100)
        with pytest.raises(PlacementError):
            obj.rect()

    def test_fixed_object_needs_position(self):
        with pytest.raises(PlacementError):
            PlacementObject("a", 100, 100, fixed=True)

    def test_pin_position_uses_offsets(self):
        obj = PlacementObject("a", 100, 100,
                              pin_offsets={"x": Point(10, 20)},
                              position=Point(1000, 2000))
        assert obj.pin_position("x") == Point(1010, 2020)
        assert obj.pin_position("unknown") == obj.rect().center

    def test_duplicate_object_rejected(self):
        problem = _problem()
        with pytest.raises(PlacementError):
            problem.add_object(PlacementObject("obj0", 10, 10))

    def test_net_referencing_unknown_object_rejected(self):
        problem = _problem()
        with pytest.raises(PlacementError):
            problem.add_net(PlacementNet("bad", terminals=[("ghost", "pin")]))

    def test_hpwl_of_two_placed_objects(self):
        problem = _problem(2)
        problem.object("obj0").position = Point(0, 0)
        problem.object("obj1").position = Point(3000, 0)
        # centres are (500,400) and (3500,400): HPWL = 3000.
        assert problem.total_hpwl() == pytest.approx(3000)

    def test_overlap_area(self):
        problem = _problem(2)
        problem.object("obj0").position = Point(0, 0)
        problem.object("obj1").position = Point(500, 0)
        assert problem.overlap_area() == 500 * 800

    def test_all_inside_region(self):
        problem = _problem(1, region=Rect(0, 0, 1200, 1200))
        problem.object("obj0").position = Point(500, 500)
        assert not problem.all_inside_region()
        problem.object("obj0").position = Point(0, 0)
        assert problem.all_inside_region()


class TestConstraints:
    def test_symmetry_violation_zero_when_symmetric(self):
        problem = _problem(2)
        problem.object("obj0").position = Point(0, 0)
        problem.object("obj1").position = Point(4000, 0)
        constraint = SymmetryConstraint(pairs=[("obj0", "obj1")])
        assert constraint.violation(problem) == pytest.approx(0.0)

    def test_symmetry_violation_grows_with_misalignment(self):
        problem = _problem(2)
        problem.object("obj0").position = Point(0, 0)
        problem.object("obj1").position = Point(4000, 700)
        constraint = SymmetryConstraint(pairs=[("obj0", "obj1")])
        assert constraint.violation(problem) > 0

    def test_alignment_constraint(self):
        problem = _problem(3)
        for i, x in enumerate((0, 0, 500)):
            problem.object(f"obj{i}").position = Point(x, i * 1000)
        constraint = AlignmentConstraint(objects=["obj0", "obj1", "obj2"], edge="left")
        assert constraint.violation(problem) == 500
        assert not constraint.satisfied(problem)

    def test_alignment_unknown_edge(self):
        with pytest.raises(PlacementError):
            AlignmentConstraint(objects=["a"], edge="middle")

    def test_abutment_constraint_satisfied_when_stacked(self):
        problem = _problem(3)
        for i in range(3):
            problem.object(f"obj{i}").position = Point(0, i * 800)
        constraint = AbutmentConstraint(objects=["obj0", "obj1", "obj2"])
        assert constraint.satisfied(problem)

    def test_abutment_detects_gap(self):
        problem = _problem(2)
        problem.object("obj0").position = Point(0, 0)
        problem.object("obj1").position = Point(0, 900)
        constraint = AbutmentConstraint(objects=["obj0", "obj1"])
        assert constraint.violation(problem) == 100

    def test_array_constraint(self):
        problem = _problem(4)
        positions = [(0, 0), (1000, 0), (0, 800), (1000, 800)]
        for i, (x, y) in enumerate(positions):
            problem.object(f"obj{i}").position = Point(x, y)
        constraint = ArrayConstraint(objects=[f"obj{i}" for i in range(4)],
                                     columns=2, pitch_x=1000, pitch_y=800)
        assert constraint.satisfied(problem)
        problem.object("obj3").position = Point(1100, 800)
        assert constraint.violation(problem) == 100


class TestGridPlacer:
    CONFIG = GridPlacerConfig(initial_temperature=5e4, cooling_rate=0.8,
                              moves_per_temperature=60, seed=11)

    def test_placement_is_legal(self):
        problem = _problem(6)
        result = GridPlacer(self.CONFIG).place(problem)
        assert result.legal
        assert problem.all_inside_region()

    def test_placement_improves_over_random_spread(self):
        problem = _problem(6)
        result = GridPlacer(self.CONFIG).place(problem)
        # A chain of 6 connected 1000-wide objects should end up well under
        # the worst-case wirelength of the 10 000 x 10 000 region.
        assert result.hpwl < 6 * 8000

    def test_fixed_objects_do_not_move(self):
        problem = _problem(4)
        problem.add_object(PlacementObject("anchor", 500, 500, fixed=True,
                                           position=Point(9000, 9000)))
        GridPlacer(self.CONFIG).place(problem)
        assert problem.object("anchor").position == Point(9000, 9000)

    def test_constraints_reduce_violation(self):
        problem = _problem(4)
        constraint = AlignmentConstraint(objects=["obj0", "obj1", "obj2", "obj3"],
                                         edge="left")
        problem.add_constraint(constraint)
        config = GridPlacerConfig(initial_temperature=1e5, cooling_rate=0.85,
                                  moves_per_temperature=120, constraint_weight=50.0,
                                  seed=5)
        GridPlacer(config).place(problem)
        # The annealer should reduce misalignment to a small residue.
        assert constraint.violation(problem) < 4000

    def test_empty_problem(self):
        problem = PlacementProblem(Rect(0, 0, 1000, 1000))
        result = GridPlacer(self.CONFIG).place(problem)
        assert result.positions == {}


class TestTemplates:
    def test_column_stack(self):
        template = ColumnStackTemplate(order=["a", "b", "c"], x_offset=100)
        sizes = {"a": (1000, 500), "b": (1000, 700), "c": (1000, 300)}
        slots = {s.name: s.position for s in template.place(sizes)}
        assert slots["a"] == Point(100, 0)
        assert slots["b"] == Point(100, 500)
        assert slots["c"] == Point(100, 1200)
        assert template.bounding_size(sizes) == (1100, 1500)

    def test_row_template(self):
        template = RowTemplate(order=["a", "b"], spacing=50)
        sizes = {"a": (1000, 500), "b": (800, 500)}
        slots = {s.name: s.position for s in template.place(sizes)}
        assert slots["b"] == Point(1050, 0)

    def test_grid_array_template(self):
        template = GridArrayTemplate(order=[f"c{i}" for i in range(6)], columns=3,
                                     pitch_x=1000, pitch_y=600)
        sizes = {f"c{i}": (900, 500) for i in range(6)}
        slots = {s.name: s.position for s in template.place(sizes)}
        assert slots["c4"] == Point(1000, 600)

    def test_template_unknown_instance(self):
        template = ColumnStackTemplate(order=["missing"])
        with pytest.raises(PlacementError):
            template.place({"other": (10, 10)})


class TestHierarchicalPlacer:
    def _child(self, name="child"):
        cell = LayoutCell(name, boundary=Rect(0, 0, 2000, 1000))
        cell.add_pin("P", "M1", Rect(0, 400, 100, 600))
        return cell

    def test_template_placement_moves_instances(self):
        parent = LayoutCell("parent")
        child = self._child()
        for i in range(3):
            parent.add_instance(f"I{i}", child)
        placer = HierarchicalPlacer()
        positions = placer.place_with_template(
            parent, ColumnStackTemplate(order=["I0", "I1", "I2"]))
        assert positions["I2"] == Point(0, 2000)
        assert parent.instance("I2").transform.dy == 2000

    def test_template_with_unknown_slot_raises(self):
        parent = LayoutCell("parent")
        parent.add_instance("I0", self._child())
        placer = HierarchicalPlacer()
        with pytest.raises(PlacementError):
            placer.place_with_template(parent, ColumnStackTemplate(order=["nope"]))

    def test_optimizer_placement_produces_legal_result(self):
        parent = LayoutCell("parent", boundary=Rect(0, 0, 12000, 12000))
        child = self._child()
        for i in range(4):
            parent.add_instance(f"I{i}", child)
        nets = [PlacementNet("n01", terminals=[("I0", "P"), ("I1", "P")]),
                PlacementNet("n23", terminals=[("I2", "P"), ("I3", "P")])]
        placer = HierarchicalPlacer(GridPlacer(GridPlacerConfig(
            initial_temperature=5e4, moves_per_temperature=50, seed=3)))
        result = placer.place_with_optimizer(parent, nets=nets)
        assert result.legal

    def test_place_dispatches_on_template(self):
        parent = LayoutCell("parent")
        parent.add_instance("I0", self._child())
        placer = HierarchicalPlacer()
        positions = placer.place(parent, template=ColumnStackTemplate(order=["I0"]))
        assert positions == {"I0": Point(0, 0)}

    def test_keeps_child_internals(self):
        # The child's own pin geometry must be untouched by parent placement.
        parent = LayoutCell("parent")
        child = self._child()
        parent.add_instance("I0", child)
        HierarchicalPlacer().place_with_template(
            parent, ColumnStackTemplate(order=["I0"], x_offset=5000))
        assert child.pin("P").rect == Rect(0, 400, 100, 600)
