"""Unit tests for yield analysis, SPICE testbench generation and LEF export."""

import pytest

from repro.errors import FlowError, LayoutError, SimulationError
from repro.arch.spec import ACIMDesignSpec
from repro.flow.netlist_gen import TemplateNetlistGenerator
from repro.flow.testbench import TestbenchConfig, TestbenchGenerator
from repro.layout.lef_export import write_macro_lef, write_tech_lef
from repro.netlist.spice import parse_spice
from repro.sim.yield_analysis import (
    MismatchYieldAnalyzer,
    yield_across_unit_capacitance,
)


class TestYieldAnalysis:
    SPEC = ACIMDesignSpec(64, 8, 4, 3)

    def test_distribution_statistics_consistent(self):
        result = MismatchYieldAnalyzer(self.SPEC, seed=5).run(
            snr_spec_db=0.0, instances=8, trials_per_instance=80)
        assert result.instances == 8
        assert len(result.per_instance_snr_db) == 8
        assert result.snr_min_db <= result.snr_mean_db <= result.snr_max_db
        assert result.snr_std_db >= 0

    def test_trivial_spec_gives_full_yield(self):
        result = MismatchYieldAnalyzer(self.SPEC, seed=5).run(
            snr_spec_db=-20.0, instances=6, trials_per_instance=60)
        assert result.yield_fraction == pytest.approx(1.0)
        assert result.meets_target(0.99)

    def test_impossible_spec_gives_zero_yield(self):
        result = MismatchYieldAnalyzer(self.SPEC, seed=5).run(
            snr_spec_db=60.0, instances=6, trials_per_instance=60)
        assert result.yield_fraction == pytest.approx(0.0)
        assert not result.meets_target()

    def test_reproducible_for_fixed_seed(self):
        a = MismatchYieldAnalyzer(self.SPEC, seed=11).run(
            snr_spec_db=5.0, instances=5, trials_per_instance=50)
        b = MismatchYieldAnalyzer(self.SPEC, seed=11).run(
            snr_spec_db=5.0, instances=5, trials_per_instance=50)
        assert a.per_instance_snr_db == b.per_instance_snr_db

    def test_capacitance_sweep_never_hurts_mean_snr(self):
        results = yield_across_unit_capacitance(
            self.SPEC, snr_spec_db=5.0,
            capacitances=[0.25e-15, 4e-15],
            instances=6, trials_per_instance=60)
        assert len(results) == 2
        assert results[1].snr_mean_db >= results[0].snr_mean_db - 1.0

    def test_invalid_arguments(self):
        analyzer = MismatchYieldAnalyzer(self.SPEC)
        with pytest.raises(SimulationError):
            analyzer.run(snr_spec_db=0.0, instances=1)
        with pytest.raises(SimulationError):
            analyzer.run(snr_spec_db=0.0, instances=4, trials_per_instance=5)
        with pytest.raises(SimulationError):
            yield_across_unit_capacitance(self.SPEC, 0.0, capacitances=[-1e-15])


class TestTestbenchGenerator:
    @pytest.fixture(scope="class")
    def macro(self, cell_library):
        return TemplateNetlistGenerator(cell_library).generate(
            ACIMDesignSpec(16, 4, 4, 2))

    def test_testbench_contains_required_sections(self, macro):
        spec = ACIMDesignSpec(16, 4, 4, 2)
        text = TestbenchGenerator().generate(spec, macro)
        assert ".TRAN" in text
        assert "VVDD VDD 0" in text
        assert "XDUT" in text
        assert ".MEAS TRAN rbl_settled" in text
        assert text.rstrip().endswith(".END")

    def test_structural_part_reparses(self, macro):
        spec = ACIMDesignSpec(16, 4, 4, 2)
        text = TestbenchGenerator().generate(spec, macro)
        circuits = parse_spice(text)
        assert macro.name in circuits
        assert "sram8t" in circuits

    def test_activation_pattern_applied(self, macro):
        spec = ACIMDesignSpec(16, 4, 4, 2)
        config = TestbenchConfig(activation_pattern=(1, 0))
        text = TestbenchGenerator(config=config).generate(spec, macro)
        assert "VXIN0 XIN0 0 0.9" in text
        assert "VXIN1 XIN1 0 0" in text

    def test_comparison_measurements_per_bit(self, macro):
        spec = ACIMDesignSpec(16, 4, 4, 2)
        text = TestbenchGenerator().generate(spec, macro)
        assert "comp_bit0" in text and "comp_bit1" in text
        assert "comp_bit2" not in text

    def test_write_to_file(self, macro, tmp_path):
        spec = ACIMDesignSpec(16, 4, 4, 2)
        path = TestbenchGenerator().write(spec, macro, tmp_path / "tb.sp")
        assert path.exists()
        assert path.read_text().startswith("* EasyACIM testbench")

    def test_invalid_config(self):
        with pytest.raises(FlowError):
            TestbenchConfig(cycles=0)
        with pytest.raises(FlowError):
            TestbenchConfig(activation_pattern=(2, 0))


class TestLefExport:
    def test_tech_lef_lists_routing_layers_and_vias(self, technology, tmp_path):
        text = write_tech_lef(technology, tmp_path / "tech.lef")
        for layer in technology.routing_layers:
            assert f"LAYER {layer.name}" in text
        assert "VIA VIA12 DEFAULT" in text
        assert text.rstrip().endswith("END LIBRARY")

    def test_macro_lef_has_size_pins_and_obs(self, technology, cell_library, tmp_path):
        layout = cell_library.layout("sram8t")
        text = write_macro_lef(layout, technology, tmp_path / "sram.lef")
        assert "MACRO sram8t" in text
        assert "SIZE 2.0000 BY" in text
        assert "PIN RWL" in text and "PIN VDD" in text
        assert "OBS" in text

    def test_supply_pins_marked_power_and_ground(self, technology, cell_library, tmp_path):
        layout = cell_library.layout("comparator")
        text = write_macro_lef(layout, technology, tmp_path / "comp.lef")
        assert "USE POWER ;" in text
        assert "USE GROUND ;" in text

    def test_generated_macro_lef(self, technology, cell_library, tmp_path):
        from repro.flow.layout_gen import LayoutGenerator

        report = LayoutGenerator(cell_library).generate(
            ACIMDesignSpec(16, 4, 4, 2), route_column=False)
        text = write_macro_lef(report.layout, technology, tmp_path / "macro.lef")
        assert f"MACRO {report.layout.name}" in text

    def test_empty_cell_rejected(self, technology, tmp_path):
        from repro.layout.layout import LayoutCell

        with pytest.raises(LayoutError):
            write_macro_lef(LayoutCell("empty"), technology, tmp_path / "x.lef")
