"""Property-based tests on the physical-design substrate (router, placer, GDS).

These complement tests/test_properties.py (which covers geometry, Pareto
dominance and the estimation model) with invariants of the layout-facing
engines: routed nets must actually connect their pins through contiguous
grid nodes, placements must stay legal, and GDSII round-trips must preserve
geometry for arbitrary rectangle sets.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.layout.geometry import Point, Rect
from repro.layout.gdsii import read_gds, write_gds
from repro.layout.grid import GridNode, RoutingGrid
from repro.layout.layout import LayoutCell
from repro.placement.grid_placer import GridPlacer, GridPlacerConfig
from repro.placement.netmodel import PlacementNet, PlacementObject, PlacementProblem
from repro.routing.router import GridRouter, RoutingRequest
from repro.technology.tech import generic28

_TECH = generic28()

# ---------------------------------------------------------------------------
# Router connectivity invariants
# ---------------------------------------------------------------------------

pin_coords = st.tuples(
    st.integers(min_value=0, max_value=4000),
    st.integers(min_value=0, max_value=4000),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pins=st.lists(pin_coords, min_size=2, max_size=5, unique=True),
       layer=st.integers(min_value=0, max_value=2))
def test_routed_net_is_connected_and_covers_all_pins(pins, layer):
    grid = RoutingGrid(Rect(0, 0, 4000, 4000), _TECH.routing_layers[:3],
                       pitch=200, allow_off_direction=True)
    router = GridRouter(grid, _TECH)
    request = RoutingRequest(
        "net", pins=tuple((Point(x, y), layer) for x, y in pins))
    result = router.route([request])
    assert result.complete
    route = result.routes["net"]
    nodes = set(route.nodes)
    # Every pin lands on a node of the route.
    for x, y in pins:
        node = grid.point_to_node(Point(x, y), layer)
        assert node in nodes
    # The node set is connected under 6-neighbourhood (grid adjacency).
    start = next(iter(nodes))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for dx, dy, dl in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                           (0, 0, 1), (0, 0, -1)):
            neighbor = GridNode(current.x + dx, current.y + dy, current.layer + dl)
            if neighbor in nodes and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert seen == nodes


# ---------------------------------------------------------------------------
# Placer legality invariants
# ---------------------------------------------------------------------------

object_sizes = st.lists(
    st.tuples(st.integers(min_value=400, max_value=1500),
              st.integers(min_value=400, max_value=1500)),
    min_size=2, max_size=7,
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=object_sizes, seed=st.integers(min_value=0, max_value=100))
def test_grid_placer_produces_legal_in_region_placements(sizes, seed):
    region = Rect(0, 0, 12_000, 12_000)
    problem = PlacementProblem(region)
    for index, (width, height) in enumerate(sizes):
        problem.add_object(PlacementObject(f"obj{index}", width, height))
    for index in range(len(sizes) - 1):
        problem.add_net(PlacementNet(f"n{index}", terminals=[
            (f"obj{index}", "p"), (f"obj{index + 1}", "p")]))
    config = GridPlacerConfig(initial_temperature=2e4, cooling_rate=0.75,
                              moves_per_temperature=40, seed=seed)
    result = GridPlacer(config).place(problem)
    assert result.legal
    assert problem.all_inside_region()
    assert result.hpwl >= 0


# ---------------------------------------------------------------------------
# GDSII round-trip invariants
# ---------------------------------------------------------------------------

layer_names = st.sampled_from(["M1", "M2", "M3", "DIFF", "POLY"])
rect_values = st.tuples(
    st.integers(min_value=-50_000, max_value=50_000),
    st.integers(min_value=-50_000, max_value=50_000),
    st.integers(min_value=1, max_value=5_000),
    st.integers(min_value=1, max_value=5_000),
)


@settings(max_examples=25, deadline=None)
@given(shapes=st.lists(st.tuples(layer_names, rect_values), min_size=1, max_size=12))
def test_gds_roundtrip_preserves_arbitrary_rectangles(tmp_path_factory, shapes):
    cell = LayoutCell("prop_cell")
    expected = []
    for layer, (x, y, width, height) in shapes:
        rect = Rect.from_size(x, y, width, height)
        cell.add_shape(layer, rect)
        expected.append((layer, rect))
    path = tmp_path_factory.mktemp("gds") / "prop.gds"
    write_gds(cell, path, _TECH)
    rebuilt = read_gds(path, _TECH)["prop_cell"]
    recovered = [(shape.layer, shape.rect) for shape in rebuilt.shapes]

    def key(entry):
        layer, rect = entry
        return (layer, rect.x_lo, rect.y_lo, rect.x_hi, rect.y_hi)

    assert sorted(recovered, key=key) == sorted(expected, key=key)
