"""Tests of the persistent shared-memory worker pool and its edge cases.

Covers the ISSUE 6 satellite list: shared-memory edge cases (empty batch,
single-spec batch, batch larger than the arena), worker crash mid-chunk
(typed error with the failed shard ranges, no hang), orphan prevention
when the parent dies hard, the break-even chunk clamp and the timing
splits in :class:`~repro.engine.EngineStats`.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec
from repro.engine import EvaluationCache, EvaluationEngine
from repro.engine.engine import DISPATCH_OVERHEAD_SECONDS
from repro.engine.shm import SharedArena
from repro.engine.workers import PersistentWorkerPool
from repro.errors import EngineError, SpecificationError, WorkerCrashError
from repro.model.estimator import ACIMEstimator, METRIC_FIELDS


def _fresh_process_engine(workers: int = 2) -> EvaluationEngine:
    """A process engine with a private cache (no shared-cache hits)."""
    return EvaluationEngine("process", workers=workers, cache=EvaluationCache())


def _force_pool_path(engine: EvaluationEngine) -> None:
    """Make every batch clear the break-even inline-serial shortcut."""
    engine._cost_per_eval = 1.0  # 1 s/eval => break-even size 1


class TestSharedArena:
    def test_publish_collect_roundtrip(self):
        batch = SpecBatch.enumerate(1024)
        with SharedArena(initial_rows=8) as arena:
            ref = arena.publish(batch)
            assert ref.rows == len(batch)
            assert ref.capacity >= len(batch)
            # Write recognizable per-metric values through the raw view
            # and read them back through collect().
            for index in range(len(METRIC_FIELDS)):
                arena._result_view[index, :ref.rows] = index + 0.5
            columns = arena.collect(ref.rows)
            for index, name in enumerate(METRIC_FIELDS):
                assert columns[name].shape == (ref.rows,)
                assert np.all(columns[name] == index + 0.5)

    def test_grows_geometrically_with_fresh_segment_names(self):
        with SharedArena(initial_rows=4) as arena:
            small = arena.publish(SpecBatch.from_spec(ACIMDesignSpec(64, 16, 2, 4)))
            assert arena.capacity == 4
            big_batch = SpecBatch.enumerate(4096)
            assert len(big_batch) > arena.capacity
            big = arena.publish(big_batch)
            assert arena.capacity >= len(big_batch)
            # A grown arena lives in *new* segments; workers detect the
            # name change and re-attach.
            assert big.spec_name != small.spec_name
            published = np.stack(
                [arena._spec_view[i, :big.rows] for i in range(4)]
            )
            expected = np.stack(big_batch.columns())
            assert np.array_equal(published, expected)

    def test_empty_batch_publishes(self):
        empty = SpecBatch(height=[], width=[], local_array_size=[], adc_bits=[])
        with SharedArena(initial_rows=4) as arena:
            ref = arena.publish(empty)
            assert ref.rows == 0
            assert arena.collect(0)[METRIC_FIELDS[0]].shape == (0,)

    def test_close_is_idempotent(self):
        arena = SharedArena()
        arena.publish(SpecBatch.from_spec(ACIMDesignSpec(64, 16, 2, 4)))
        arena.close()
        arena.close()
        assert arena.capacity == 0


class TestProcessBackendEdgeCases:
    def test_empty_spec_list(self):
        with _fresh_process_engine() as engine:
            assert engine.evaluate_specs(ACIMEstimator(), []) == []
            # No work => no pool was ever spawned.
            assert engine._pool is None

    def test_single_spec_batch(self):
        estimator = ACIMEstimator()
        spec = ACIMDesignSpec(64, 16, 2, 4)
        with _fresh_process_engine() as engine:
            (got,) = engine.evaluate_specs(estimator, [spec])
        expected = estimator.evaluate(spec)
        for field in METRIC_FIELDS:
            assert getattr(got, field) == pytest.approx(
                getattr(expected, field), rel=1e-12, abs=0.0
            )

    def test_batch_larger_than_arena(self):
        estimator = ACIMEstimator()
        batch = SpecBatch.enumerate(4096)
        with _fresh_process_engine() as engine:
            _force_pool_path(engine)
            engine._arena = SharedArena(initial_rows=4)
            assert len(batch) > engine._arena._initial_rows
            got = engine.evaluate_specs(estimator, batch)
            assert engine._arena.capacity >= len(batch)
        expected = estimator.evaluate_batch(batch)
        assert [m.spec for m in got] == [m.spec for m in expected]
        for g, e in zip(got, expected):
            for field in METRIC_FIELDS:
                assert getattr(g, field) == getattr(e, field)

    def test_infeasible_spec_raises_in_parent_without_hanging(self):
        # L > H in one row: the worker's batch validation must ship the
        # SpecificationError back instead of wedging the submission.
        feasible = SpecBatch.enumerate(1024)
        bad = SpecBatch.from_spec(ACIMDesignSpec(4, 256, 8, 1))
        batch = SpecBatch.concat([feasible, bad])
        with _fresh_process_engine() as engine:
            _force_pool_path(engine)
            with pytest.raises(SpecificationError):
                engine.evaluate_specs(ACIMEstimator(), batch)
            # The pool survives an evaluation error (only crashes retire it)
            # and serves the next submission.
            engine.cache.clear()
            results = engine.evaluate_specs(ACIMEstimator(), feasible)
            assert len(results) == len(feasible)


class TestWorkerCrash:
    def test_crash_mid_submission_raises_typed_error_with_ranges(self):
        # Deterministic mid-chunk crash: drive the pool directly with its
        # only worker already dead, so the submitted ranges can never
        # complete.  The parent must raise (typed, with the unfinished
        # shard ranges) instead of hanging on the result queue.
        estimator = ACIMEstimator()
        batch = SpecBatch.enumerate(2048)
        with _fresh_process_engine(workers=1) as engine:
            _force_pool_path(engine)
            engine.evaluate_specs(estimator, SpecBatch.enumerate(1024))
            pool = engine._pool
            (pid,) = pool.worker_pids
            os.kill(pid, signal.SIGKILL)
            ref = engine._ensure_arena().publish(batch)
            half = len(batch) // 2
            ranges = [(0, half), (half, len(batch))]
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.run(ranges, ref, estimator.parameters, "vectorized")
            error = excinfo.value
            assert error.code == "worker-crash"
            assert isinstance(error, EngineError)
            assert set(error.failed_ranges) <= set(ranges)
            assert error.failed_ranges  # at least one unfinished shard
            assert error.as_dict()["failed_ranges"] == [
                list(r) for r in error.failed_ranges
            ]

    def test_engine_replaces_a_crashed_pool(self):
        # A worker lost between submissions is healed transparently: the
        # engine notices the unhealthy pool and rebuilds it.
        estimator = ACIMEstimator()
        with _fresh_process_engine(workers=1) as engine:
            _force_pool_path(engine)
            engine.evaluate_specs(estimator, SpecBatch.enumerate(1024))
            (pid,) = engine._pool.worker_pids
            os.kill(pid, signal.SIGKILL)
            _wait_until(lambda: not _pid_running(pid))
            _force_pool_path(engine)
            results = engine.evaluate_specs(
                estimator, SpecBatch.enumerate(4096)
            )
            assert len(results) == len(SpecBatch.enumerate(4096))
            assert engine._pool.worker_pids != [pid]


class TestWorkerLifecycle:
    def test_workers_are_daemons_and_close_reaps_them(self):
        pool = PersistentWorkerPool(2)
        assert all(proc.daemon for proc in pool._procs)
        pids = pool.worker_pids
        assert all(_pid_running(pid) for pid in pids)
        pool.close()
        pool.close()  # idempotent
        assert not any(_pid_running(pid) for pid in pids)

    def test_engine_close_tears_down_pool_and_arena(self):
        engine = _fresh_process_engine()
        _force_pool_path(engine)
        engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(1024))
        pids = engine._pool.worker_pids
        engine.close()
        assert engine._pool is None and engine._arena is None
        assert not any(_pid_running(pid) for pid in pids)

    def test_hard_killed_parent_leaves_no_orphans(self, tmp_path):
        # A child interpreter builds a pool and dies with os._exit (so
        # neither atexit nor the daemon teardown runs); its workers must
        # notice the vanished parent and exit on their own.
        script = (
            "import os, sys\n"
            "from repro.engine.workers import PersistentWorkerPool\n"
            "pool = PersistentWorkerPool(2)\n"
            "print(' '.join(str(p) for p in pool.worker_pids), flush=True)\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(root)
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        ).stdout
        pids = [int(token) for token in output.split()]
        assert len(pids) == 2
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if not any(_pid_running(pid) for pid in pids):
                return
            time.sleep(0.2)
        pytest.fail(f"orphaned workers survived their parent: {pids}")


class TestAutoChunker:
    def test_break_even_clamp_replaces_degenerate_one_item_chunks(self):
        engine = EvaluationEngine("process", workers=8, cache=EvaluationCache())
        try:
            # The pre-fix behavior: 20 // (8 * 4) == 0 -> 1-item chunks.
            engine._cost_per_eval = 2e-5  # a measured analytic-path cost
            floor = engine._break_even_size()
            assert floor == -(-DISPATCH_OVERHEAD_SECONDS // 2e-5)
            assert engine._plan_chunk(40) >= floor
            # Sub-break-even tails merge into their predecessor.
            ranges = engine._ranges(60, engine._plan_chunk(60))
            assert all(hi - lo >= floor for lo, hi in ranges)
            assert ranges[0][0] == 0 and ranges[-1][1] == 60
        finally:
            engine.close()

    def test_expensive_evaluations_lower_the_floor(self):
        engine = EvaluationEngine("process", workers=4, cache=EvaluationCache())
        try:
            engine._cost_per_eval = 0.01  # 10 ms/eval: every item ships
            assert engine._break_even_size() == 1
            assert engine._plan_chunk(100) <= 25  # all workers stay busy
        finally:
            engine.close()

    def test_generic_map_chunks_are_clamped(self):
        engine = EvaluationEngine("process", workers=8, cache=EvaluationCache())
        try:
            assert engine._chunk(20) > 1
            assert engine._chunk(20) <= 20
        finally:
            engine.close()

    def test_explicit_chunk_size_still_wins(self):
        engine = EvaluationEngine(
            "process", workers=4, chunk_size=7, cache=EvaluationCache()
        )
        try:
            assert engine._chunk(1000) == 7
            assert engine._plan_chunk(1000) == 7
        finally:
            engine.close()


class TestTimingSplits:
    def test_process_backend_reports_all_three_splits(self):
        with _fresh_process_engine() as engine:
            _force_pool_path(engine)
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(4096))
            stats = engine.stats.as_dict()
        assert stats["worker_seconds"] > 0
        assert stats["serialize_seconds"] > 0
        assert stats["dispatch_seconds"] >= 0

    def test_serial_backend_reports_worker_seconds_only(self):
        with EvaluationEngine("serial", cache=EvaluationCache()) as engine:
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(1024))
            stats = engine.stats.as_dict()
        assert stats["worker_seconds"] > 0
        assert stats["dispatch_seconds"] == 0.0
        assert stats["serialize_seconds"] == 0.0

    def test_splits_are_deltas_in_since(self):
        with EvaluationEngine("serial", cache=EvaluationCache()) as engine:
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(1024))
            baseline = engine.stats.snapshot()
            engine.cache.clear()
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(1024))
            delta = engine.stats.since(baseline)
        assert 0 < delta.worker_seconds < engine.stats.worker_seconds

    def test_engine_stats_table_shows_splits(self):
        from repro.flow.report import engine_stats_table

        with EvaluationEngine("serial", cache=EvaluationCache()) as engine:
            engine.evaluate_specs(
                ACIMEstimator(), [ACIMDesignSpec(64, 16, 2, 4)]
            )
            (row,) = engine_stats_table(engine.stats.as_dict())
        assert {"dispatch_s", "worker_s", "serialize_s"} <= set(row)


def _wait_until(predicate, timeout: float = 10.0) -> None:
    """Poll ``predicate`` until true or ``timeout`` seconds pass."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached within timeout")


def _pid_running(pid: int) -> bool:
    """True while ``pid`` is a live (non-zombie) process."""
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False
