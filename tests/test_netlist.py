"""Unit tests for the netlist package (devices, circuits, SPICE, traversal)."""

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    Capacitor,
    Circuit,
    DeviceType,
    Mosfet,
    MosType,
    Pin,
    PinDirection,
    Resistor,
    count_devices,
    count_leaf_instances,
    flatten,
    hierarchy_depth,
    iter_hierarchy,
    parse_spice,
    write_spice,
)
from repro.netlist.spice import format_si, parse_si
from repro.netlist.traversal import total_capacitance, total_transistor_width


def _inverter() -> Circuit:
    circuit = Circuit("inv", pins=[
        Pin("IN", PinDirection.INPUT),
        Pin("OUT", PinDirection.OUTPUT),
        Pin("VDD", PinDirection.SUPPLY),
        Pin("VSS", PinDirection.SUPPLY),
    ])
    circuit.add_device(Mosfet("P1", mos_type=MosType.PMOS, width=200e-9,
                              terminals={"D": "OUT", "G": "IN", "S": "VDD", "B": "VDD"}))
    circuit.add_device(Mosfet("N1", mos_type=MosType.NMOS, width=100e-9,
                              terminals={"D": "OUT", "G": "IN", "S": "VSS", "B": "VSS"}))
    return circuit


class TestDevices:
    def test_mosfet_type(self):
        nmos = Mosfet("M1", mos_type=MosType.NMOS)
        pmos = Mosfet("M2", mos_type=MosType.PMOS)
        assert nmos.device_type is DeviceType.NMOS
        assert pmos.device_type is DeviceType.PMOS

    def test_mosfet_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Mosfet("M1", width=-1e-9)
        with pytest.raises(ValueError):
            Mosfet("M1", fingers=0)

    def test_mosfet_gate_capacitance_scales_with_width(self):
        narrow = Mosfet("M1", width=100e-9)
        wide = Mosfet("M2", width=400e-9)
        assert wide.gate_capacitance() == pytest.approx(4 * narrow.gate_capacitance())

    def test_connect_and_full_connectivity(self):
        m = Mosfet("M1")
        for terminal, net in zip(("D", "G", "S", "B"), ("a", "b", "c", "d")):
            m.connect(terminal, net)
        assert m.is_fully_connected()
        assert m.nets() == ("a", "b", "c", "d")

    def test_connect_unknown_terminal(self):
        with pytest.raises(ValueError):
            Mosfet("M1").connect("X", "net")

    def test_capacitor_and_resistor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("C1", capacitance=0.0)
        with pytest.raises(ValueError):
            Resistor("R1", resistance=-5.0)

    def test_capacitor_type(self):
        assert Capacitor("C1").device_type is DeviceType.CAPACITOR


class TestCircuit:
    def test_pins_create_nets(self):
        circuit = _inverter()
        assert circuit.has_net("IN")
        assert circuit.net("VDD").is_power

    def test_duplicate_pin_rejected(self):
        circuit = Circuit("c", pins=[Pin("A")])
        with pytest.raises(NetlistError):
            circuit.add_pin(Pin("A"))

    def test_duplicate_device_rejected(self):
        circuit = _inverter()
        with pytest.raises(NetlistError):
            circuit.add_device(Mosfet("P1"))

    def test_instance_connection_checks_pins(self):
        parent = Circuit("top")
        child = _inverter()
        with pytest.raises(NetlistError):
            parent.add_instance("X1", child, connections={"NOPE": "n1"})

    def test_self_instantiation_rejected(self):
        circuit = Circuit("c")
        with pytest.raises(NetlistError):
            circuit.add_instance("X1", circuit)

    def test_net_fanout(self):
        circuit = _inverter()
        assert circuit.net_fanout("OUT") == 2
        assert circuit.net_fanout("IN") == 2

    def test_validate_catches_unconnected_instance(self):
        parent = Circuit("top", pins=[Pin("VDD", PinDirection.SUPPLY)])
        parent.add_instance("X1", _inverter(), connections={"VDD": "VDD"})
        with pytest.raises(NetlistError):
            parent.validate()

    def test_validate_passes_for_complete_circuit(self):
        circuit = _inverter()
        circuit.validate()

    def test_dangling_nets(self):
        circuit = _inverter()
        circuit.add_net("floating")
        assert "floating" in circuit.dangling_nets()
        assert "OUT" not in circuit.dangling_nets()

    def test_is_leaf(self):
        assert _inverter().is_leaf()
        parent = Circuit("top")
        parent.add_instance("X1", _inverter(), connections={
            "IN": "a", "OUT": "b", "VDD": "VDD", "VSS": "VSS"})
        assert not parent.is_leaf()


class TestSpiceFormatting:
    def test_format_si_femto(self):
        assert format_si(1e-15) == "1f"

    def test_format_si_nano(self):
        assert format_si(30e-9) == "30n"

    def test_parse_si_suffixes(self):
        assert parse_si("1f") == pytest.approx(1e-15)
        assert parse_si("30n") == pytest.approx(30e-9)
        assert parse_si("2.5u") == pytest.approx(2.5e-6)
        assert parse_si("1meg") == pytest.approx(1e6)

    def test_parse_si_plain_and_exponent(self):
        assert parse_si("100") == pytest.approx(100.0)
        assert parse_si("1e-9") == pytest.approx(1e-9)

    def test_parse_si_rejects_garbage(self):
        with pytest.raises(NetlistError):
            parse_si("abc")


class TestSpiceRoundtrip:
    def test_write_contains_subckt(self):
        text = write_spice(_inverter())
        assert ".SUBCKT inv IN OUT VDD VSS" in text
        assert text.strip().endswith(".END")

    def test_roundtrip_flat_circuit(self):
        text = write_spice(_inverter())
        circuits = parse_spice(text)
        assert "inv" in circuits
        rebuilt = circuits["inv"]
        assert len(rebuilt.devices) == 2
        assert {p.name for p in rebuilt.pins} == {"IN", "OUT", "VDD", "VSS"}

    def test_roundtrip_hierarchy(self):
        top = Circuit("buf", pins=[Pin("A"), Pin("Y"), Pin("VDD", PinDirection.SUPPLY),
                                   Pin("VSS", PinDirection.SUPPLY)])
        inv = _inverter()
        top.add_instance("I1", inv, {"IN": "A", "OUT": "mid", "VDD": "VDD", "VSS": "VSS"})
        top.add_instance("I2", inv, {"IN": "mid", "OUT": "Y", "VDD": "VDD", "VSS": "VSS"})
        circuits = parse_spice(write_spice(top))
        assert set(circuits) == {"buf", "inv"}
        assert len(circuits["buf"].instances) == 2
        circuits["buf"].validate()

    def test_roundtrip_preserves_device_sizes(self):
        circuits = parse_spice(write_spice(_inverter()))
        widths = sorted(d.width for d in circuits["inv"].devices)
        assert widths == pytest.approx([100e-9, 200e-9])

    def test_roundtrip_capacitor(self):
        circuit = Circuit("capcell", pins=[Pin("A"), Pin("B")])
        circuit.add_device(Capacitor("C1", capacitance=2e-15,
                                     terminals={"PLUS": "A", "MINUS": "B"}))
        rebuilt = parse_spice(write_spice(circuit))["capcell"]
        assert rebuilt.devices[0].capacitance == pytest.approx(2e-15)

    def test_parse_rejects_undefined_subcircuit_reference(self):
        text = """
.SUBCKT top A B
XU1 A B missing_cell
.ENDS top
.END
"""
        with pytest.raises(NetlistError):
            parse_spice(text)

    def test_parse_handles_continuation_lines(self):
        text = """
.SUBCKT cell A B VDD VSS
MP1 B A VDD VDD pch
+ W=200n L=30n
.ENDS cell
"""
        circuits = parse_spice(text)
        assert circuits["cell"].devices[0].width == pytest.approx(200e-9)

    def test_supply_pins_guessed_from_names(self):
        circuits = parse_spice(write_spice(_inverter()))
        assert circuits["inv"].pin("VDD").direction is PinDirection.SUPPLY


class TestTraversal:
    def _tree(self):
        top = Circuit("top", pins=[Pin("VDD", PinDirection.SUPPLY),
                                   Pin("VSS", PinDirection.SUPPLY)])
        inv = _inverter()
        mid = Circuit("mid", pins=[Pin("VDD", PinDirection.SUPPLY),
                                   Pin("VSS", PinDirection.SUPPLY)])
        for i in range(3):
            mid.add_instance(f"I{i}", inv, {"IN": f"a{i}", "OUT": f"b{i}",
                                            "VDD": "VDD", "VSS": "VSS"})
        for j in range(2):
            top.add_instance(f"M{j}", mid, {"VDD": "VDD", "VSS": "VSS"})
        return top, mid, inv

    def test_hierarchy_depth(self):
        top, _mid, inv = self._tree()
        assert hierarchy_depth(inv) == 1
        assert hierarchy_depth(top) == 3

    def test_iter_hierarchy_paths(self):
        top, _, _ = self._tree()
        paths = [path for path, _circuit in iter_hierarchy(top)]
        assert "top" in paths
        assert "top/M0/I2" in paths

    def test_count_leaf_instances(self):
        top, _, _ = self._tree()
        assert count_leaf_instances(top) == {"inv": 6}

    def test_count_devices(self):
        top, _, _ = self._tree()
        counts = count_devices(top)
        assert counts[DeviceType.NMOS] == counts[DeviceType.PMOS]

    def test_flatten_paths(self):
        top, _, _ = self._tree()
        flat = flatten(top)
        assert "M1/I0/P1" in flat
        assert len(flat) == 12

    def test_total_capacitance_and_width(self):
        circuit = Circuit("c", pins=[Pin("A"), Pin("B")])
        circuit.add_device(Capacitor("C1", capacitance=1e-15,
                                     terminals={"PLUS": "A", "MINUS": "B"}))
        circuit.add_device(Mosfet("M1", width=200e-9, fingers=2,
                                  terminals={"D": "A", "G": "B", "S": "B", "B": "B"}))
        assert total_capacitance(circuit) == pytest.approx(1e-15)
        assert total_transistor_width(circuit) == pytest.approx(400e-9)
