"""Unit tests for the routing package (A*, tracks, net router, hierarchical)."""

import pytest

from repro.errors import RoutingError
from repro.layout.geometry import Point, Rect
from repro.layout.grid import GridNode, RoutingGrid
from repro.layout.layout import LayoutCell
from repro.routing import (
    AStarSearch,
    GridRouter,
    HierarchicalRouter,
    LogicalNet,
    PredefinedTrack,
    RoutingRequest,
    TrackPlan,
    power_track_plan,
)
from repro.routing.tracks import sar_control_track_plan


@pytest.fixture
def routing_grid(technology):
    return RoutingGrid(Rect(0, 0, 5000, 5000), technology.routing_layers[:3],
                       pitch=100, allow_off_direction=True)


class TestAStar:
    def test_straight_path(self, routing_grid):
        search = AStarSearch(routing_grid)
        result = search.search([GridNode(0, 10, 0)], [GridNode(20, 10, 0)])
        assert result.found
        assert result.path[0] == GridNode(0, 10, 0)
        assert result.path[-1] == GridNode(20, 10, 0)
        assert len(result.path) == 21

    def test_path_changes_layer_when_needed(self, routing_grid):
        # Layer 0 (M1) is horizontal-preferred; going straight up requires a
        # via to the vertical layer unless off-direction is allowed cheaper.
        search = AStarSearch(routing_grid)
        result = search.search([GridNode(10, 0, 0)], [GridNode(10, 30, 1)])
        assert result.found
        assert any(node.layer == 1 for node in result.path)

    def test_detours_around_obstacles(self, routing_grid):
        for y in range(0, 40):
            routing_grid.add_obstacle(GridNode(25, y, 0))
            routing_grid.add_obstacle(GridNode(25, y, 1))
            routing_grid.add_obstacle(GridNode(25, y, 2))
        search = AStarSearch(routing_grid)
        result = search.search([GridNode(10, 10, 0)], [GridNode(40, 10, 0)])
        assert result.found
        assert all(node.x != 25 or node.y >= 40 for node in result.path)

    def test_unreachable_target(self, technology):
        grid = RoutingGrid(Rect(0, 0, 1000, 1000), technology.routing_layers[:1],
                           pitch=100)
        # Wall across the full grid on the single layer.
        for y in range(grid.rows):
            grid.add_obstacle(GridNode(5, y, 0))
        result = AStarSearch(grid).search([GridNode(0, 0, 0)], [GridNode(9, 0, 0)])
        assert not result.found

    def test_multi_source_uses_nearest(self, routing_grid):
        search = AStarSearch(routing_grid)
        sources = [GridNode(0, 0, 0), GridNode(18, 10, 0)]
        result = search.search(sources, [GridNode(20, 10, 0)])
        assert result.found
        assert result.path[0] == GridNode(18, 10, 0)

    def test_empty_inputs(self, routing_grid):
        assert not AStarSearch(routing_grid).search([], [GridNode(0, 0, 0)]).found


class TestTracks:
    def test_track_rect_orientation(self):
        extent = Rect(0, 0, 10000, 10000)
        horizontal = PredefinedTrack("VDD", "M5", "horizontal", 500, 200)
        vertical = PredefinedTrack("VSS", "M6", "vertical", 800, 200)
        assert horizontal.to_rect(extent) == Rect(0, 400, 10000, 600)
        assert vertical.to_rect(extent) == Rect(700, 0, 900, 10000)

    def test_invalid_orientation(self):
        with pytest.raises(RoutingError):
            PredefinedTrack("VDD", "M5", "diagonal", 0, 100)

    def test_power_plan_interleaves_nets(self, technology):
        plan = power_track_plan(Rect(0, 0, 20000, 40000), technology)
        assert set(plan.nets()) == {"VDD", "VSS", "VCM"}
        assert len(plan.tracks) >= 3

    def test_power_plan_realize_adds_shapes(self, technology):
        cell = LayoutCell("macro", boundary=Rect(0, 0, 20000, 40000))
        plan = power_track_plan(cell.boundary, technology)
        rects = plan.realize(cell)
        assert len(rects) == len(plan.tracks)
        assert len(cell.shapes) == len(plan.tracks)

    def test_sar_control_plan_has_two_tracks_per_bit(self, technology):
        plan = sar_control_track_plan(Rect(0, 0, 50000, 50000), technology, adc_bits=4)
        assert len(plan.tracks) == 8
        assert "P3" in plan.nets() and "N0" in plan.nets()

    def test_track_plan_blocks_grid(self, technology, routing_grid):
        plan = TrackPlan(extent=routing_grid.region)
        plan.add(PredefinedTrack("VDD", "M2", "vertical", 2500, 100))
        blocked = plan.block(routing_grid, technology)
        assert blocked > 0


class TestGridRouter:
    def test_two_pin_net(self, technology, routing_grid):
        router = GridRouter(routing_grid, technology)
        request = RoutingRequest("n1", pins=((Point(100, 100), 0), (Point(3000, 100), 0)))
        result = router.route([request])
        assert result.complete
        route = result.routes["n1"]
        assert route.wirelength > 0
        assert route.wires

    def test_multi_pin_net_connects_all_pins(self, technology, routing_grid):
        router = GridRouter(routing_grid, technology)
        pins = tuple((Point(500 * i + 100, 900), 1) for i in range(5))
        result = router.route([RoutingRequest("bus", pins=pins)])
        assert result.complete
        nodes = {(n.x, n.y) for n in result.routes["bus"].nodes}
        for point, _layer in pins:
            node = routing_grid.point_to_node(point, 1)
            assert (node.x, node.y) in nodes

    def test_routed_nets_block_each_other(self, technology, routing_grid):
        router = GridRouter(routing_grid, technology)
        requests = [
            RoutingRequest("a", pins=((Point(0, 1000), 0), (Point(4000, 1000), 0))),
            RoutingRequest("b", pins=((Point(0, 1100), 0), (Point(4000, 1100), 0))),
        ]
        result = router.route(requests)
        assert result.complete
        nodes_a = set(result.routes["a"].nodes)
        nodes_b = set(result.routes["b"].nodes)
        assert not nodes_a & nodes_b

    def test_vias_emitted_for_layer_changes(self, technology, routing_grid):
        router = GridRouter(routing_grid, technology)
        request = RoutingRequest("v", pins=((Point(1000, 1000), 0), (Point(1000, 3000), 2)))
        result = router.route([request])
        assert result.complete
        assert result.routes["v"].vias
        assert result.via_count >= 1

    def test_request_needs_two_pins(self):
        with pytest.raises(RoutingError):
            RoutingRequest("n", pins=((Point(0, 0), 0),))

    def test_critical_nets_routed_first(self, technology, routing_grid):
        router = GridRouter(routing_grid, technology)
        requests = [
            RoutingRequest("long", pins=((Point(0, 0), 0), (Point(4900, 4900), 1))),
            RoutingRequest("short_critical", critical=True,
                           pins=((Point(2000, 2000), 0), (Point(2400, 2000), 0))),
        ]
        result = router.route(requests)
        assert result.complete


class TestHierarchicalRouter:
    def _parent_with_children(self):
        child = LayoutCell("block", boundary=Rect(0, 0, 2000, 1000))
        child.add_pin("P", "M2", Rect(900, 800, 1100, 1000))
        parent = LayoutCell("parent")
        from repro.layout.geometry import Transform
        parent.add_instance("B0", child, Transform(0, 0))
        parent.add_instance("B1", child, Transform(6000, 0))
        parent.add_instance("B2", child, Transform(3000, 5000))
        parent.boundary = Rect(0, 0, 10000, 8000)
        return parent

    def test_routes_logical_net_between_instances(self, technology):
        parent = self._parent_with_children()
        router = HierarchicalRouter(technology, pitch=200)
        report = router.route_cell(parent, [
            LogicalNet("shared", terminals=(("B0", "P"), ("B1", "P"), ("B2", "P"))),
        ])
        assert report.result.complete
        assert any(shape.net == "shared" for shape in parent.shapes)

    def test_missing_pin_raises(self, technology):
        parent = self._parent_with_children()
        router = HierarchicalRouter(technology, pitch=200)
        with pytest.raises(RoutingError):
            router.route_cell(parent, [
                LogicalNet("bad", terminals=(("B0", "NOPE"), ("B1", "P"))),
            ])

    def test_track_plan_realised_during_routing(self, technology):
        parent = self._parent_with_children()
        plan = power_track_plan(parent.boundary, technology)
        router = HierarchicalRouter(technology, pitch=200)
        report = router.route_cell(parent, [
            LogicalNet("n", terminals=(("B0", "P"), ("B1", "P"))),
        ], track_plan=plan)
        assert report.blocked_nodes > 0
        assert any(shape.net == "VDD" for shape in parent.shapes)

    def test_empty_cell_raises(self, technology):
        router = HierarchicalRouter(technology)
        with pytest.raises(RoutingError):
            router.route_cell(LayoutCell("empty"), [])
