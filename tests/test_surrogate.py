"""Tests of the surrogate-screened evaluation layer: model determinism,
cold-store fallbacks, off-mode bit-identity, refine resume, the store's
surrogate table and the covering-index query plans."""

import json
import random
import sqlite3

import numpy as np
import pytest

from repro.api import (
    CampaignRequest,
    ExploreRequest,
    Session,
    SessionConfig,
)
from repro.arch.batch import SpecBatch
from repro.dse.explorer import _ExplorerCore
from repro.dse.nsga2 import NSGA2Config
from repro.dse.pareto import pareto_front, pareto_front_mask
from repro.dse.problem import ACIMDesignProblem
from repro.dse.surrogate import (
    MIN_FIT_ROWS,
    SurrogateModel,
    SurrogateScreener,
    refine_seed_genomes,
    training_fingerprint,
)
from repro.engine import EvaluationEngine
from repro.engine.screen import ScreeningEvaluator
from repro.errors import OptimizationError, StoreError
from repro.flow.report import engine_stats_table
from repro.model.estimator import ACIMEstimator, METRIC_FIELDS
from repro.store.result_store import RANK_METRICS, ResultStore

CONFIG = NSGA2Config(population_size=16, generations=6, seed=3)
ARRAY_SIZE = 1024


def _pareto_signature(designs):
    return [(design.spec.as_tuple(), design.objectives) for design in designs]


def _training_data(array_size=4096):
    """Exact metric rows of a feasible grid, as (columns, metrics array)."""
    batch = SpecBatch.enumerate(array_size)
    engine = EvaluationEngine("serial")
    metrics_list = engine.evaluate_specs(ACIMEstimator(), batch)
    engine.close()
    metrics = np.array(
        [[getattr(m, field) for field in METRIC_FIELDS] for m in metrics_list]
    )
    return batch, metrics


# ---------------------------------------------------------------------------
# pareto_front_mask
# ---------------------------------------------------------------------------


class TestParetoFrontMask:
    def test_matches_pairwise_reference(self):
        rng = random.Random(11)
        points = [
            tuple(rng.uniform(0, 4) for _ in range(4)) for _ in range(300)
        ]
        # Inject exact duplicates: both copies must be retained, exactly
        # as the O(n^2) reference keeps them.
        points += points[:20]
        mask = pareto_front_mask(points)
        reference = set(pareto_front(points))
        assert set(np.flatnonzero(mask).tolist()) == reference

    def test_degenerate_inputs(self):
        assert pareto_front_mask(np.empty((0, 4))).tolist() == []
        assert pareto_front_mask([(1.0, 2.0)]).tolist() == [True]
        with pytest.raises(OptimizationError):
            pareto_front_mask(np.zeros(3))


# ---------------------------------------------------------------------------
# SurrogateModel
# ---------------------------------------------------------------------------


class TestSurrogateModel:
    def test_fit_is_deterministic_over_row_order(self):
        batch, metrics = _training_data()
        order = list(range(len(batch)))
        random.Random(5).shuffle(order)
        # Canonical order is the screener's job: both fits see the rows
        # sorted by spec tuple, regardless of discovery order.
        tuples = batch.as_tuples()
        canonical = sorted(range(len(tuples)), key=lambda i: tuples[i])
        shuffled_then_sorted = sorted(order, key=lambda i: tuples[i])
        assert canonical == shuffled_then_sorted
        arr = np.asarray([tuples[i] for i in canonical], dtype=np.int64)
        columns = (arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
        a = SurrogateModel.fit(columns, metrics[canonical])
        b = SurrogateModel.fit(columns, metrics[shuffled_then_sorted])
        assert a.coefficients.tobytes() == b.coefficients.tobytes()
        assert a.residual_std.tobytes() == b.residual_std.tobytes()

    def test_json_round_trip_is_exact(self):
        batch, metrics = _training_data()
        model = SurrogateModel.fit(batch.columns(), metrics, fingerprint="f")
        payload = json.loads(json.dumps(model.to_dict()))
        restored = SurrogateModel.from_dict(payload)
        assert restored.coefficients.tobytes() == model.coefficients.tobytes()
        assert restored.normal_inverse.tobytes() == (
            model.normal_inverse.tobytes()
        )
        assert restored.fingerprint == "f"
        predictions, uncertainty = model.predict(batch.columns())
        restored_p, restored_u = restored.predict(batch.columns())
        assert predictions.tobytes() == restored_p.tobytes()
        assert uncertainty.tobytes() == restored_u.tobytes()

    def test_prediction_quality_on_training_grid(self):
        # A quadratic fit over log features models the analytic estimator
        # well enough to rank candidates: require decent log-space R^2.
        batch, metrics = _training_data()
        model = SurrogateModel.fit(batch.columns(), metrics)
        predictions, _ = model.predict(batch.columns())
        index = METRIC_FIELDS.index("tops_per_watt")
        target = np.log(metrics[:, index])
        residual = target - predictions[:, index]
        r2 = 1.0 - residual.var() / target.var()
        assert r2 > 0.9

    def test_too_few_rows_rejected(self):
        ones = np.ones(1, dtype=np.int64)
        with pytest.raises(OptimizationError):
            SurrogateModel.fit((ones, ones, ones, ones), np.ones((1, 8)))

    def test_invalid_payload_rejected(self):
        with pytest.raises(OptimizationError):
            SurrogateModel.from_dict({"format": 1})
        with pytest.raises(OptimizationError):
            SurrogateModel.from_dict({"format": 99})

    def test_fingerprint_is_order_and_duplicate_independent(self):
        rows = [(64, 16, 4, 3), (128, 8, 2, 4), (32, 32, 8, 2)]
        a = training_fingerprint(rows)
        b = training_fingerprint(list(reversed(rows)) + rows[:1])
        assert a == b
        assert a != training_fingerprint(rows[:2])


# ---------------------------------------------------------------------------
# ScreeningEvaluator
# ---------------------------------------------------------------------------


class TestScreeningEvaluator:
    def test_cold_evaluator_passes_everything_through(self):
        engine = EvaluationEngine("serial")
        evaluator = ScreeningEvaluator(engine, ACIMEstimator())
        batch = SpecBatch.enumerate(ARRAY_SIZE)
        keep = evaluator.select(batch, [])
        assert keep.tolist() == list(range(len(batch)))
        assert evaluator.screened_candidates == 0
        assert evaluator.exact_candidates == len(batch)
        assert evaluator.model() is None
        engine.close()

    def test_warm_evaluator_screens_to_budget(self):
        engine = EvaluationEngine("serial")
        evaluator = ScreeningEvaluator(
            engine, ACIMEstimator(), screen_fraction=0.25,
            min_fit_rows=MIN_FIT_ROWS,
        )
        batch = SpecBatch.enumerate(4096)
        assert len(batch) >= MIN_FIT_ROWS
        metrics_list = engine.evaluate_specs(ACIMEstimator(), batch)
        evaluator.observe(batch, metrics_list)
        assert evaluator.ready
        keep = evaluator.select(batch, [])
        assert 0 < len(keep) < len(batch)
        assert sorted(keep.tolist()) == keep.tolist()
        assert evaluator.screened_candidates == len(batch) - len(keep)
        # Selection is deterministic and RNG-free.
        again = ScreeningEvaluator(
            engine, ACIMEstimator(), screen_fraction=0.25
        )
        again.observe(batch, metrics_list)
        assert again.select(batch, []).tolist() == keep.tolist()
        engine.close()

    def test_invalid_fraction_rejected(self):
        engine = EvaluationEngine("serial")
        with pytest.raises(ValueError):
            ScreeningEvaluator(engine, ACIMEstimator(), screen_fraction=0.0)
        with pytest.raises(ValueError):
            ScreeningEvaluator(engine, ACIMEstimator(), screen_fraction=1.5)
        engine.close()

    def test_screener_state_restores_bit_identically(self):
        engine = EvaluationEngine("serial")
        estimator = ACIMEstimator()
        evaluator = ScreeningEvaluator(engine, estimator)
        batch = SpecBatch.enumerate(4096)
        evaluator.observe(batch, engine.evaluate_specs(estimator, batch))
        screener = SurrogateScreener(evaluator)
        state = json.loads(json.dumps(screener.state()))

        restored = SurrogateScreener(ScreeningEvaluator(engine, estimator))
        restored.restore_state(state, engine, estimator)
        original = evaluator.model()
        rebuilt = restored.evaluator.model()
        assert original.fingerprint == rebuilt.fingerprint
        assert original.coefficients.tobytes() == (
            rebuilt.coefficients.tobytes()
        )
        assert restored.evaluator.select(batch, []).tolist() == (
            evaluator.select(batch, []).tolist()
        )
        engine.close()


# ---------------------------------------------------------------------------
# Explorer integration
# ---------------------------------------------------------------------------


class TestScreenedExploration:
    def test_off_mode_is_bit_identical_to_plain_explorer(self):
        plain = _ExplorerCore(config=CONFIG).explore(ARRAY_SIZE)
        off = _ExplorerCore(config=CONFIG, surrogate="off").explore(ARRAY_SIZE)
        assert _pareto_signature(off.pareto_set) == (
            _pareto_signature(plain.pareto_set)
        )
        assert off.surrogate == {}

    def test_small_population_never_reaches_fit_threshold(self):
        # The whole run stays below MIN_FIT_ROWS unique designs, so the
        # cold-store fallback must make screening a pure pass-through:
        # the front is bit-identical to off mode and nothing is screened.
        config = NSGA2Config(population_size=8, generations=3, seed=3)
        off = _ExplorerCore(config=config).explore(ARRAY_SIZE)
        screened = _ExplorerCore(config=config, surrogate="screen").explore(
            ARRAY_SIZE
        )
        assert screened.surrogate["training_rows"] < MIN_FIT_ROWS
        assert screened.surrogate["screened_candidates"] == 0
        assert _pareto_signature(screened.pareto_set) == (
            _pareto_signature(off.pareto_set)
        )

    def test_screened_run_is_deterministic_and_screens(self):
        config = NSGA2Config(population_size=24, generations=8, seed=3)
        first = _ExplorerCore(
            config=config, surrogate="screen", screen_fraction=0.4
        ).explore(4096)
        second = _ExplorerCore(
            config=config, surrogate="screen", screen_fraction=0.4
        ).explore(4096)
        assert first.surrogate["screened_candidates"] > 0
        assert first.evaluations < _ExplorerCore(config=config).explore(
            4096
        ).evaluations
        assert _pareto_signature(first.pareto_set) == (
            _pareto_signature(second.pareto_set)
        )
        assert first.surrogate == second.surrogate

    def test_refine_without_store_rejected(self):
        with pytest.raises(StoreError):
            _ExplorerCore(config=CONFIG, surrogate="refine").explore(
                ARRAY_SIZE
            )

    def test_refine_seeds_come_from_store_pareto(self, tmp_path):
        with ResultStore(tmp_path / "seed.sqlite") as store:
            engine = EvaluationEngine("serial", store=store)
            explorer = _ExplorerCore(config=CONFIG, engine=engine, store=store)
            baseline = explorer.explore(ARRAY_SIZE)
            engine.flush_store()
            problem = ACIMDesignProblem(ARRAY_SIZE, engine=engine)
            seeds = refine_seed_genomes(store, problem, limit=8)
            assert 0 < len(seeds) <= 8
            decoded = {problem.decode(genome).as_tuple() for genome in seeds}
            # Seeds are the store's cross-campaign Pareto set: every one
            # decodes to a previously evaluated design (the store front can
            # legitimately exceed the final NSGA-II population's front).
            stored = {
                entry.spec.as_tuple()
                for entry in store.query(limit=None)
            }
            assert decoded <= stored
            assert {d.spec.as_tuple() for d in baseline.pareto_set} & decoded
            # An empty store degrades to no seeds, not an error.
            with ResultStore(tmp_path / "empty.sqlite") as empty:
                assert refine_seed_genomes(empty, problem) == []
            engine.close()


# ---------------------------------------------------------------------------
# Campaign integration: kill/resume bit-identity in refine mode
# ---------------------------------------------------------------------------


class TestRefineCampaignResume:
    REQUEST = dict(
        array_size=4096, population=24, generations=6, seed=3,
        surrogate="refine", screen_fraction=0.4,
    )

    def _front(self, store_path, interrupt):
        with Session(SessionConfig(store=str(store_path))) as session:
            if interrupt:
                result = session.submit(CampaignRequest(
                    name="c", action="run", stop_after=3, **self.REQUEST
                ))
                assert result.payload["campaign_status"] == "interrupted"
                result = session.submit(
                    CampaignRequest(name="c", action="resume")
                )
            else:
                result = session.submit(
                    CampaignRequest(name="c", action="run", **self.REQUEST)
                )
            assert result.payload["campaign_status"] == "completed"
            return result.payload["pareto"], result.payload.get("surrogate")

    def test_interrupted_refine_resume_is_bit_identical(self, tmp_path):
        uninterrupted, surrogate = self._front(tmp_path / "a.sqlite", False)
        resumed, _ = self._front(tmp_path / "b.sqlite", True)
        assert surrogate["mode"] == "refine"
        assert resumed == uninterrupted

    def test_kill_between_sessions_resumes_identically(self, tmp_path):
        uninterrupted, _ = self._front(tmp_path / "a.sqlite", False)
        store_path = tmp_path / "killed.sqlite"
        # The "kill": the first session dies after 3 generations; a brand
        # new process-equivalent session resumes from the checkpoint.
        with Session(SessionConfig(store=str(store_path))) as session:
            session.submit(CampaignRequest(
                name="c", action="run", stop_after=3, **self.REQUEST
            ))
        with Session(SessionConfig(store=str(store_path))) as session:
            result = session.submit(
                CampaignRequest(name="c", action="resume")
            )
        assert result.payload["pareto"] == uninterrupted

    def test_run_metrics_carry_surrogate_columns(self, tmp_path):
        with Session(SessionConfig(store=str(tmp_path / "m.sqlite"))) as s:
            s.submit(CampaignRequest(
                name="plain", action="run", array_size=4096,
                population=16, generations=3, seed=3,
            ))
            s.submit(CampaignRequest(
                name="scr", action="run", array_size=4096,
                population=24, generations=6, seed=3,
                surrogate="screen", screen_fraction=0.4,
            ))
            plain_rows = s.store.list_run_metrics("plain")
            screened_rows = s.store.list_run_metrics("scr")
        # Plain campaigns' rows stay byte-identical to earlier releases.
        assert "surrogate" not in plain_rows[-1]["metrics"]
        metrics = screened_rows[-1]["metrics"]
        assert metrics["surrogate"] == "screen"
        assert metrics["exact_evals"] > 0
        assert 0.0 <= metrics["front_recall"] <= 1.0
        per_generation = metrics["generation_metrics"]
        assert len(per_generation) == 6
        assert all("front_recall" in row for row in per_generation)

    def test_surrogate_mode_validation(self):
        with pytest.raises(Exception):
            ExploreRequest(surrogate="bogus").validate()
        with pytest.raises(Exception):
            ExploreRequest(surrogate="screen", screen_fraction=0.0).validate()
        with pytest.raises(Exception):
            ExploreRequest(surrogate="screen", method="exhaustive").validate()
        with pytest.raises(Exception):
            CampaignRequest(
                name="x", action="resume", surrogate="screen"
            ).validate()


# ---------------------------------------------------------------------------
# Store: surrogates table, covering indexes, fast-path query
# ---------------------------------------------------------------------------


class TestSurrogateStore:
    def test_put_and_latest_round_trip(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            model = {"format": 1, "coefficients": [[1.5]]}
            version = store.put_surrogate("digest", 10, "fp1", model)
            assert version == 1
            # Same fingerprint: idempotent no-op, version unchanged.
            assert store.put_surrogate("digest", 10, "fp1", model) == 1
            # New fingerprint: version bumps.
            assert store.put_surrogate("digest", 12, "fp2", model) == 2
            latest = store.latest_surrogate("digest")
            assert latest["version"] == 2
            assert latest["training_fingerprint"] == "fp2"
            assert latest["training_rows"] == 12
            assert latest["model"] == model
            assert store.latest_surrogate("other") is None
            assert store.surrogate_count() == 2
            assert store.stats()["surrogates"] == 2

    def test_screening_evaluator_reuses_persisted_model(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            engine = EvaluationEngine("serial", store=store)
            estimator = ACIMEstimator()
            batch = SpecBatch.enumerate(4096)
            first = ScreeningEvaluator(
                engine, estimator, store=store
            )
            first.observe(batch, engine.evaluate_specs(estimator, batch))
            model = first.model()
            assert first.persist() == 1
            engine.flush_store()
            # A new evaluator seeded from the store sees the same training
            # set, so the fingerprint matches and the persisted model is
            # reused verbatim instead of refit.
            second = ScreeningEvaluator(engine, estimator, store=store)
            assert second.training_rows == len(batch)
            reused = second.model()
            assert reused.fingerprint == model.fingerprint
            assert reused.coefficients.tobytes() == (
                model.coefficients.tobytes()
            )
            engine.close()

    def test_training_rows_scan_uses_covering_index(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as store:
            engine = EvaluationEngine("serial", store=store)
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(1024))
            engine.close()
        conn = sqlite3.connect(path)
        plan = " ".join(
            row[3] for row in conn.execute(
                "EXPLAIN QUERY PLAN "
                "SELECT height, width, local, adc_bits FROM evaluations "
                "WHERE params_digest = 'x' ORDER BY created_at"
            )
        )
        conn.close()
        assert "idx_evaluations_params_created" in plan
        assert "TEMP B-TREE" not in plan

    def test_rank_query_plan_uses_index_no_temp_btree(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        for metric, descending in RANK_METRICS.items():
            direction = "DESC" if descending else "ASC"
            order = ", ".join(
                f"{column} {direction}"
                for column in (metric, "height", "width", "local", "adc_bits")
            )
            plan = " ".join(
                row[3] for row in conn.execute(
                    f"EXPLAIN QUERY PLAN SELECT * FROM evaluations "
                    f"ORDER BY {order}"
                )
            )
            assert f"idx_eval_rank_{metric}" in plan, metric
            assert "TEMP B-TREE" not in plan, metric
        conn.close()

    def test_fast_path_matches_python_path(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            engine = EvaluationEngine("serial", store=store)
            engine.evaluate_specs(ACIMEstimator(), SpecBatch.enumerate(4096))
            engine.flush_store()
            for rank_by in ("tops_per_watt", "snr_db", "area_f2_per_bit"):
                fast, fast_total = store.query_page(
                    rank_by=rank_by, pareto_only=False
                )
                # Reference: the Python sort key on the same rows.
                expected = sorted(
                    fast,
                    key=lambda e: (
                        getattr(e.metrics, rank_by), e.spec.as_tuple()
                    ),
                    reverse=RANK_METRICS[rank_by],
                )
                assert [e.spec.as_tuple() for e in fast] == (
                    [e.spec.as_tuple() for e in expected]
                )
                # Pagination slices the same total ordering.
                page, total = store.query_page(
                    rank_by=rank_by, pareto_only=False, limit=5, offset=3
                )
                assert total == fast_total
                assert [e.spec.as_tuple() for e in page] == (
                    [e.spec.as_tuple() for e in fast[3:8]]
                )
            engine.close()


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


class TestSurrogateReporting:
    def test_engine_stats_table_columns_are_conditional(self):
        plain = engine_stats_table({"backend": "serial", "evaluations": 4})
        assert "surrogate_exact" not in plain[0]
        screened = engine_stats_table({
            "backend": "serial", "evaluations": 4,
            "surrogate_exact": 3, "surrogate_screened": 9,
        })
        assert screened[0]["surrogate_exact"] == 3
        assert screened[0]["surrogate_screened"] == 9
        assert list(screened[0])[:len(plain[0])] == list(plain[0])
