"""Tests of the observability layer: tracing, metrics, exporters, surfacing.

Covers the ``repro.obs`` primitives themselves, the byte-identity of the
registry-backed ``EngineStats``, cross-process span collection, the
``run_metrics`` store table, the per-request metrics delta on
``ApiResult``, the CLI trace plumbing, and the overhead bound the
always-on instrumentation must respect while tracing is disabled.
"""

import json
import time

import pytest

from repro.api import ApiResult, EstimateRequest, QueryRequest, Session, SessionConfig
from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec
from repro.cli import main
from repro.engine import EvaluationCache, EvaluationEngine
from repro.flow.report import engine_stats_table, format_table
from repro.model.estimator import ACIMEstimator
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    SIZE_BUCKETS,
    Span,
    Tracer,
    configure_tracing,
    counters_only,
    export_chrome,
    export_jsonl,
    get_tracer,
    span_to_trace_event,
    worker_span_record,
)
from repro.reporting.observability import (
    campaign_trend_table,
    metrics_table,
    run_metrics_table,
)
from repro.store.result_store import ResultStore


@pytest.fixture(autouse=True)
def _global_tracer_off():
    """Tests that enable the process-wide tracer must not leak it."""
    yield
    configure_tracing(enabled=False)


def _fresh_serial_engine(**kwargs) -> EvaluationEngine:
    return EvaluationEngine("serial", cache=EvaluationCache(max_size=100_000),
                            **kwargs)


def _spanned_square(n: int) -> int:
    """Picklable ``engine.map`` payload that opens a span in the worker."""
    with get_tracer().span("worker.square", n=n):
        return n * n


# ---------------------------------------------------------------------------
# Metrics instruments and registry
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo.count")
        counter.inc()
        counter.add(4)
        assert counter.value == 5
        assert Counter.delta(counter.snapshot_value(), 2) == 3
        assert Counter.delta(counter.snapshot_value(), None) == 5

    def test_gauge_is_a_level(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("demo.level")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        # The delta view reports the level, not a difference.
        assert Gauge.delta(gauge.snapshot_value(), 7) == 3

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("demo.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 99.0):
            histogram.observe(value)
        snap = histogram.snapshot_value()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(100.05)
        assert snap["buckets"] == [[0.1, 1], [1.0, 2], ["inf", 1]]

    def test_histogram_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("demo.bad", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("demo.empty", bounds=())

    def test_histogram_delta_diffs_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("demo.seconds", bounds=(1.0,))
        histogram.observe(0.5)
        baseline = histogram.snapshot_value()
        histogram.observe(0.5)
        histogram.observe(5.0)
        delta = Histogram.delta(histogram.snapshot_value(), baseline)
        assert delta["count"] == 2
        assert delta["buckets"] == [[1.0, 1], ["inf", 1]]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("demo.name")
        with pytest.raises(ValueError):
            registry.gauge("demo.name")
        with pytest.raises(ValueError):
            registry.histogram("demo.name")

    def test_snapshot_and_since(self):
        registry = MetricsRegistry()
        registry.counter("a").add(2)
        baseline = registry.snapshot()
        registry.counter("a").add(3)
        registry.counter("b").inc()  # created after the baseline
        delta = registry.since(baseline)
        assert delta == {"a": 3, "b": 1}

    def test_counters_only_drops_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.1)
        assert counters_only(registry.snapshot()) == {"a": 1}

    def test_value_and_names(self):
        registry = MetricsRegistry()
        registry.counter("a").add(4)
        assert registry.value("a") == 4
        assert registry.value("missing", default=-1) == -1
        assert registry.names() == ["a"]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_span_is_the_shared_null_handle(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span("engine.map", count=3)
        assert handle is NULL_SPAN
        with handle as span:
            span.set("k", "v")  # must be a silent no-op
        assert len(tracer.finished_spans()) == 0

    def test_nesting_links_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        spans = {span.name: span for span in tracer.finished_spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_span_timestamps_are_monotonic(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            time.sleep(0.001)
        (span,) = tracer.finished_spans()
        assert 0 < span.start_ns <= span.end_ns
        assert span.duration_ns > 0

    def test_thread_local_stacks(self):
        import threading

        tracer = Tracer(enabled=True)
        seen = {}

        def worker():
            with tracer.span("thread.child") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's stack starts empty: its span is a root.
        assert seen["parent"] is None

    def test_buffer_is_bounded(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 3

    def test_adopt_reparents_worker_records(self):
        tracer = Tracer(enabled=True)
        record = worker_span_record("engine.chunk", 10, 20, lo=0, hi=4)
        with tracer.span("engine.dispatch") as dispatch:
            parent_id = dispatch.span_id
        adopted = tracer.adopt([record], parent_id=parent_id)
        assert adopted[0].parent_id == parent_id
        assert adopted[0].attrs == {"lo": 0, "hi": 4}
        assert adopted[0].start_ns == 10 and adopted[0].end_ns == 20
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["engine.dispatch", "engine.chunk"]

    def test_configure_tracing_resets_the_global_tracer(self):
        tracer = configure_tracing(enabled=True)
        assert tracer is get_tracer()
        first_id = tracer.trace_id
        assert first_id is not None
        with tracer.span("x"):
            pass
        tracer = configure_tracing(enabled=True)
        assert tracer.trace_id is not None and tracer.trace_id != first_id
        assert len(tracer.finished_spans()) == 0
        configure_tracing(enabled=False)
        assert not get_tracer().enabled
        assert get_tracer().span("y") is NULL_SPAN


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_trace() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("engine.map", count=2):
        with tracer.span("engine.chunk", where="inline"):
            pass
    return tracer


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = _sample_trace()
        path = tmp_path / "trace.jsonl"
        export_jsonl(tracer.finished_spans(), path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        by_name = {record["name"]: record for record in records}
        assert (by_name["engine.chunk"]["parent_id"]
                == by_name["engine.map"]["span_id"])
        for record in records:
            assert 0 < record["start_ns"] <= record["end_ns"]
            assert record["duration_ns"] >= 0
            assert isinstance(record["attrs"], dict)

    def test_chrome_round_trip(self, tmp_path):
        tracer = _sample_trace()
        path = tmp_path / "trace.json"
        export_chrome(tracer.finished_spans(), path, trace_id=tracer.trace_id)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["trace_id"] == tracer.trace_id
        events = document["traceEvents"]
        assert len(events) == 2
        ids = {event["args"]["span_id"] for event in events}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids
        categories = {event["cat"] for event in events}
        assert categories == {"engine"}

    def test_chrome_event_shape(self):
        span = Span("store.flush", attrs={"rows": 3},
                    start_ns=1_000, end_ns=4_000, pid=7, tid=9)
        event = span_to_trace_event(span)
        assert event["name"] == "store.flush"
        assert event["cat"] == "store"
        assert event["ts"] == pytest.approx(1.0)
        assert event["dur"] == pytest.approx(3.0)
        assert event["pid"] == 7 and event["tid"] == 9
        assert event["args"]["rows"] == 3

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "nested" / "trace.json"
        export_chrome(_sample_trace().finished_spans(), path)
        assert path.exists()
        assert [p.name for p in path.parent.iterdir()] == ["trace.json"]

    def test_empty_exports_are_valid(self, tmp_path):
        jsonl = tmp_path / "empty.jsonl"
        chrome = tmp_path / "empty.json"
        export_jsonl([], jsonl)
        export_chrome([], chrome)
        assert jsonl.read_text() == ""
        assert json.loads(chrome.read_text())["traceEvents"] == []


# ---------------------------------------------------------------------------
# EngineStats byte-identity and engine instrumentation
# ---------------------------------------------------------------------------


class TestEngineStatsByteIdentity:
    def test_zero_activity_dict_is_byte_identical(self):
        engine = _fresh_serial_engine()
        stats = engine.stats.as_dict()
        expected = {
            "backend": "serial",
            "workers": 1,
            "batches": 0,
            "tasks": 0,
            "evaluations": 0,
            "cache_hits": 0,
            "store_hits": 0,
            "store_writes": 0,
            "busy_seconds": 0.0,
            "dispatch_seconds": 0.0,
            "worker_seconds": 0.0,
            "serialize_seconds": 0.0,
            "evaluations_per_second": 0.0,
            "surrogate_exact": 0,
            "surrogate_screened": 0,
        }
        assert stats == expected
        assert list(stats) == list(expected)
        # The registry holds plain ints; the EngineStats view must coerce
        # the timing fields back to float so json output stays identical.
        for key, value in expected.items():
            assert type(stats[key]) is type(value), key
        assert json.dumps(stats) == json.dumps(expected)
        engine.close()

    def test_counts_flow_through_the_registry(self):
        engine = _fresh_serial_engine()
        estimator = ACIMEstimator()
        specs = [ACIMDesignSpec(128, 128, 4, 3), ACIMDesignSpec(128, 128, 8, 3)]
        engine.evaluate_specs(estimator, specs)
        engine.evaluate_specs(estimator, specs)  # second pass: cache hits
        stats = engine.stats
        assert stats.batches == 2
        assert stats.tasks == 4
        assert stats.evaluations == 2
        assert stats.cache_hits == 2
        assert engine.metrics.value("engine.eval.computed") == 2
        assert engine.metrics.value("engine.cache.hit") == 2
        batch_size = engine.metrics.value("engine.eval.batch_size")
        assert batch_size["count"] == 2
        engine.close()

    def test_snapshot_since_still_works(self):
        engine = _fresh_serial_engine()
        estimator = ACIMEstimator()
        engine.evaluate_specs(estimator, [ACIMDesignSpec(128, 128, 4, 3)])
        baseline = engine.stats.snapshot()
        engine.evaluate_specs(estimator, [ACIMDesignSpec(128, 128, 8, 3)])
        delta = engine.stats.since(baseline)
        assert delta.batches == 1 and delta.tasks == 1
        engine.close()


class TestEngineTracing:
    def test_serial_batch_produces_nested_spans(self):
        configure_tracing(enabled=True)
        engine = _fresh_serial_engine()
        engine.evaluate_specs(ACIMEstimator(), [ACIMDesignSpec(128, 128, 4, 3)])
        engine.close()
        spans = {span.name: span for span in get_tracer().finished_spans()}
        assert "engine.evaluate_specs" in spans
        assert "engine.chunk" in spans
        chunk = spans["engine.chunk"]
        assert chunk.attrs["where"] == "inline"
        assert chunk.parent_id == spans["engine.evaluate_specs"].span_id

    def test_process_backend_ships_worker_spans(self):
        configure_tracing(enabled=True)
        engine = EvaluationEngine(
            "process", workers=2, cache=EvaluationCache(max_size=100_000),
            chunk_size=64,
        )
        batch = SpecBatch.enumerate(16 * 1024)
        try:
            engine.evaluate_specs(ACIMEstimator(), batch)
        finally:
            engine.close()
        spans = get_tracer().finished_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        assert "engine.dispatch" in by_name
        chunks = by_name.get("engine.chunk", [])
        worker_chunks = [s for s in chunks if s.attrs.get("where") == "worker"]
        assert worker_chunks, "no worker-recorded chunk spans shipped back"
        dispatch_ids = {s.span_id for s in by_name["engine.dispatch"]}
        parent_pid = by_name["engine.dispatch"][0].pid
        for span in worker_chunks:
            assert span.parent_id in dispatch_ids
            assert span.pid != parent_pid  # recorded inside the worker
            assert span.start_ns <= span.end_ns

    def test_process_map_ships_item_spans(self):
        configure_tracing(enabled=True)
        engine = EvaluationEngine("process", workers=2)
        try:
            results = engine.map(_spanned_square, list(range(8)), chunk_size=1)
        finally:
            engine.close()
        assert results == [n * n for n in range(8)]
        spans = get_tracer().finished_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        map_ids = {s.span_id for s in by_name["engine.map"]}
        items = by_name.get("engine.map.item", [])
        assert len(items) == 8
        parent_pid = by_name["engine.map"][0].pid
        item_ids = set()
        for item in items:
            assert item.parent_id in map_ids  # re-parented under the map
            assert item.pid != parent_pid  # recorded inside a worker
            item_ids.add(item.span_id)
        # The worker-side hierarchy survives adoption: each inner span
        # still points at its enclosing map-item span.
        inner = by_name.get("worker.square", [])
        assert len(inner) == 8
        for span in inner:
            assert span.parent_id in item_ids
            assert span.attrs["n"] in range(8)

    def test_disabled_tracer_records_nothing(self):
        engine = _fresh_serial_engine()
        engine.evaluate_specs(ACIMEstimator(), [ACIMDesignSpec(128, 128, 4, 3)])
        engine.close()
        assert len(get_tracer().finished_spans()) == 0


class TestEngineClose:
    def test_close_flushes_write_behind_and_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store.sqlite")
        # Large flush size: nothing reaches the store until close().
        engine = EvaluationEngine(
            "serial", cache=EvaluationCache(max_size=1000),
            store=store, store_flush_size=10_000,
        )
        engine.evaluate_specs(ACIMEstimator(), [ACIMDesignSpec(128, 128, 4, 3)])
        assert store.stats()["evaluations"] == 0
        engine.close()
        assert store.stats()["evaluations"] == 1
        engine.close()  # second close must be a clean no-op
        assert store.stats()["evaluations"] == 1
        store.close()


# ---------------------------------------------------------------------------
# Overhead bounds (tracer disabled => near-zero cost)
# ---------------------------------------------------------------------------


class TestOverhead:
    def test_disabled_span_call_is_cheap(self):
        tracer = Tracer(enabled=False)
        calls = 100_000
        started = time.perf_counter()
        for _ in range(calls):
            with tracer.span("hot.path"):
                pass
        elapsed = time.perf_counter() - started
        # Generous absolute bound: the no-op handle must stay far under
        # the microseconds-per-evaluation the engine itself costs.
        assert elapsed / calls < 5e-6

    def test_instrumented_batch_overhead_is_bounded(self):
        """A disabled-tracer batch must not be slower than a traced one.

        The pre-instrumentation engine is gone, so the regression proxy
        compares the permanent instrumentation's two modes on the same
        ~1k-spec grid: with the tracer disabled the batch must complete
        within 5% (plus a fixed noise allowance) of the *traced* run —
        i.e. the always-on hooks cost no more than tracing itself.
        """
        from repro.arch.spec import enumerate_design_space

        specs = [
            spec
            for array_size in (4096, 8192, 16 * 1024, 32 * 1024)
            for spec in enumerate_design_space(array_size)
        ]
        assert len(specs) >= 1000
        estimator = ACIMEstimator()

        def timed_run() -> float:
            engine = _fresh_serial_engine()
            started = time.perf_counter()
            engine.evaluate_specs(estimator, specs)
            elapsed = time.perf_counter() - started
            engine.close()
            return elapsed

        configure_tracing(enabled=False)
        disabled = min(timed_run() for _ in range(3))
        configure_tracing(enabled=True)
        enabled = min(timed_run() for _ in range(3))
        configure_tracing(enabled=False)
        assert disabled <= enabled * 1.05 + 0.010


# ---------------------------------------------------------------------------
# engine_stats_table clamps (satellite fix)
# ---------------------------------------------------------------------------


class TestEngineStatsTableClamp:
    def test_negative_dispatch_renders_zero(self):
        rows = engine_stats_table({
            "backend": "process", "workers": 4,
            "dispatch_seconds": -1e-9, "busy_seconds": 0.5,
            "evaluations": 100, "evaluations_per_second": 200.0,
        })
        assert rows[0]["dispatch_s"] == 0.0
        text = format_table(rows)
        assert "-0.00" not in text and "-1e-09" not in text

    def test_zero_busy_never_divides(self):
        rows = engine_stats_table({
            "backend": "serial", "workers": 1,
            "evaluations": 10, "busy_seconds": 0.0,
        })
        assert rows[0]["evals_per_s"] == 0.0

    def test_missing_rate_recomputed_from_busy(self):
        rows = engine_stats_table({
            "backend": "serial", "workers": 1,
            "evaluations": 100, "busy_seconds": 2.0,
        })
        assert rows[0]["evals_per_s"] == pytest.approx(50.0)

    def test_non_numeric_timings_clamp_to_zero(self):
        rows = engine_stats_table({
            "backend": "serial", "workers": 1,
            "busy_seconds": None, "worker_seconds": "nan?",
            "serialize_seconds": -3.0,
            "evaluations_per_second": -1.0,
        })
        assert rows[0]["busy_s"] == 0.0
        assert rows[0]["worker_s"] == 0.0
        assert rows[0]["serialize_s"] == 0.0
        assert rows[0]["evals_per_s"] == 0.0

    def test_empty_stats_stay_empty(self):
        assert engine_stats_table({}) == []


# ---------------------------------------------------------------------------
# run_metrics store table and campaign integration
# ---------------------------------------------------------------------------


class TestRunMetricsStore:
    def test_round_trip_and_run_index(self, tmp_path):
        store = ResultStore(tmp_path / "store.sqlite")
        store.create_campaign("c1", 1024, {}, "digest", 4)
        assert store.put_run_metrics("c1", {"generations": 2}) == 0
        assert store.put_run_metrics("c1", {"generations": 2}) == 1
        rows = store.list_run_metrics("c1")
        assert [row["run_index"] for row in rows] == [0, 1]
        assert rows[0]["metrics"] == {"generations": 2}
        assert rows[0]["created_at"] > 0
        store.close()

    def test_list_filters_by_campaign(self, tmp_path):
        store = ResultStore(tmp_path / "store.sqlite")
        for name in ("a", "b"):
            store.create_campaign(name, 1024, {}, "digest", 1)
            store.put_run_metrics(name, {"generations": 1})
        assert len(store.list_run_metrics()) == 2
        assert [row["campaign"] for row in store.list_run_metrics("b")] == ["b"]
        store.close()

    def test_campaign_run_records_metrics_snapshot(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            from repro.api import CampaignRequest

            session.submit(CampaignRequest(
                name="nightly", action="run", array_size=1024,
                population=12, generations=3, seed=1,
            ))
            rows = session.store.list_run_metrics("nightly")
        assert len(rows) == 1
        metrics = rows[0]["metrics"]
        assert metrics["status"] == "completed"
        assert metrics["generations"] == 3
        assert metrics["generations_per_second"] >= 0
        assert metrics["backend"] == "serial"
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0


# ---------------------------------------------------------------------------
# ApiResult metrics delta + trace id
# ---------------------------------------------------------------------------


class TestApiSurfacing:
    def test_submit_attaches_metrics_delta(self):
        with Session.from_config(SessionConfig(cache_size=1000)) as session:
            result = session.submit(EstimateRequest(
                height=128, width=128, local_array_size=4, adc_bits=3,
            ))
        assert result.metrics["engine.eval.computed"] == 1
        assert result.metrics["engine.eval.batches"] == 1
        assert result.trace_id is None  # tracing off by default

    def test_submit_attaches_trace_id_when_tracing(self):
        tracer = configure_tracing(enabled=True)
        with Session.from_config(SessionConfig(cache_size=1000)) as session:
            result = session.submit(EstimateRequest(
                height=128, width=128, local_array_size=4, adc_bits=3,
            ))
        assert result.trace_id == tracer.trace_id
        names = {span.name for span in tracer.finished_spans()}
        assert "api.estimate" in names

    def test_result_round_trips_metrics_and_trace_id(self):
        result = ApiResult(
            kind="estimate", status="ok", payload={},
            metrics={"engine.eval.computed": 3}, trace_id="abc-1",
        )
        decoded = ApiResult.from_dict(json.loads(result.to_json()))
        assert decoded.metrics == {"engine.eval.computed": 3}
        assert decoded.trace_id == "abc-1"

    def test_query_payload_lists_run_metrics(self, tmp_path):
        config = SessionConfig(store=str(tmp_path / "store.sqlite"))
        with Session.from_config(config) as session:
            result = session.submit(QueryRequest(what="campaigns"))
        assert result.payload["run_metrics"] == []


# ---------------------------------------------------------------------------
# Reporting tables
# ---------------------------------------------------------------------------


class TestObservabilityTables:
    def test_metrics_table_folds_histograms(self):
        registry = MetricsRegistry()
        registry.counter("engine.cache.hit").add(4)
        registry.histogram("store.put.seconds").observe(0.5)
        registry.histogram("store.put.seconds").observe(1.5)
        rows = metrics_table(registry.snapshot())
        by_name = {row["metric"]: row for row in rows}
        assert by_name["engine.cache.hit"]["sum"] == 4
        histogram = by_name["store.put.seconds"]
        assert histogram["kind"] == "histogram"
        assert histogram["count"] == 2
        assert histogram["mean"] == pytest.approx(1.0)

    def test_run_metrics_table_shape(self):
        rows = run_metrics_table([{
            "campaign": "c", "run_index": 0,
            "metrics": {"status": "completed", "generations": 5,
                        "runtime_seconds": 2.0,
                        "generations_per_second": 2.5,
                        "evaluations": 40, "cache_hit_rate": 0.25,
                        "backend": "serial"},
        }])
        assert rows[0]["gens_per_s"] == 2.5
        assert rows[0]["cache_hit_rate"] == 0.25

    def test_campaign_trend_table_aggregates_runs(self):
        rows = campaign_trend_table([
            {"campaign": "c", "run_index": 0,
             "metrics": {"generations": 4, "runtime_seconds": 2.0,
                         "generations_per_second": 2.0,
                         "cache_hit_rate": 0.1}},
            {"campaign": "c", "run_index": 1,
             "metrics": {"generations": 4, "runtime_seconds": 1.0,
                         "generations_per_second": 4.0,
                         "cache_hit_rate": 0.9}},
        ])
        (row,) = rows
        assert row["runs"] == 2
        assert row["generations"] == 8
        assert row["gens_per_s"] == pytest.approx(8 / 3.0, abs=1e-3)
        assert row["first_gps"] == 2.0 and row["last_gps"] == 4.0
        assert row["first_hit_rate"] == 0.1 and row["last_hit_rate"] == 0.9


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------


class TestCliTrace:
    def test_trace_subcommand_exports_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        exit_code = main([
            "trace", "--trace-out", str(out), "--",
            "estimate", "--height", "128", "--width", "128",
            "--local", "4", "--adc-bits", "3",
        ])
        assert exit_code == 0
        assert "written to" in capsys.readouterr().err
        document = json.loads(out.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert {"api.estimate", "engine.evaluate_specs"} <= names
        assert not get_tracer().enabled  # main() disabled it again

    def test_trace_flag_writes_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        exit_code = main([
            "estimate", "--height", "128", "--width", "128",
            "--local", "4", "--adc-bits", "3", "--trace", str(out),
        ])
        assert exit_code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert any(record["name"] == "api.estimate" for record in records)

    def test_trace_keeps_json_stdout_clean(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        exit_code = main([
            "estimate", "--height", "128", "--width", "128",
            "--local", "4", "--adc-bits", "3",
            "--json", "--trace", str(out),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        document = json.loads(captured.out)  # stdout is pure JSON
        assert document["trace_id"] is not None
        assert document["metrics"]["engine.eval.batches"] == 1
        assert "written to" in captured.err

    def test_trace_without_command_fails(self, capsys):
        assert main(["trace", "--trace-out", "x.json"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_metrics_command_renders_runs(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        main(["campaign", "run", "t", "--store", store, "--array-size", "1024",
              "--population", "12", "--generations", "2"])
        capsys.readouterr()
        exit_code = main(["metrics", "--store", store])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Campaign run metrics" in captured
        assert "gens_per_s" in captured

    def test_metrics_command_campaign_filter(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        main(["campaign", "run", "t", "--store", store, "--array-size", "1024",
              "--population", "12", "--generations", "2"])
        capsys.readouterr()
        assert main(["metrics", "--store", store, "--campaign", "nope"]) == 0
        assert "no recorded run metrics" in capsys.readouterr().out

    def test_campaign_list_shows_trends(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        main(["campaign", "run", "t", "--store", store, "--array-size", "1024",
              "--population", "12", "--generations", "2"])
        capsys.readouterr()
        assert main(["campaign", "list", "--store", store]) == 0
        captured = capsys.readouterr().out
        assert "Run metrics across resumes" in captured
