"""Tests of the multi-tenant serving layer (``repro.serve``).

Covers the job queue's priority/fairness/cancellation semantics and the
token-bucket rate limiter in isolation (deterministic fake clock), then
the full HTTP server over ephemeral ports: submission and result
envelopes, structured error mapping (including the 429 rate-limit
envelope with ``Retry-After``), generation-by-generation campaign
streaming with reconnect-from-cursor, mid-campaign cancellation leaving
a resumable checkpoint, concurrent multi-threaded ``Session.submit``
against the shared engine, and graceful drain-and-shutdown.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import (
    CampaignRequest,
    EstimateRequest,
    QueryRequest,
    Session,
    SessionConfig,
    request_from_dict,
)
from repro.errors import (
    HTTP_STATUS_BY_CODE,
    RateLimitError,
    ReproError,
    RequestError,
    ServeError,
    StoreError,
    http_status_of,
)
from repro.serve import (
    JobQueue,
    ReproServer,
    ServeClient,
    ServeHTTPError,
    ServerConfig,
    TenantRateLimiter,
    TokenBucket,
)

TINY_CAMPAIGN = {
    "kind": "campaign",
    "array_size": 1024,
    "population": 12,
    "generations": 4,
    "seed": 7,
}


@pytest.fixture
def server(tmp_path):
    """A running server over a file-backed store on an ephemeral port."""
    config = ServerConfig(
        port=0,
        workers=2,
        session=SessionConfig(store=str(tmp_path / "serve.sqlite")),
    )
    instance = ReproServer(config).start()
    yield instance
    instance.shutdown()


@pytest.fixture
def client(server):
    return ServeClient(server.url)


# ---------------------------------------------------------------------------
# Job queue semantics (no HTTP involved)
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_priority_then_arrival_order(self):
        queue = JobQueue()
        low = queue.submit("t", {"kind": "estimate"}, priority=0)
        high = queue.submit("t", {"kind": "estimate"}, priority=5)
        mid_a = queue.submit("t", {"kind": "estimate"}, priority=2)
        mid_b = queue.submit("t", {"kind": "estimate"}, priority=2)
        claimed = [queue.claim(timeout=0.1) for _ in range(2)]
        assert [job.id for job in claimed] == [high.id, mid_a.id]
        # per-tenant cap (2) bites now: nothing else claimable until release
        assert queue.claim(timeout=0.05) is None
        high.complete({})
        queue.release(high)
        assert queue.claim(timeout=0.1).id == mid_b.id
        assert low.state == "queued"

    def test_tenant_cap_does_not_starve_other_tenants(self):
        queue = JobQueue(max_per_tenant=1)
        queue.submit("greedy", {"kind": "estimate"}, priority=9)
        queue.submit("greedy", {"kind": "estimate"}, priority=9)
        other = queue.submit("patient", {"kind": "estimate"}, priority=0)
        first = queue.claim(timeout=0.1)
        assert first.tenant == "greedy"
        # greedy is at its cap; the low-priority patient job still runs
        assert queue.claim(timeout=0.1).id == other.id

    def test_cancel_queued_job_withdraws_it(self):
        queue = JobQueue()
        job = queue.submit("t", {"kind": "estimate"})
        report = queue.cancel(job.id)
        assert report == {"state": "cancelled", "cancel_requested": True}
        assert queue.claim(timeout=0.05) is None
        assert job.finished

    def test_cancel_running_is_cooperative(self):
        queue = JobQueue()
        job = queue.submit("t", {"kind": "estimate"})
        claimed = queue.claim(timeout=0.1)
        report = queue.cancel(claimed.id)
        assert report == {"state": "running", "cancel_requested": True}
        assert claimed.cancel_event.is_set()
        assert not claimed.finished  # executor decides when to stop

    def test_cancel_finished_is_noop_report(self):
        queue = JobQueue()
        job = queue.submit("t", {"kind": "estimate"})
        queue.claim(timeout=0.1)
        job.complete({"ok": True})
        queue.release(job)
        assert queue.cancel(job.id) == {
            "state": "done", "cancel_requested": False,
        }

    def test_unknown_job_raises_serve_error(self):
        with pytest.raises(ServeError, match="unknown job"):
            JobQueue().get("job-999999")

    def test_closed_queue_rejects_and_drains(self):
        queue = JobQueue()
        job = queue.submit("t", {"kind": "estimate"})
        queue.close()
        with pytest.raises(ServeError, match="draining"):
            queue.submit("t", {"kind": "estimate"})
        claimed = queue.claim(timeout=0.1)
        assert claimed.id == job.id
        job.complete({})
        queue.release(job)
        assert queue.claim(timeout=0.05) is None
        assert queue.drain(timeout=1.0)

    def test_retention_evicts_only_finished(self):
        queue = JobQueue(retention=2)
        done = [queue.submit("t", {"kind": "estimate"}) for _ in range(2)]
        for job in done:
            queue.claim(timeout=0.1)
            job.complete({})
            queue.release(job)
        live = queue.submit("t", {"kind": "estimate"})
        extra = queue.submit("t", {"kind": "estimate"})
        assert queue.get(live.id) is live
        assert queue.get(extra.id) is extra
        # the oldest finished jobs were evicted, never the live ones
        with pytest.raises(ServeError):
            queue.get(done[0].id)

    def test_event_log_cursor_replay(self):
        queue = JobQueue()
        job = queue.submit("t", {"kind": "estimate"}, stream=True)
        job.add_event({"event": "generation", "n": 1})
        job.add_event({"event": "generation", "n": 2})
        events, cursor = job.events_after(0, timeout=0.1)
        assert [e["n"] for e in events] == [1, 2]
        job.complete({})
        later, cursor = job.events_after(cursor, timeout=0.1)
        assert later[-1]["event"] == "end"
        # replay from scratch sees the identical log
        replay, _ = job.events_after(0, timeout=0.1)
        assert [e.get("event") for e in replay] == [
            "generation", "generation", "end",
        ]


# ---------------------------------------------------------------------------
# Rate limiting (fake clock; no sleeping)
# ---------------------------------------------------------------------------


class TestRateLimiting:
    def test_token_bucket_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert bucket.try_take() is None

    def test_limiter_isolates_tenants(self):
        now = [0.0]
        limiter = TenantRateLimiter(1.0, clock=lambda: now[0])
        limiter.admit("a")
        with pytest.raises(RateLimitError) as info:
            limiter.admit("a")
        assert info.value.retry_after_seconds == pytest.approx(1.0)
        limiter.admit("b")  # a's exhaustion never touches b
        record = info.value.as_dict()
        assert record["code"] == "rate-limited"
        assert record["retry_after_seconds"] == pytest.approx(1.0)

    def test_none_rate_disables_limiting(self):
        limiter = TenantRateLimiter(None)
        for _ in range(1000):
            limiter.admit("t")
        assert limiter.levels() == {}


# ---------------------------------------------------------------------------
# Structured error -> HTTP status mapping
# ---------------------------------------------------------------------------


class TestHttpStatusMapping:
    def test_every_error_code_has_a_status(self):
        def subclasses(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from subclasses(sub)

        for cls in subclasses(ReproError):
            if cls.__module__ != "repro.errors":
                continue  # client-side helpers define their own codes
            assert cls.code in HTTP_STATUS_BY_CODE, cls

    def test_selected_mappings(self):
        assert http_status_of(RequestError("x")) == 400
        assert http_status_of(RateLimitError("x")) == 429
        assert http_status_of(ServeError("x")) == 503
        assert http_status_of(StoreError("x")) == 409
        assert http_status_of(ValueError("x")) == 500  # unknown: internal

    def test_request_error_field_in_payload(self):
        error = RequestError("bad", field="priority")
        assert error.as_dict()["field"] == "priority"
        assert "field" not in RequestError("bad").as_dict()

    def test_rejection_lists_allowed_kinds(self):
        with pytest.raises(RequestError) as info:
            request_from_dict({"kind": "warp-drive"})
        message = str(info.value)
        assert "allowed kinds" in message and "estimate" in message
        assert info.value.as_dict()["field"] == "kind"
        with pytest.raises(RequestError, match="missing the 'kind'"):
            request_from_dict({})


# ---------------------------------------------------------------------------
# The HTTP server end-to-end
# ---------------------------------------------------------------------------


class TestServerEndpoints:
    def test_submit_run_estimate(self, client):
        document = client.run({"kind": "estimate"})
        assert document["state"] == "done"
        result = document["result"]
        assert result["kind"] == "estimate" and result["status"] == "ok"
        assert "metrics" in result["payload"]

    def test_healthz_and_metrics(self, client):
        client.run({"kind": "estimate"})
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"]["by_state"]["done"] >= 1
        metrics = client.metrics()
        assert metrics["server"]["jobs"]["accepting"] is True
        assert metrics["metrics"]["serve.jobs.submitted"] >= 1
        assert "engine_stats" in metrics

    def test_validation_error_maps_to_400_envelope(self, client):
        with pytest.raises(ServeHTTPError) as info:
            client.submit({"kind": "estimate", "adc_bits": -3})
        assert info.value.status == 400
        assert info.value.error["code"] == "request"
        with pytest.raises(ServeHTTPError) as info:
            client.submit({"kind": "warp-drive"})
        assert info.value.status == 400
        assert info.value.error["field"] == "kind"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeHTTPError) as info:
            client.job("job-424242")
        assert info.value.status == 404

    def test_failed_job_carries_structured_error(self, client, server):
        # validate passes (shape), execution fails (semantics): the
        # campaign resume of a name that was never run.
        document = client.run({
            "kind": "campaign", "name": "never-ran", "action": "resume",
        })
        assert document["state"] == "failed"
        assert document["error"]["code"] in ("store", "optimization")

    def test_rate_limit_429_envelope(self, tmp_path):
        config = ServerConfig(
            port=0,
            workers=1,
            rate_limit=0.001,  # one token, then a very long refill
            rate_burst=1.0,
            session=SessionConfig(),
        )
        with ReproServer(config) as server:
            client = ServeClient(server.url)
            client.submit({"kind": "estimate"}, tenant="alice")
            with pytest.raises(ServeHTTPError) as info:
                client.submit({"kind": "estimate"}, tenant="alice")
            assert info.value.status == 429
            error = info.value.error
            assert error["code"] == "rate-limited"
            assert error["retry_after_seconds"] > 0
            # another tenant is unaffected
            client.submit({"kind": "estimate"}, tenant="bob")
            limited = client.metrics()["metrics"]["serve.rate_limited"]
            assert limited == 1

    def test_query_pagination_over_http(self, client):
        client.run({"kind": "explore", "array_size": 1024,
                    "population": 12, "generations": 2, "seed": 3})
        full = client.run({"kind": "query", "what": "designs"})
        payload = full["result"]["payload"]
        total = payload["total"]
        assert total == payload["count"] > 1
        page = client.run({
            "kind": "query", "what": "designs", "limit": 1, "offset": 1,
        })["result"]["payload"]
        assert page["count"] == 1 and page["total"] == total
        assert page["designs"][0] == payload["designs"][1]
        tail = client.run({
            "kind": "query", "what": "designs", "offset": total,
        })["result"]["payload"]
        assert tail["count"] == 0 and tail["total"] == total


class TestStreaming:
    def test_campaign_streams_generations_and_matches_direct(
        self, client, server, tmp_path
    ):
        accepted = client.submit(
            dict(TINY_CAMPAIGN, name="streamed"), stream=True
        )
        events = client.stream_events(accepted["job_id"])
        kinds = [event.get("event") for event in events]
        assert kinds[0] == "start" and kinds[-1] == "end"
        generations = [e for e in events if e.get("event") == "generation"]
        assert [g["generations_done"] for g in generations] == [1, 2, 3, 4]
        assert generations[-1]["campaign_status"] == "completed"
        streamed = client.job(accepted["job_id"])["result"]

        direct = Session.from_config(
            SessionConfig(store=str(tmp_path / "direct.sqlite"))
        )
        try:
            twin = direct.submit(
                CampaignRequest(**{**_campaign_kwargs(), "name": "direct"})
            )
        finally:
            direct.close()
        assert streamed["payload"]["pareto"] == twin.payload["pareto"]
        assert (
            streamed["payload"]["evaluations"]
            == twin.payload["evaluations"]
        )

    def test_two_clients_one_reconnects_from_cursor(self, client, server):
        accepted = client.submit(
            dict(TINY_CAMPAIGN, name="two-readers"), stream=True
        )
        job_id = accepted["job_id"]
        follower_events = []
        follower = threading.Thread(
            target=lambda: follower_events.extend(
                ServeClient(server.url).stream(job_id)
            )
        )
        follower.start()
        # Second client: read two events, "disconnect", reconnect after.
        partial = []
        for event in client.stream(job_id):
            partial.append(event)
            if len(partial) == 2:
                break
        cursor = partial[-1]["_cursor"]
        resumed = list(client.stream(job_id, after=cursor))
        follower.join(timeout=60)
        rejoined = [dict(e, _cursor=None) for e in partial + resumed]
        followed = [dict(e, _cursor=None) for e in follower_events]
        assert rejoined == followed  # lossless replay across the reconnect
        assert followed[-1]["event"] == "end"

    def test_stream_of_plain_job_ends_cleanly(self, client):
        accepted = client.submit({"kind": "estimate"}, stream=True)
        events = client.stream_events(accepted["job_id"])
        assert [e["event"] for e in events] == ["start", "end"]
        assert events[-1]["state"] == "done"


class TestCancellation:
    def test_cancel_mid_campaign_leaves_resumable_checkpoint(
        self, client, server
    ):
        request = dict(
            TINY_CAMPAIGN, name="cancel-me", generations=200, population=16
        )
        accepted = client.submit(request, stream=True)
        job_id = accepted["job_id"]
        stream = client.stream(job_id)
        seen = 0
        for event in stream:
            if event.get("event") == "generation":
                seen = event["generations_done"]
                if seen >= 2:
                    break
        report = client.cancel(job_id)
        assert report["cancel_requested"] is True
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "cancelled"
        # the campaign is interrupted-but-resumable on the shared store:
        # finishing it via resume works and picks up where it stopped.
        resumed = client.run({
            "kind": "campaign", "name": "cancel-me", "action": "resume",
            "stop_after": 1,
        }, timeout=120)
        assert resumed["state"] == "done"
        payload = resumed["result"]["payload"]
        assert payload["generations_done"] > seen >= 2

    def test_cancel_queued_job_never_runs(self):
        # An unstarted server has no workers: the queue holds jobs
        # deterministically, so "cancel while still queued" is exact.
        server = ReproServer(ServerConfig(port=0, workers=1))
        victim = server.submit({"kind": "estimate"})
        report = server.cancel(victim.id)
        assert report == {"state": "cancelled", "cancel_requested": True}
        assert server.queue.get(victim.id).state == "cancelled"
        server.shutdown()


class TestSharedSessionConcurrency:
    def test_concurrent_submits_share_cache_and_stats(self, tmp_path):
        session = Session.from_config(
            SessionConfig(store=str(tmp_path / "shared.sqlite"))
        )
        errors = []

        # Distinctive geometry: the engine's memoization cache is shared
        # process-wide, so the default spec may be warm from other tests.
        spec = EstimateRequest(height=256, width=32)

        def worker(seed):
            try:
                for _ in range(3):
                    result = session.submit(spec)
                    assert result.status == "ok"
                session.submit(QueryRequest(what="designs", limit=2))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = session.engine.stats
        # 18 identical estimates: one thread computed, the rest hit the
        # shared LRU; totals are exact because counters are lock-guarded.
        assert stats.evaluations + stats.cache_hits == 18
        assert 1 <= stats.evaluations < 18
        session.close()
        session.close()  # idempotent
        assert session.closed

    def test_server_mixed_load_many_tenants(self, server):
        client = ServeClient(server.url)
        accepted = []
        for index in range(12):
            tenant = f"tenant-{index % 3}"
            accepted.append(client.submit(
                {"kind": "estimate"} if index % 2 else {"kind": "library"},
                tenant=tenant,
                priority=index % 4,
            ))
        finals = [client.wait(a["job_id"], timeout=120) for a in accepted]
        assert all(f["state"] == "done" for f in finals)
        by_state = client.healthz()["jobs"]["by_state"]
        assert by_state["done"] >= 12 and by_state["failed"] == 0


class TestShutdown:
    def test_graceful_shutdown_drains_inflight(self, tmp_path):
        config = ServerConfig(
            port=0, workers=2,
            session=SessionConfig(store=str(tmp_path / "drain.sqlite")),
        )
        server = ReproServer(config).start()
        client = ServeClient(server.url)
        accepted = client.submit(
            {"kind": "explore", "array_size": 1024,
             "population": 12, "generations": 3, "seed": 2})
        server.shutdown()  # must wait for the running job, then close
        job = server.queue.get(accepted["job_id"])
        assert job.state == "done"
        assert server.session.closed
        with pytest.raises(ServeError, match="draining"):
            server.submit({"kind": "estimate"})

    def test_server_config_round_trip_and_validation(self):
        config = ServerConfig(port=0, workers=3, rate_limit=10.0)
        clone = ServerConfig.from_dict(config.to_dict())
        assert clone.workers == 3 and clone.rate_limit == 10.0
        with pytest.raises(ServeError, match="workers"):
            ServerConfig(workers=0).validate()
        with pytest.raises(RequestError, match="unknown server config"):
            ServerConfig.from_dict({"wrkers": 2})


def _campaign_kwargs() -> dict:
    kwargs = dict(TINY_CAMPAIGN)
    kwargs.pop("kind")
    return kwargs
