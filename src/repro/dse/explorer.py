"""The MOGA-based design space explorer (paper Figure 4, section 3.2.2).

:class:`_ExplorerCore` runs the genetic exploration: given an array size
(and optionally a customised estimator or NSGA-II configuration) it
returns an :class:`ExplorationResult` containing the Pareto-frontier set
of ``(H, W, L, B_ADC)`` solutions with their estimated metrics, ready for
user distillation and layout generation.

The public front door is :meth:`repro.api.Session.explore`; the historical
``DesignSpaceExplorer`` shim was removed in 1.2.0 after its one-release
deprecation window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import OptimizationError, StoreError
from repro.arch.spec import ACIMDesignSpec
from repro.dse.nsga2 import NSGA2, NSGA2Config
from repro.dse.pareto import pareto_front
from repro.dse.problem import ACIMDesignProblem, EvaluatedDesign
from repro.dse.surrogate import SurrogateScreener, refine_seed_genomes
from repro.engine import EvaluationEngine
from repro.model.estimator import ACIMEstimator


@dataclass
class ExplorationResult:
    """Output of one design-space exploration run.

    Attributes:
        array_size: the explored array size (H * W).
        pareto_set: non-dominated evaluated designs, deduplicated.
        evaluations: number of objective evaluations the optimiser used.
        generations: number of NSGA-II generations run.
        runtime_seconds: wall-clock exploration time (monotonic clock).
        history: per-generation statistics from the optimiser.
        engine_stats: evaluation-engine statistics (backend, batches, cache
            hits, evaluations/sec) of this run, when an engine was used.
        surrogate: surrogate-screening summary (mode, exact/screened candidate
            counts, training rows) — empty for plain exact exploration.
    """

    array_size: int
    pareto_set: List[EvaluatedDesign]
    evaluations: int
    generations: int
    runtime_seconds: float
    history: List[Dict[str, float]] = field(default_factory=list)
    engine_stats: Dict[str, float] = field(default_factory=dict)
    surrogate: Dict[str, float] = field(default_factory=dict)

    def specs(self) -> List[ACIMDesignSpec]:
        """The Pareto-frontier design specs."""
        return [design.spec for design in self.pareto_set]

    def metric_ranges(self) -> Dict[str, tuple]:
        """(min, max) of each headline metric across the Pareto set."""
        if not self.pareto_set:
            return {}
        metrics = [design.metrics for design in self.pareto_set]
        def span(values):
            return (min(values), max(values))
        return {
            "snr_db": span([m.snr_db for m in metrics]),
            "tops": span([m.tops for m in metrics]),
            "tops_per_watt": span([m.tops_per_watt for m in metrics]),
            "area_f2_per_bit": span([m.area_f2_per_bit for m in metrics]),
        }

    def as_table(self) -> List[dict]:
        """Flat dictionaries (one per solution), sorted by SNR descending."""
        rows = [design.metrics.as_dict() for design in self.pareto_set]
        return sorted(rows, key=lambda row: row["snr_db"], reverse=True)


def pareto_designs_from_population(problem, population) -> List[EvaluatedDesign]:
    """Distil a final NSGA-II population into the evaluated Pareto set.

    Keeps the feasible individuals, deduplicates them by decoded design
    point, re-filters to the non-dominated subset and sorts by spec tuple —
    the canonical reduction shared by :class:`_ExplorerCore` and the
    campaign manager, so an interrupted-and-resumed campaign reports the
    exact set an uninterrupted exploration would.
    """
    array_size = problem.array_size
    unique: Dict[tuple, EvaluatedDesign] = {}
    for individual in population:
        if not individual.feasible:
            continue
        spec = problem.decode(individual.genome)
        if not spec.is_feasible(array_size):
            continue
        if spec.as_tuple() in unique:
            continue
        unique[spec.as_tuple()] = problem.evaluated_design(individual.genome)
    designs = list(unique.values())
    if not designs:
        raise OptimizationError(
            f"exploration found no feasible designs for array size {array_size}"
        )
    # Re-filter to the non-dominated subset after deduplication.
    front = pareto_front([design.objectives for design in designs])
    pareto_set = [designs[i] for i in front]
    pareto_set.sort(key=lambda d: d.spec.as_tuple())
    return pareto_set


class _ExplorerCore:
    """NSGA-II based explorer over the synthesizable-architecture space.

    Internal implementation behind :meth:`repro.api.Session.explore` (and
    direct core-level consumers such as the benchmarks).
    """

    def __init__(
        self,
        estimator: Optional[ACIMEstimator] = None,
        config: NSGA2Config = NSGA2Config(),
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        engine: Optional[EvaluationEngine] = None,
        store=None,
        surrogate: str = "off",
        screen_fraction: float = 0.25,
        power_of_two_heights: bool = True,
    ) -> None:
        if surrogate not in ("off", "screen", "refine"):
            raise OptimizationError(
                f"unknown surrogate mode {surrogate!r}; "
                "expected 'off', 'screen' or 'refine'"
            )
        self.estimator = estimator or ACIMEstimator()
        self.config = config
        self.local_array_sizes = local_array_sizes
        self.max_adc_bits = max_adc_bits
        self.engine = engine
        self.store = store
        self.surrogate = surrogate
        self.screen_fraction = screen_fraction
        self.power_of_two_heights = power_of_two_heights

    def explore(
        self,
        array_size: int,
        min_height: int = 2,
        max_height: Optional[int] = None,
    ) -> ExplorationResult:
        """Run the exploration for a user-defined array size.

        Returns the deduplicated Pareto-frontier set of feasible solutions.
        When no engine was injected, one is built from the config's
        ``backend``/``workers`` for this run and shut down afterwards.
        """
        engine = self.engine or EvaluationEngine(
            self.config.backend, workers=self.config.workers
        )
        try:
            return self._explore(engine, array_size, min_height, max_height)
        finally:
            if engine is not self.engine:
                engine.close()

    def _explore(
        self,
        engine: EvaluationEngine,
        array_size: int,
        min_height: int,
        max_height: Optional[int],
    ) -> ExplorationResult:
        problem = ACIMDesignProblem(
            array_size,
            estimator=self.estimator,
            local_array_sizes=self.local_array_sizes,
            max_adc_bits=self.max_adc_bits,
            min_height=min_height,
            max_height=max_height,
            engine=engine,
            power_of_two_heights=self.power_of_two_heights,
        )
        screener = None
        seed_genomes = None
        if self.surrogate != "off":
            from repro.engine.screen import ScreeningEvaluator

            if self.surrogate == "refine" and self.store is None:
                raise StoreError(
                    "surrogate='refine' warm-starts from the result store; "
                    "run inside a Session with a store attached"
                )
            screener = SurrogateScreener(
                ScreeningEvaluator(
                    engine,
                    self.estimator,
                    screen_fraction=self.screen_fraction,
                    store=self.store,
                )
            )
            problem.observer = screener.observe
            if self.surrogate == "refine":
                seed_genomes = refine_seed_genomes(
                    self.store,
                    problem,
                    params_digest=screener.evaluator.params_digest,
                    limit=self.config.population_size,
                )
        optimizer = NSGA2(problem, self.config, screener=screener)
        stats_baseline = engine.stats.snapshot()
        start = time.perf_counter()
        final_population = optimizer.run(seed_genomes=seed_genomes)
        runtime = time.perf_counter() - start

        surrogate_summary: Dict[str, float] = {}
        if screener is not None:
            screener.persist()
            surrogate_summary = {
                "mode": self.surrogate,
                "screen_fraction": self.screen_fraction,
                "exact_candidates": screener.exact_candidates,
                "screened_candidates": screener.screened_candidates,
                "training_rows": screener.evaluator.training_rows,
            }
        pareto_set = pareto_designs_from_population(problem, final_population)
        return ExplorationResult(
            array_size=array_size,
            pareto_set=pareto_set,
            evaluations=optimizer.evaluations,
            generations=self.config.generations,
            runtime_seconds=runtime,
            history=optimizer.history,
            engine_stats=engine.stats.since(stats_baseline).as_dict(),
            surrogate=surrogate_summary,
        )

    def explore_many(
        self, array_sizes: Sequence[int], **kwargs
    ) -> Dict[int, ExplorationResult]:
        """Explore several array sizes (used by the Figure-9(a)(b) sweep).

        One engine (and thus one worker pool and cache view) is shared
        across all sizes so the sweep amortizes pool spawn cost.
        """
        min_height = kwargs.pop("min_height", 2)
        max_height = kwargs.pop("max_height", None)
        if kwargs:
            raise TypeError(
                f"explore_many() got unexpected keyword arguments "
                f"{sorted(kwargs)}"
            )
        engine = self.engine or EvaluationEngine(
            self.config.backend, workers=self.config.workers
        )
        try:
            return {
                size: self._explore(engine, size, min_height, max_height)
                for size in array_sizes
            }
        finally:
            if engine is not self.engine:
                engine.close()


