"""NSGA-II implemented from scratch for the ACIM design-space explorer.

The implementation follows the classic algorithm (Deb et al., 2002):

* fast non-dominated sorting with crowding-distance diversity preservation,
* binary tournament selection on (constraint violation, rank, crowding),
* problem-defined crossover and mutation on the genome,
* elitist (mu + lambda) environmental selection.

Constraints are handled with Deb's feasibility rules ("constraint
domination"): a feasible individual always beats an infeasible one, and two
infeasible individuals are compared by total constraint violation.  The
ACIM problem (Equation 12) additionally repairs genomes so that
``H * W = array size`` always holds, leaving only the H/L >= 2^B_ADC and
H >= L constraints to the violation mechanism.

The algorithm is generic over a small problem protocol so the test suite
can exercise it on analytic benchmark problems with known Pareto fronts in
addition to the ACIM problem.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import OptimizationError
from repro.dse.pareto import crowding_distance, non_dominated_sort
from repro.obs import get_tracer

Genome = TypeVar("Genome")


@dataclass
class Individual(Generic[Genome]):
    """One member of the NSGA-II population.

    Attributes:
        genome: problem-specific genome.
        objectives: minimisation objective vector.
        violation: total constraint violation (0 means feasible).
        rank: non-domination rank (0 is the best front).
        crowding: crowding distance within its front.
    """

    genome: Genome
    objectives: Tuple[float, ...] = ()
    violation: float = 0.0
    rank: int = 0
    crowding: float = 0.0

    @property
    def feasible(self) -> bool:
        """True when no constraint is violated."""
        return self.violation <= 0.0


@dataclass(frozen=True)
class NSGA2Config:
    """Hyper-parameters of the NSGA-II run.

    Attributes:
        population_size: number of individuals kept each generation.
        generations: number of generations to evolve.
        crossover_probability: probability a child is produced by crossover
            (otherwise it is a copy of one parent before mutation).
        mutation_probability: probability the child genome is mutated.
        seed: random seed for reproducibility.
        backend: evaluation-engine backend (``serial``/``thread``/``process``)
            used for population batches.  Evaluation never consumes the RNG,
            so every backend produces the identical evolution for a seed.
        workers: engine pool size (None: the machine's CPU count).
    """

    population_size: int = 80
    generations: int = 60
    crossover_probability: float = 0.9
    mutation_probability: float = 0.4
    seed: int = 1
    backend: str = "serial"
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.engine import validate_backend

        if self.population_size < 4:
            raise OptimizationError("population size must be at least 4")
        if self.generations < 1:
            raise OptimizationError("generations must be at least 1")
        for name in ("crossover_probability", "mutation_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise OptimizationError(f"{name} must be in [0, 1]")
        validate_backend(self.backend)
        if self.workers is not None and self.workers < 1:
            raise OptimizationError("workers must be at least 1")


class NSGA2(Generic[Genome]):
    """The NSGA-II optimiser.

    The ``problem`` object must provide:

    * ``random_genome(rng) -> Genome``
    * ``evaluate(genome) -> (objectives, violation)``
    * ``crossover(a, b, rng) -> Genome``
    * ``mutate(genome, rng) -> Genome``
    * optionally ``genome_key(genome)`` for duplicate suppression,
    * optionally ``evaluate_many(genomes) -> [(objectives, violation)]`` for
      population-batch evaluation (the ACIM problem routes this through the
      :class:`~repro.engine.engine.EvaluationEngine`).

    The initial population and each generation's offspring are evaluated as
    one batch.  Genome generation (which consumes the RNG) happens strictly
    before evaluation (which never does), so batched and per-genome
    evaluation produce bit-identical runs for a fixed seed.
    """

    def __init__(
        self, problem, config: NSGA2Config = NSGA2Config(), screener=None
    ) -> None:
        self.problem = problem
        self.config = config
        #: Optional :class:`~repro.dse.surrogate.SurrogateScreener`: when
        #: set, each generation's offspring batch is filtered through it
        #: before exact evaluation.  Screening decisions never consume
        #: the optimizer RNG, so ``screener=None`` runs are bit-identical
        #: to pre-screening revisions and a screener that keeps
        #: everything (cold fallback) changes nothing at all.
        self.screener = screener
        self._evaluations = 0
        self.history: List[Dict[str, float]] = []
        self._rng: Optional[random.Random] = None
        self._population: Optional[List[Individual]] = None
        self._generation = 0

    @property
    def evaluations(self) -> int:
        """Number of objective evaluations performed so far."""
        return self._evaluations

    @property
    def generation(self) -> int:
        """Number of completed generations (0 right after initialization)."""
        return self._generation

    @property
    def done(self) -> bool:
        """True once the configured generation budget is exhausted."""
        return (
            self._population is not None
            and self._generation >= self.config.generations
        )

    # -- main loop ------------------------------------------------------------

    def run(self, seed_genomes: Optional[Sequence[Genome]] = None) -> List[Individual]:
        """Evolve the population and return the final non-dominated set.

        Equivalent to :meth:`initialize` followed by :meth:`step` until
        :attr:`done`; checkpointing drivers (the campaign manager) call the
        stepwise API directly and snapshot :meth:`state` between steps.
        """
        self.initialize(seed_genomes=seed_genomes)
        while not self.done:
            self.step()
        return self.result()

    # -- stepwise / checkpointable API ----------------------------------------

    def initialize(self, seed_genomes: Optional[Sequence[Genome]] = None) -> None:
        """Seed the RNG and evaluate the initial population (generation 0).

        ``seed_genomes`` warm-start the population (the ``refine``
        campaign method passes the store's cross-campaign Pareto set):
        they are deduplicated, placed first, and the remainder is filled
        with random genomes.  Seeding consumes no RNG, so with no seeds
        the initial population is bit-identical to earlier revisions.
        """
        rng = random.Random(self.config.seed)
        population = self._initial_population(rng, seed_genomes)
        self._assign_ranks(population)
        self._rng = rng
        self._population = population
        self._generation = 0

    def step(self) -> bool:
        """Evolve one generation; returns True while generations remain.

        RNG consumption is identical to the monolithic loop of :meth:`run`,
        so any interleaving of steps and state snapshots reproduces the
        uninterrupted evolution bit-identically.
        """
        if self._population is None:
            raise OptimizationError("call initialize() before step()")
        if self.done:
            return False
        # The span never touches the optimizer RNG, so tracing a run
        # cannot perturb its bit-identical evolution.
        with get_tracer().span("dse.generation", generation=self._generation):
            offspring = self._make_offspring(self._population, self._rng)
            self._population = self._environmental_selection(
                self._population + offspring
            )
            self._record_history(self._generation, self._population)
            self._generation += 1
        return not self.done

    def result(self) -> List[Individual]:
        """The current population's feasible non-dominated set."""
        if self._population is None:
            raise OptimizationError("call initialize() before result()")
        population = self._population
        return [ind for ind in population if ind.rank == 0 and ind.feasible] or [
            ind for ind in population if ind.rank == 0
        ]

    def state(self) -> Dict:
        """JSON-serializable snapshot of the full optimiser state.

        Captures the RNG state, the evaluated population (genomes must be
        nested tuples/lists of JSON scalars, as the ACIM genome is), the
        generation counter, the evaluation budget spent and the history —
        everything :meth:`restore_state` needs to continue bit-identically.
        """
        if self._population is None:
            raise OptimizationError("call initialize() before state()")
        version, internal, gauss_next = self._rng.getstate()
        return {
            "generation": self._generation,
            "evaluations": self._evaluations,
            "rng_state": [version, list(internal), gauss_next],
            "history": [dict(entry) for entry in self.history],
            "population": [
                {
                    "genome": individual.genome,
                    "objectives": list(individual.objectives),
                    "violation": individual.violation,
                    "rank": individual.rank,
                    "crowding": individual.crowding,
                }
                for individual in self._population
            ],
        }

    def restore_state(self, state: Dict) -> None:
        """Restore a :meth:`state` snapshot (inverse of JSON round-trip)."""
        try:
            version, internal, gauss_next = state["rng_state"]
            rng = random.Random()
            rng.setstate((version, tuple(internal), gauss_next))
            population = [
                Individual(
                    genome=_tuplify(entry["genome"]),
                    objectives=tuple(entry["objectives"]),
                    violation=float(entry["violation"]),
                    rank=int(entry["rank"]),
                    crowding=float(entry["crowding"]),
                )
                for entry in state["population"]
            ]
            generation = int(state["generation"])
            evaluations = int(state["evaluations"])
            history = [dict(entry) for entry in state["history"]]
        except (KeyError, TypeError, ValueError) as error:
            raise OptimizationError(f"invalid NSGA-II state snapshot: {error}")
        self._rng = rng
        self._population = population
        self._generation = generation
        self._evaluations = evaluations
        self.history = history

    # -- population management -----------------------------------------------

    def _initial_population(
        self,
        rng: random.Random,
        seed_genomes: Optional[Sequence[Genome]] = None,
    ) -> List[Individual]:
        genomes: List[Genome] = []
        seen = set()
        for genome in seed_genomes or ():
            if len(genomes) >= self.config.population_size:
                break
            key = self._genome_key(genome)
            if key in seen:
                continue
            seen.add(key)
            genomes.append(genome)
        attempts = 0
        while len(genomes) < self.config.population_size:
            genome = self.problem.random_genome(rng)
            key = self._genome_key(genome)
            attempts += 1
            if key in seen and attempts < self.config.population_size * 20:
                continue
            seen.add(key)
            genomes.append(genome)
        return self._evaluate_many(genomes)

    def _evaluate_many(self, genomes: List[Genome]) -> List[Individual]:
        """Evaluate a genome batch, preferring the problem's batched path."""
        evaluate_many = getattr(self.problem, "evaluate_many", None)
        if evaluate_many is not None:
            evaluations = evaluate_many(genomes)
            if len(evaluations) != len(genomes):
                raise OptimizationError(
                    f"problem.evaluate_many returned {len(evaluations)} "
                    f"results for {len(genomes)} genomes"
                )
        else:
            evaluations = [self.problem.evaluate(genome) for genome in genomes]
        self._evaluations += len(genomes)
        return [
            Individual(genome=genome, objectives=tuple(objectives),
                       violation=float(violation))
            for genome, (objectives, violation) in zip(genomes, evaluations)
        ]

    def _make_offspring(
        self, population: List[Individual], rng: random.Random
    ) -> List[Individual]:
        # Selection and variation consume the RNG; evaluation does not, so
        # the child genomes are generated first and evaluated as one batch.
        child_genomes: List[Genome] = []
        while len(child_genomes) < self.config.population_size:
            parent_a = self._tournament(population, rng)
            parent_b = self._tournament(population, rng)
            if rng.random() < self.config.crossover_probability:
                child_genome = self.problem.crossover(
                    parent_a.genome, parent_b.genome, rng
                )
            else:
                child_genome = rng.choice((parent_a, parent_b)).genome
            if rng.random() < self.config.mutation_probability:
                child_genome = self.problem.mutate(child_genome, rng)
            child_genomes.append(child_genome)
        if self.screener is not None:
            # RNG consumption is over for this generation; the screener's
            # decisions are deterministic array math, so screened and
            # unscreened runs share the identical genome stream.
            child_genomes = self.screener.filter_offspring(
                child_genomes, population, self.problem
            )
        return self._evaluate_many(child_genomes)

    def _environmental_selection(
        self, combined: List[Individual]
    ) -> List[Individual]:
        self._assign_ranks(combined)
        by_front: Dict[int, List[Individual]] = {}
        for individual in combined:
            by_front.setdefault(individual.rank, []).append(individual)
        survivors: List[Individual] = []
        for rank in sorted(by_front):
            front = by_front[rank]
            if len(survivors) + len(front) <= self.config.population_size:
                survivors.extend(front)
                continue
            remaining = self.config.population_size - len(survivors)
            front.sort(key=lambda ind: ind.crowding, reverse=True)
            survivors.extend(front[:remaining])
            break
        return survivors

    # -- ranking and selection -------------------------------------------------

    def _assign_ranks(self, population: List[Individual]) -> None:
        """Assign constraint-aware ranks and crowding distances in place."""
        feasible = [ind for ind in population if ind.feasible]
        infeasible = [ind for ind in population if not ind.feasible]
        next_rank = 0
        if feasible:
            fronts = non_dominated_sort([ind.objectives for ind in feasible])
            for front_rank, front in enumerate(fronts):
                members = [feasible[i] for i in front]
                distances = crowding_distance([m.objectives for m in members])
                for member, distance in zip(members, distances):
                    member.rank = front_rank
                    member.crowding = distance
            next_rank = len(fronts)
        # Infeasible individuals come after every feasible front, ordered by
        # total violation (Deb's constraint-domination).
        infeasible.sort(key=lambda ind: ind.violation)
        for offset, individual in enumerate(infeasible):
            individual.rank = next_rank + offset
            individual.crowding = 0.0

    @staticmethod
    def _tournament(population: List[Individual], rng: random.Random) -> Individual:
        a, b = rng.choice(population), rng.choice(population)
        if a.feasible != b.feasible:
            return a if a.feasible else b
        if not a.feasible and not b.feasible:
            return a if a.violation <= b.violation else b
        if a.rank != b.rank:
            return a if a.rank < b.rank else b
        return a if a.crowding >= b.crowding else b

    # -- bookkeeping -------------------------------------------------------------

    def _genome_key(self, genome: Genome):
        key_fn = getattr(self.problem, "genome_key", None)
        if key_fn is None:
            try:
                hash(genome)
                return genome
            except TypeError:
                return id(genome)
        return key_fn(genome)

    def _record_history(self, generation: int, population: List[Individual]) -> None:
        feasible = [ind for ind in population if ind.feasible]
        front = [ind for ind in feasible if ind.rank == 0]
        self.history.append({
            "generation": float(generation),
            "feasible": float(len(feasible)),
            "front_size": float(len(front)),
            "evaluations": float(self._evaluations),
        })


def _tuplify(value):
    """Rebuild nested tuples from JSON lists (genome deserialization)."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value
