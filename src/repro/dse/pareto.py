"""Pareto-dominance primitives (paper section 2.2).

All functions operate on plain sequences of objective vectors in a
*minimisation* context, matching the paper's Equation 1: ``u`` dominates
``v`` when it is no worse in every objective and strictly better in at
least one.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError


def dominates(u: Sequence[float], v: Sequence[float]) -> bool:
    """True if objective vector ``u`` Pareto-dominates ``v`` (minimisation)."""
    if len(u) != len(v):
        raise OptimizationError("objective vectors must have the same length")
    at_least_one_better = False
    for u_i, v_i in zip(u, v):
        if u_i > v_i:
            return False
        if u_i < v_i:
            at_least_one_better = True
    return at_least_one_better


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points in ``points``.

    Duplicated objective vectors are all retained (none dominates another).
    """
    indices: List[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            indices.append(i)
    return indices


def pareto_front_mask(points) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``(N, M)`` array.

    Vectorized counterpart of :func:`pareto_front` for the large sets the
    surrogate screener and the exhaustive benchmarks handle (tens of
    thousands of points, where the pairwise loop is prohibitive).  Points
    are visited in lexicographic order — a dominator always sorts strictly
    before anything it dominates — and each is compared against the
    running non-dominated archive only, which transitivity makes
    sufficient.  Duplicated rows are all retained, matching
    :func:`pareto_front`.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise OptimizationError("points must be a 2-D objective array")
    n = pts.shape[0]
    keep = np.ones(n, dtype=bool)
    if n <= 1:
        return keep
    order = np.lexsort(pts.T[::-1])
    ranked = pts[order]
    archive = np.empty_like(ranked)
    archive[0] = ranked[0]
    archive_size = 1
    keep_ranked = np.ones(n, dtype=bool)
    for j in range(1, n):
        candidate = ranked[j]
        front = archive[:archive_size]
        no_worse = front <= candidate
        dominated = bool(np.any(
            np.all(no_worse, axis=1) & np.any(front < candidate, axis=1)
        ))
        if dominated:
            keep_ranked[j] = False
        else:
            archive[archive_size] = candidate
            archive_size += 1
    keep[order] = keep_ranked
    return keep


def non_dominated_sort(points: Sequence[Sequence[float]]) -> List[List[int]]:
    """Fast non-dominated sorting (Deb et al., NSGA-II).

    Returns fronts as lists of indices; front 0 is the Pareto front of the
    whole population, front 1 the Pareto front of the remainder, and so on.
    """
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(points[j], points[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    for i in range(n):
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def crowding_distance(points: Sequence[Sequence[float]]) -> List[float]:
    """Crowding distance of each point within one front (NSGA-II).

    Boundary points of every objective get infinite distance so they are
    always preferred, preserving the spread of the front.
    """
    n = len(points)
    if n == 0:
        return []
    if n <= 2:
        return [math.inf] * n
    num_objectives = len(points[0])
    distance = [0.0] * n
    for m in range(num_objectives):
        order = sorted(range(n), key=lambda i: points[i][m])
        low, high = points[order[0]][m], points[order[-1]][m]
        distance[order[0]] = math.inf
        distance[order[-1]] = math.inf
        span = high - low
        if span == 0:
            continue
        for position in range(1, n - 1):
            i = order[position]
            if math.isinf(distance[i]):
                continue
            previous_value = points[order[position - 1]][m]
            next_value = points[order[position + 1]][m]
            distance[i] += (next_value - previous_value) / span
    return distance


def hypervolume_2d(
    points: Sequence[Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Hypervolume (area) dominated by a 2-D front w.r.t. a reference point.

    Used to compare frontier quality between the genetic explorer and the
    exhaustive baseline.  Points beyond the reference contribute nothing.
    """
    front = [points[i] for i in pareto_front(points)]
    front = [p for p in front if p[0] <= reference[0] and p[1] <= reference[1]]
    if not front:
        return 0.0
    front.sort(key=lambda p: p[0])
    area = 0.0
    previous_x = None
    best_y = reference[1]
    for x, y in front:
        if previous_x is None:
            previous_x = x
            best_y = y
            continue
        area += (x - previous_x) * (reference[1] - best_y)
        previous_x = x
        best_y = min(best_y, y)
    area += (reference[0] - previous_x) * (reference[1] - best_y)
    return area
