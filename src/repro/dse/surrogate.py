"""Learned surrogate models for screening exact design evaluations.

The store holds every evaluated ``(spec, model-params)`` point
content-addressed across campaigns; this module turns those rows into a
cheap predictor so the exact vectorized model only runs on the promising
fraction of each candidate batch (surrogate-assisted pre-screening, the
ROADMAP item-5 direction).

:class:`SurrogateModel` is one ridge regression per metric over quadratic
polynomial features of the SpecBatch columns ``(log2 H, log2 W, log2 L,
B_ADC)``, fit in closed form from the normal equations.  Strictly
positive scale metrics (TOPS, energy, area, ...) are fit in log space,
the SNR metrics linearly in dB.  Alongside point predictions it reports a
per-point uncertainty — the per-metric residual deviation scaled by the
classic leverage term ``sqrt(1 + x (XᵀX + λI)⁻¹ xᵀ)`` — which calibrates
the screener's optimistic margin: unexplored corners of the space look
*better* than their prediction, so screening stays exploratory where the
model is extrapolating.

Determinism contract: training rows are deduplicated by spec tuple and
canonically sorted before every fit, so the coefficients are a pure
function of the training *set* (bit-identical regardless of discovery
order), and :meth:`SurrogateModel.to_dict`/:meth:`from_dict` round-trip
exactly through JSON.  Models are versioned into the store's
``surrogates`` table keyed by a fingerprint of their training rows, so a
stale model is never silently reused once the training set moved on.

:class:`SurrogateScreener` is the NSGA-II-facing adapter: it decodes an
offspring genome batch, routes the feasible rows through a
:class:`~repro.engine.screen.ScreeningEvaluator`, observes exact results
back into the training set, and maintains the cross-run archive of
non-dominated exact evaluations used for ``front_recall`` reporting.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.arch.batch import SpecBatch
from repro.dse.pareto import pareto_front_mask
from repro.model.estimator import METRIC_FIELDS
from repro.obs import get_tracer

#: Serialization format version of :meth:`SurrogateModel.to_dict`.
SURROGATE_FORMAT = 1

#: Ridge regularisation strength.  The features are standardized, so a
#: tiny λ only guards the normal equations against rank deficiency on
#: degenerate training sets without visibly biasing the fit.
RIDGE_LAMBDA = 1e-6

#: Strictly positive scale metrics are fit (and carry their residual
#: deviation) in natural-log space; the SNR metrics stay linear in dB.
LOG_METRICS = frozenset((
    "tops",
    "macs_per_second",
    "energy_per_mac",
    "tops_per_watt",
    "area_f2_per_bit",
    "total_area_um2",
))

#: Metrics where larger is better — the optimistic margin is added, not
#: subtracted, when predicting the best plausible value of a candidate.
LARGER_IS_BETTER = frozenset((
    "snr_db",
    "snr_total_db",
    "tops",
    "macs_per_second",
    "tops_per_watt",
))

#: The Equation-12 objective vector as (metric name, sign) — the sign
#: turns a maximized metric into its minimisation objective.
_OBJECTIVE_METRICS: Tuple[Tuple[str, float], ...] = (
    ("snr_db", -1.0),
    ("tops", -1.0),
    ("energy_per_mac", 1.0),
    ("area_f2_per_bit", 1.0),
)

#: Fewest training rows before a fit is attempted (the 35-column cubic
#: basis plus headroom); below it the screener passes everything through
#: to the exact engine (the cold-store fallback).
MIN_FIT_ROWS = 48


def _feature_matrix(
    h: np.ndarray, w: np.ndarray, l: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Cubic polynomial features of the spec columns: 35 per point.

    ``[1, x1..x4, x_i x_j for i <= j, x_i x_j x_k for i <= j <= k]``
    over ``x = (log2 H, log2 W, log2 L, B_ADC)`` — log scales linearise
    the power-of-two-ish design grid and keep the Gram matrix well
    conditioned.  The cubic terms matter: the energy-per-MAC surface has
    third-order curvature in the log grid that a quadratic fit misses
    badly at the extreme corners — exactly the points screening must
    not drop.
    """
    x1 = np.log2(np.asarray(h, dtype=float))
    x2 = np.log2(np.asarray(w, dtype=float))
    x3 = np.log2(np.asarray(l, dtype=float))
    x4 = np.asarray(b, dtype=float)
    base = (x1, x2, x3, x4)
    columns = [np.ones(len(x1)), x1, x2, x3, x4]
    for i in range(4):
        for j in range(i, 4):
            columns.append(base[i] * base[j])
    for i in range(4):
        for j in range(i, 4):
            for k in range(j, 4):
                columns.append(base[i] * base[j] * base[k])
    return np.stack(columns, axis=1)


def training_fingerprint(
    spec_tuples: Sequence[Tuple[int, int, int, int]]
) -> str:
    """Content address of a training *set*: order-independent SHA-256.

    Two training sets fingerprint equal iff they contain the same spec
    tuples — the store invalidation key for persisted surrogates.
    """
    digest = hashlib.sha256()
    for spec_tuple in sorted(set(spec_tuples)):
        digest.update(("%d,%d,%d,%d;" % tuple(spec_tuple)).encode("ascii"))
    return digest.hexdigest()


class SurrogateModel:
    """Per-metric ridge regression over polynomial spec features.

    Built via :meth:`fit` (closed-form normal equations, all eight
    metrics solved as one multiple-right-hand-side system) or
    :meth:`from_dict` (exact JSON round-trip of a persisted model).
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        residual_std: np.ndarray,
        normal_inverse: np.ndarray,
        feature_mean: np.ndarray,
        feature_scale: np.ndarray,
        training_rows: int,
        fingerprint: str,
    ) -> None:
        self.coefficients = np.asarray(coefficients, dtype=float)
        self.residual_std = np.asarray(residual_std, dtype=float)
        self.normal_inverse = np.asarray(normal_inverse, dtype=float)
        self.feature_mean = np.asarray(feature_mean, dtype=float)
        self.feature_scale = np.asarray(feature_scale, dtype=float)
        self.training_rows = int(training_rows)
        self.fingerprint = str(fingerprint)

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        columns: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        metrics: np.ndarray,
        fingerprint: str = "",
    ) -> "SurrogateModel":
        """Fit from spec columns and an aligned ``(N, 8)`` metric array.

        Callers wanting order-independent coefficients must pass rows in
        canonical (sorted spec tuple) order — the screener does.
        """
        h, w, l, b = columns
        rows = len(np.asarray(h))
        if rows < 2:
            raise OptimizationError(
                f"cannot fit a surrogate from {rows} training row(s)"
            )
        with get_tracer().span("dse.surrogate.fit", rows=rows):
            features = _feature_matrix(h, w, l, b)
            mean = features.mean(axis=0)
            scale = features.std(axis=0)
            mean[0] = 0.0  # keep the intercept column as-is
            scale[scale == 0.0] = 1.0
            scale[0] = 1.0
            standardized = (features - mean) / scale
            targets = np.array(metrics, dtype=float, copy=True)
            if targets.shape != (rows, len(METRIC_FIELDS)):
                raise OptimizationError(
                    f"metrics array has shape {targets.shape}, expected "
                    f"({rows}, {len(METRIC_FIELDS)})"
                )
            for index, name in enumerate(METRIC_FIELDS):
                if name in LOG_METRICS:
                    targets[:, index] = np.log(
                        np.maximum(targets[:, index], 1e-300)
                    )
            gram = standardized.T @ standardized
            gram += RIDGE_LAMBDA * np.eye(gram.shape[0])
            coefficients = np.linalg.solve(gram, standardized.T @ targets)
            normal_inverse = np.linalg.inv(gram)
            residuals = targets - standardized @ coefficients
            dof = max(1, rows - standardized.shape[1])
            residual_std = np.sqrt((residuals ** 2).sum(axis=0) / dof)
        return cls(
            coefficients=coefficients,
            residual_std=residual_std,
            normal_inverse=normal_inverse,
            feature_mean=mean,
            feature_scale=scale,
            training_rows=rows,
            fingerprint=fingerprint,
        )

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        columns: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(predictions, uncertainty)`` for a whole column batch.

        Both are ``(N, 8)`` arrays in *fit space* (log for
        :data:`LOG_METRICS`, linear dB for SNR): the prediction is the
        ridge mean, the uncertainty is the per-metric residual deviation
        scaled by each point's leverage — large where the candidate sits
        far from the training cloud.
        """
        h, w, l, b = columns
        with get_tracer().span("dse.surrogate.predict", rows=len(np.asarray(h))):
            features = _feature_matrix(h, w, l, b)
            standardized = (features - self.feature_mean) / self.feature_scale
            predictions = standardized @ self.coefficients
            leverage = np.sqrt(1.0 + np.einsum(
                "ni,ij,nj->n", standardized, self.normal_inverse, standardized
            ))
            uncertainty = leverage[:, None] * self.residual_std[None, :]
        return predictions, uncertainty

    def optimistic_objectives(
        self,
        predictions: np.ndarray,
        uncertainty: np.ndarray,
        margin_z: float = 1.0,
    ) -> np.ndarray:
        """Best-plausible Equation-12 objective vectors, ``(N, 4)``.

        Each metric is shifted ``margin_z`` uncertainty units in its
        *favourable* direction before being mapped back out of log space
        and signed into the minimisation vector ``[-SNR, -T, E, A]`` —
        a candidate is screened out only when even its optimistic self
        is dominated.
        """
        vectors = []
        for name, sign in _OBJECTIVE_METRICS:
            index = METRIC_FIELDS.index(name)
            if name in LARGER_IS_BETTER:
                value = predictions[:, index] + margin_z * uncertainty[:, index]
            else:
                value = predictions[:, index] - margin_z * uncertainty[:, index]
            if name in LOG_METRICS:
                value = np.exp(value)
            vectors.append(sign * value)
        return np.stack(vectors, axis=1)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serializable snapshot (exact float round trip)."""
        return {
            "format": SURROGATE_FORMAT,
            "coefficients": self.coefficients.tolist(),
            "residual_std": self.residual_std.tolist(),
            "normal_inverse": self.normal_inverse.tolist(),
            "feature_mean": self.feature_mean.tolist(),
            "feature_scale": self.feature_scale.tolist(),
            "training_rows": self.training_rows,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SurrogateModel":
        """Inverse of :meth:`to_dict`."""
        try:
            if int(payload["format"]) != SURROGATE_FORMAT:
                raise OptimizationError(
                    f"unsupported surrogate format {payload['format']!r}"
                )
            return cls(
                coefficients=np.array(payload["coefficients"], dtype=float),
                residual_std=np.array(payload["residual_std"], dtype=float),
                normal_inverse=np.array(payload["normal_inverse"], dtype=float),
                feature_mean=np.array(payload["feature_mean"], dtype=float),
                feature_scale=np.array(payload["feature_scale"], dtype=float),
                training_rows=int(payload["training_rows"]),
                fingerprint=str(payload["fingerprint"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise OptimizationError(f"invalid surrogate payload: {error}")


class SurrogateScreener:
    """Genome-level screening adapter between NSGA-II and the engine.

    Owns a :class:`~repro.engine.screen.ScreeningEvaluator` and exposes
    the three hooks the campaign/explorer stack wires up:

    * :meth:`filter_offspring` — the NSGA-II offspring hook: decode the
      child genome batch, keep every infeasible child (they cost the
      engine nothing) and only the screened fraction of the feasible
      ones;
    * :meth:`observe` — the problem's evaluation observer: feed exact
      results back into the online training set and the non-dominated
      archive;
    * :meth:`state`/:meth:`restore_state` — checkpoint support.  Only
      the training spec tuples are recorded; on restore the metrics are
      re-obtained through the (pure, cached) engine, so a resumed
      screener is bit-identical to the uninterrupted one.
    """

    def __init__(self, evaluator) -> None:
        self.evaluator = evaluator

    # -- NSGA-II hooks ---------------------------------------------------------

    def filter_offspring(self, child_genomes: List, population, problem) -> List:
        """The subset of ``child_genomes`` worth exact evaluation.

        Returned in ascending original-index order; screening decisions
        are deterministic and never consume the optimizer RNG.
        """
        if not child_genomes:
            return list(child_genomes)
        rows = np.asarray(child_genomes, dtype=np.int64)
        h, w, l, b = problem.decode_columns(rows)
        violation = problem._violation_array(h, l, b)
        feasible = violation == 0.0
        feasible_indices = np.flatnonzero(feasible)
        if len(feasible_indices) == 0:
            return list(child_genomes)
        batch = SpecBatch(
            height=h[feasible_indices],
            width=w[feasible_indices],
            local_array_size=l[feasible_indices],
            adc_bits=b[feasible_indices],
        )
        reference = [
            ind.objectives
            for ind in population
            if ind.feasible and ind.rank == 0
        ]
        kept_local = self.evaluator.select(batch, reference)
        keep = set(np.flatnonzero(~feasible).tolist())
        keep.update(feasible_indices[kept_local].tolist())
        return [child_genomes[i] for i in sorted(keep)]

    def observe(self, batch: SpecBatch, metrics_list: Sequence) -> None:
        """Problem-side observer: exact results land in the training set."""
        self.evaluator.observe(batch, metrics_list)

    # -- reporting -------------------------------------------------------------

    @property
    def exact_candidates(self) -> int:
        """Feasible candidates sent to the exact engine so far."""
        return self.evaluator.exact_candidates

    @property
    def screened_candidates(self) -> int:
        """Feasible candidates screened out before exact evaluation."""
        return self.evaluator.screened_candidates

    def front_recall(self, front_objectives: Sequence[Tuple]) -> float:
        """Fraction of the exact-evaluation archive's non-dominated set
        present in ``front_objectives`` (the population's current front)."""
        archive = self.evaluator.archive_front()
        if not archive:
            return 0.0
        found = archive & {tuple(obj) for obj in front_objectives}
        return len(found) / len(archive)

    def generation_snapshot(self, front_objectives: Sequence[Tuple]) -> Dict:
        """Per-generation screening economics row (counter deltas)."""
        exact = self.exact_candidates
        screened = self.screened_candidates
        row = {
            "front_size": len(front_objectives),
            "front_recall": round(self.front_recall(front_objectives), 4),
            "exact_evals": exact - getattr(self, "_last_exact", 0),
            "screened_evals": screened - getattr(self, "_last_screened", 0),
        }
        self._last_exact = exact
        self._last_screened = screened
        return row

    # -- checkpointing ---------------------------------------------------------

    def state(self) -> Dict:
        """JSON-serializable snapshot: the training spec tuples only."""
        return {
            "rows": [list(spec) for spec in self.evaluator.training_specs()],
        }

    def restore_state(self, state: Dict, engine, estimator) -> None:
        """Rebuild the training set from a :meth:`state` snapshot.

        Metrics are re-obtained through ``engine.evaluate_specs`` —
        evaluation is pure and cached, so the restored rows (and every
        later screening decision) match the uninterrupted run exactly.
        """
        tuples = [tuple(row) for row in state.get("rows", [])]
        if not tuples:
            return
        arr = np.asarray(tuples, dtype=np.int64)
        batch = SpecBatch(
            height=arr[:, 0], width=arr[:, 1],
            local_array_size=arr[:, 2], adc_bits=arr[:, 3],
        )
        metrics_list = engine.evaluate_specs(estimator, batch)
        self.observe(batch, metrics_list)

    def persist(self) -> Optional[int]:
        """Persist the current model into the store (if both exist)."""
        return self.evaluator.persist()


def refine_seed_genomes(
    store, problem, params_digest: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Tuple[int, int, int]]:
    """Warm-start genomes from the store's cross-campaign Pareto set.

    Deterministic: the store query orders totally (rank metric, then spec
    tuple); entries outside the problem's space are skipped, duplicates
    (by decoded design point) suppressed, and at most ``limit`` genomes
    returned.  An empty store yields no seeds — ``refine`` then degrades
    gracefully to plain screened exploration.
    """
    entries = store.query(
        pareto_only=True, rank_by="tops_per_watt", params_digest=params_digest
    )
    genomes: List[Tuple[int, int, int]] = []
    seen = set()
    for entry in entries:
        spec = entry.spec
        if spec.height * spec.width != problem.array_size:
            continue
        if not 1 <= spec.adc_bits <= problem.max_adc_bits:
            continue
        try:
            genome = problem.encode(spec)
        except OptimizationError:
            continue
        key = problem.genome_key(genome)
        if key in seen:
            continue
        seen.add(key)
        genomes.append(genome)
        if limit is not None and len(genomes) >= limit:
            break
    return genomes
