"""MOGA-based design space exploration (paper section 3.2).

The explorer treats the choice of (H, W, L, B_ADC) as a constrained
four-objective minimisation problem (Equation 12) and solves it with
NSGA-II, implemented from scratch in :mod:`repro.dse.nsga2`:

* fast non-dominated sorting and crowding-distance assignment,
* constraint-domination (feasible solutions always dominate infeasible
  ones; infeasible ones are ranked by total violation),
* binary tournament selection, uniform/arithmetic crossover and mutation on
  the integer design genome.

Because the discrete ACIM design space is enumerable for the array sizes
the paper studies, :mod:`repro.dse.exhaustive` provides a brute-force
reference frontier the genetic explorer is validated (and benchmarked)
against.  :mod:`repro.dse.distill` implements the "user distillation" step
of Figure 4 that filters the Pareto set down to an application's
requirements.
"""

from repro.dse.pareto import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front,
    pareto_front_mask,
)
from repro.dse.surrogate import (
    SurrogateModel,
    SurrogateScreener,
    refine_seed_genomes,
    training_fingerprint,
)
from repro.dse.nsga2 import NSGA2, NSGA2Config, Individual
from repro.dse.problem import ACIMDesignProblem, EvaluatedDesign
from repro.dse.exhaustive import exhaustive_pareto_front
from repro.dse.explorer import ExplorationResult
from repro.dse.distill import DistillationCriteria, distill
from repro.dse.sensitivity import (
    FrontierSensitivity,
    ParameterSensitivity,
    SensitivityAnalyzer,
    perturb_parameters,
)

__all__ = [
    "crowding_distance",
    "dominates",
    "hypervolume_2d",
    "non_dominated_sort",
    "pareto_front",
    "pareto_front_mask",
    "SurrogateModel",
    "SurrogateScreener",
    "refine_seed_genomes",
    "training_fingerprint",
    "NSGA2",
    "NSGA2Config",
    "Individual",
    "ACIMDesignProblem",
    "EvaluatedDesign",
    "exhaustive_pareto_front",
    "ExplorationResult",
    "DistillationCriteria",
    "distill",
    "FrontierSensitivity",
    "ParameterSensitivity",
    "SensitivityAnalyzer",
    "perturb_parameters",
]
