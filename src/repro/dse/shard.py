"""Sharded pre-evaluation of campaign design grids across processes.

A sharded campaign splits the feasible design grid of its problem space
into N contiguous shards, fans them out to N worker *processes*, and has
every worker commit its evaluations through the concurrent-writer-safe
:class:`~repro.store.result_store.ResultStore` (``BEGIN IMMEDIATE``
transactions arbitrate the writers).  The parent then re-hydrates its
engine cache from the store and drives the NSGA-II loop as usual — every
design point the optimiser touches is already warm, so the optimisation
leg runs at cache speed.

Because evaluation is pure and never consumes optimiser RNG, pre-warming
cannot change results: a sharded campaign's Pareto front is bit-identical
to the unsharded run with the same seed (regression-tested), and the
store ends up with exactly the feasible grid's rows — the same rows a
serial full-grid evaluation plus campaign leaves behind (the
``shard-smoke`` CI target asserts the row-count equivalence).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreError

#: Seconds the parent waits for one shard worker's completion report
#: before declaring the fan-out wedged.
SHARD_TIMEOUT_SECONDS = 600.0


@dataclass(frozen=True)
class ShardSpace:
    """The problem-space parameters a shard worker rebuilds its grid from.

    Mirrors the campaign-config fields persisted by the campaign manager;
    workers reconstruct the *identical*
    :meth:`~repro.dse.problem.ACIMDesignProblem.feasible_batch` grid from
    these five integers instead of receiving pickled spec data.
    """

    array_size: int
    local_array_sizes: Tuple[int, ...]
    max_adc_bits: int
    min_height: int
    max_height: Optional[int]

    def problem(self, estimator=None, engine=None):
        """The design problem spanning this space."""
        from repro.dse.problem import ACIMDesignProblem

        return ACIMDesignProblem(
            self.array_size,
            estimator=estimator,
            local_array_sizes=self.local_array_sizes,
            max_adc_bits=self.max_adc_bits,
            min_height=self.min_height,
            max_height=self.max_height,
            engine=engine,
        )


def plan_shards(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``total`` grid rows into near-equal contiguous ``[lo, hi)`` shards.

    Never returns more shards than rows (a 2-row grid with 8 requested
    shards yields 2), and never an empty shard.
    """
    if total <= 0:
        return []
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _shard_worker(
    store_path: str,
    space: ShardSpace,
    parameters,
    kernel: str,
    shard_index: int,
    lo: int,
    hi: int,
    reply_queue,
) -> None:
    """Evaluate grid rows ``[lo, hi)`` into the store (one worker process).

    Opens its own store connection (SQLite connections do not survive
    forks) and drives a serial store-backed engine — the engine's
    write-behind flush commits the shard's evaluations atomically in
    batches, interleaving safely with sibling shards.
    """
    try:
        from repro.engine import EvaluationCache, EvaluationEngine
        from repro.model.estimator import ACIMEstimator
        from repro.store.result_store import ResultStore

        store = ResultStore(store_path)
        try:
            estimator = ACIMEstimator(parameters, kernel=kernel)
            # A private cache: shard rows are disjoint, so a shared cache
            # would only add lock traffic.
            engine = EvaluationEngine(
                "serial", cache=EvaluationCache(), store=store
            )
            with engine:
                problem = space.problem(estimator=estimator, engine=engine)
                batch = problem.feasible_batch()[lo:hi]
                engine.evaluate_specs(estimator, batch)
                stats = engine.stats.snapshot()
            reply_queue.put(
                {
                    "shard": shard_index,
                    "lo": lo,
                    "hi": hi,
                    "evaluations": stats.evaluations,
                    "store_hits": stats.store_hits,
                    "store_writes": stats.store_writes,
                    "error": None,
                }
            )
        finally:
            store.close()
    except BaseException as exc:  # report, never hang the parent
        reply_queue.put(
            {
                "shard": shard_index,
                "lo": lo,
                "hi": hi,
                "evaluations": 0,
                "store_hits": 0,
                "store_writes": 0,
                "error": repr(exc),
            }
        )


def prewarm_store(
    store,
    space: ShardSpace,
    estimator,
    shards: int,
) -> Dict[str, object]:
    """Fan the feasible grid out over ``shards`` store-writing processes.

    Blocks until every shard has committed, then returns a summary
    (``points``, per-shard reports).  Requires a file-backed store —
    worker processes must be able to open their own connections, so a
    ``":memory:"`` store cannot shard.
    """
    store_path = getattr(store, "path", ":memory:")
    if store_path == ":memory:":
        raise StoreError(
            "sharded campaigns need a file-backed result store "
            "(in-memory stores cannot be shared across shard processes)"
        )
    total = len(space.problem(estimator=estimator).feasible_batch())
    ranges = plan_shards(total, shards)
    ctx = multiprocessing.get_context()
    reply_queue = ctx.Queue()
    procs = []
    kernel = getattr(estimator, "kernel", "vectorized")
    for index, (lo, hi) in enumerate(ranges):
        proc = ctx.Process(
            target=_shard_worker,
            args=(
                store_path, space, estimator.parameters, kernel,
                index, lo, hi, reply_queue,
            ),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        procs.append(proc)
    reports = []
    try:
        for _ in ranges:
            reports.append(reply_queue.get(timeout=SHARD_TIMEOUT_SECONDS))
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
    failed = [r for r in reports if r["error"] is not None]
    if failed:
        details = "; ".join(
            f"shard {r['shard']} [{r['lo']}, {r['hi']}): {r['error']}"
            for r in sorted(failed, key=lambda r: r["shard"])
        )
        raise StoreError(f"sharded pre-warm failed: {details}")
    reports.sort(key=lambda r: r["shard"])
    return {
        "shards": len(ranges),
        "points": total,
        "evaluations": sum(r["evaluations"] for r in reports),
        "store_writes": sum(r["store_writes"] for r in reports),
        "reports": reports,
    }
