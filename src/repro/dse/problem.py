"""The ACIM design-space exploration problem (paper Equation 12).

The genome is the integer triple ``(height_index, local_index, adc_bits)``:

* ``height_index`` selects H from the divisors of the user-defined array
  size (power-of-two heights, as in the paper's explored space), which
  makes the ``H * W = array size`` constraint hold by construction;
* ``local_index`` selects L from the allowed local-array sizes (2..32 by
  default, the paper's bounds);
* ``adc_bits`` is B_ADC directly (1..8 by default).

The remaining Equation-12 constraints (``H >= L``, ``H`` divisible by ``L``
and ``H/L >= 2^B_ADC``) are enforced through the violation value consumed
by the NSGA-II constraint-domination rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import OptimizationError
from repro.arch.spec import ACIMDesignSpec, valid_heights
from repro.engine import EvaluationEngine, default_engine
from repro.model.estimator import ACIMEstimator, ACIMMetrics

#: Genome type: (height_index, local_index, adc_bits).
Genome = Tuple[int, int, int]


@dataclass(frozen=True)
class EvaluatedDesign:
    """A design point together with its metrics and objective vector.

    Attributes:
        spec: the design point.
        metrics: full estimation-model metrics.
        objectives: the Equation-12 minimisation vector [-SNR, -T, E, A].
    """

    spec: ACIMDesignSpec
    metrics: ACIMMetrics
    objectives: Tuple[float, float, float, float]


class ACIMDesignProblem:
    """NSGA-II problem wrapper around the ACIM estimation model."""

    def __init__(
        self,
        array_size: int,
        estimator: Optional[ACIMEstimator] = None,
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        min_height: int = 2,
        max_height: Optional[int] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        if array_size < 4:
            raise OptimizationError("array size must be at least 4 bit cells")
        self.array_size = array_size
        self.estimator = estimator or ACIMEstimator()
        self.engine = engine or default_engine()
        self.local_array_sizes = tuple(sorted(set(local_array_sizes)))
        if not self.local_array_sizes:
            raise OptimizationError("at least one local array size is required")
        self.max_adc_bits = max_adc_bits
        heights = [
            h for h in valid_heights(array_size)
            if h >= min_height and (max_height is None or h <= max_height)
        ]
        # Heights smaller than the smallest L can never be feasible.
        heights = [h for h in heights if h >= min(self.local_array_sizes)]
        if not heights:
            raise OptimizationError(
                f"no valid array heights for array size {array_size}"
            )
        self.heights = heights
        self._cache: Dict[Genome, Tuple[Tuple[float, ...], float]] = {}

    # -- genome <-> spec -------------------------------------------------------

    def decode(self, genome: Genome) -> ACIMDesignSpec:
        """Translate a genome into a design spec (not necessarily feasible)."""
        height_index, local_index, adc_bits = genome
        height = self.heights[height_index % len(self.heights)]
        local = self.local_array_sizes[local_index % len(self.local_array_sizes)]
        adc_bits = min(max(1, adc_bits), self.max_adc_bits)
        width = self.array_size // height
        return ACIMDesignSpec(height, width, local, adc_bits)

    def encode(self, spec: ACIMDesignSpec) -> Genome:
        """Translate a design spec back into a genome."""
        try:
            height_index = self.heights.index(spec.height)
        except ValueError:
            raise OptimizationError(f"height {spec.height} not in problem space")
        try:
            local_index = self.local_array_sizes.index(spec.local_array_size)
        except ValueError:
            raise OptimizationError(
                f"local array size {spec.local_array_size} not in problem space"
            )
        return (height_index, local_index, spec.adc_bits)

    def genome_key(self, genome: Genome) -> Tuple[int, int, int, int]:
        """Canonical duplicate-suppression key (the decoded design point)."""
        return self.decode(genome).as_tuple()

    # -- NSGA-II protocol ------------------------------------------------------

    def random_genome(self, rng: random.Random) -> Genome:
        """Draw a uniformly random genome."""
        return (
            rng.randrange(len(self.heights)),
            rng.randrange(len(self.local_array_sizes)),
            rng.randint(1, self.max_adc_bits),
        )

    def evaluate(self, genome: Genome) -> Tuple[Tuple[float, ...], float]:
        """Objective vector and constraint violation of a genome."""
        return self.evaluate_many([genome])[0]

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> List[Tuple[Tuple[float, ...], float]]:
        """Batched :meth:`evaluate`: results in genome order.

        Violations are computed inline (they are pure arithmetic); the
        feasible specs are submitted to the evaluation engine as one batch,
        which serves repeats from the shared cache and fans the misses out
        across the configured backend.
        """
        results: List[Optional[Tuple[Tuple[float, ...], float]]] = [None] * len(genomes)
        batch_indices: List[int] = []
        batch_specs: List[ACIMDesignSpec] = []
        for index, genome in enumerate(genomes):
            cached = self._cache.get(genome)
            if cached is not None:
                results[index] = cached
                continue
            spec = self.decode(genome)
            violation = self._violation(spec)
            if violation > 0.0:
                # Infeasible points never enter the Pareto ranking among
                # feasible ones; give them a neutral objective vector.
                result = ((0.0, 0.0, 0.0, 0.0), violation)
                self._cache[genome] = result
                results[index] = result
            else:
                batch_indices.append(index)
                batch_specs.append(spec)
        if batch_specs:
            metrics_list = self.engine.evaluate_specs(self.estimator, batch_specs)
            for index, metrics in zip(batch_indices, metrics_list):
                result = (metrics.objectives(), 0.0)
                self._cache[genomes[index]] = result
                results[index] = result
        return results  # type: ignore[return-value]

    def crossover(self, a: Genome, b: Genome, rng: random.Random) -> Genome:
        """Uniform crossover on the three genes."""
        return tuple(rng.choice(pair) for pair in zip(a, b))  # type: ignore[return-value]

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        """Mutate one gene: +/-1 step or full re-draw with small probability."""
        height_index, local_index, adc_bits = genome
        gene = rng.randrange(3)
        if gene == 0:
            if rng.random() < 0.2:
                height_index = rng.randrange(len(self.heights))
            else:
                height_index = _step(height_index, len(self.heights), rng)
        elif gene == 1:
            if rng.random() < 0.2:
                local_index = rng.randrange(len(self.local_array_sizes))
            else:
                local_index = _step(local_index, len(self.local_array_sizes), rng)
        else:
            if rng.random() < 0.2:
                adc_bits = rng.randint(1, self.max_adc_bits)
            else:
                adc_bits = min(self.max_adc_bits, max(1, adc_bits + rng.choice((-1, 1))))
        return (height_index, local_index, adc_bits)

    # -- helpers ---------------------------------------------------------------

    def _violation(self, spec: ACIMDesignSpec) -> float:
        """Total constraint violation of the Equation-12 constraints."""
        violation = 0.0
        if spec.local_array_size > spec.height:
            violation += float(spec.local_array_size - spec.height)
        if spec.height % spec.local_array_size != 0:
            violation += 1.0
        else:
            deficit = 2 ** spec.adc_bits - spec.local_arrays_per_column
            if deficit > 0:
                violation += float(deficit)
        return violation

    def _evaluate_spec(self, spec: ACIMDesignSpec) -> ACIMMetrics:
        # Routed through the engine so the metrics land in the shared bounded
        # cache and survive across problem instances and explorer runs.
        return self.engine.evaluate_specs(self.estimator, [spec])[0]

    def evaluated_design(self, genome: Genome) -> EvaluatedDesign:
        """Full evaluation record of a (feasible) genome."""
        spec = self.decode(genome)
        spec.validate(self.array_size)
        metrics = self._evaluate_spec(spec)
        return EvaluatedDesign(spec=spec, metrics=metrics, objectives=metrics.objectives())

    def feasible_specs(self) -> List[ACIMDesignSpec]:
        """Every feasible design point of this problem instance."""
        specs = []
        for height_index in range(len(self.heights)):
            for local_index in range(len(self.local_array_sizes)):
                for adc_bits in range(1, self.max_adc_bits + 1):
                    spec = self.decode((height_index, local_index, adc_bits))
                    if spec.is_feasible(self.array_size):
                        specs.append(spec)
        return specs


def _step(index: int, size: int, rng: random.Random) -> int:
    """Move an index one step up or down, clamped to the valid range."""
    return min(size - 1, max(0, index + rng.choice((-1, 1))))
