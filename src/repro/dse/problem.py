"""The ACIM design-space exploration problem (paper Equation 12).

The genome is the integer triple ``(height_index, local_index, adc_bits)``:

* ``height_index`` selects H from the divisors of the user-defined array
  size (power-of-two heights, as in the paper's explored space), which
  makes the ``H * W = array size`` constraint hold by construction;
* ``local_index`` selects L from the allowed local-array sizes (2..32 by
  default, the paper's bounds);
* ``adc_bits`` is B_ADC directly (1..8 by default).

The remaining Equation-12 constraints (``H >= L``, ``H`` divisible by ``L``
and ``H/L >= 2^B_ADC``) are enforced through the violation value consumed
by the NSGA-II constraint-domination rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec, valid_heights
from repro.engine import EvaluationEngine, default_engine
from repro.model.estimator import ACIMEstimator, ACIMMetrics

#: Genome type: (height_index, local_index, adc_bits).
Genome = Tuple[int, int, int]


@dataclass(frozen=True)
class EvaluatedDesign:
    """A design point together with its metrics and objective vector.

    Attributes:
        spec: the design point.
        metrics: full estimation-model metrics.
        objectives: the Equation-12 minimisation vector [-SNR, -T, E, A].
    """

    spec: ACIMDesignSpec
    metrics: ACIMMetrics
    objectives: Tuple[float, float, float, float]


class ACIMDesignProblem:
    """NSGA-II problem wrapper around the ACIM estimation model."""

    def __init__(
        self,
        array_size: int,
        estimator: Optional[ACIMEstimator] = None,
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        min_height: int = 2,
        max_height: Optional[int] = None,
        engine: Optional[EvaluationEngine] = None,
        power_of_two_heights: bool = True,
    ) -> None:
        if array_size < 4:
            raise OptimizationError("array size must be at least 4 bit cells")
        self.array_size = array_size
        self.estimator = estimator or ACIMEstimator()
        self.engine = engine or default_engine()
        #: Optional callable ``(SpecBatch, metrics list) -> None`` invoked
        #: after every exact batch evaluation — the surrogate screener
        #: hooks in here to backfill its training set online.
        self.observer = None
        self.local_array_sizes = tuple(sorted(set(local_array_sizes)))
        if not self.local_array_sizes:
            raise OptimizationError("at least one local array size is required")
        self.max_adc_bits = max_adc_bits
        # ``power_of_two_heights=False`` opens the full divisor grid (the
        # huge-space benchmarks); the default keeps the paper's
        # power-of-two explored space.
        heights = [
            h for h in valid_heights(
                array_size, power_of_two_only=power_of_two_heights
            )
            if h >= min_height and (max_height is None or h <= max_height)
        ]
        # Heights smaller than the smallest L can never be feasible.
        heights = [h for h in heights if h >= min(self.local_array_sizes)]
        if not heights:
            raise OptimizationError(
                f"no valid array heights for array size {array_size}"
            )
        self.heights = heights
        self._cache: Dict[Genome, Tuple[Tuple[float, ...], float]] = {}

    # -- genome <-> spec -------------------------------------------------------

    def decode(self, genome: Genome) -> ACIMDesignSpec:
        """Translate a genome into a design spec (not necessarily feasible)."""
        height_index, local_index, adc_bits = genome
        height = self.heights[height_index % len(self.heights)]
        local = self.local_array_sizes[local_index % len(self.local_array_sizes)]
        adc_bits = min(max(1, adc_bits), self.max_adc_bits)
        width = self.array_size // height
        return ACIMDesignSpec(height, width, local, adc_bits)

    def decode_columns(
        self, genome_rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`decode`: ``(k, 3)`` genome rows to spec columns.

        Returns ``(H, W, L, B_ADC)`` arrays.  Must mirror :meth:`decode`
        rule for rule (index wrap-around, B_ADC clamping) — the test suite
        asserts row-by-row parity between the two on random genomes.
        """
        genome_rows = np.asarray(genome_rows, dtype=np.int64)
        heights = np.asarray(self.heights, dtype=np.int64)
        locals_ = np.asarray(self.local_array_sizes, dtype=np.int64)
        h = heights[genome_rows[:, 0] % len(heights)]
        l = locals_[genome_rows[:, 1] % len(locals_)]
        b = np.clip(genome_rows[:, 2], 1, self.max_adc_bits)
        w = self.array_size // h
        return h, w, l, b

    def encode(self, spec: ACIMDesignSpec) -> Genome:
        """Translate a design spec back into a genome."""
        try:
            height_index = self.heights.index(spec.height)
        except ValueError:
            raise OptimizationError(f"height {spec.height} not in problem space")
        try:
            local_index = self.local_array_sizes.index(spec.local_array_size)
        except ValueError:
            raise OptimizationError(
                f"local array size {spec.local_array_size} not in problem space"
            )
        return (height_index, local_index, spec.adc_bits)

    def genome_key(self, genome: Genome) -> Tuple[int, int, int, int]:
        """Canonical duplicate-suppression key (the decoded design point)."""
        return self.decode(genome).as_tuple()

    # -- NSGA-II protocol ------------------------------------------------------

    def random_genome(self, rng: random.Random) -> Genome:
        """Draw a uniformly random genome."""
        return (
            rng.randrange(len(self.heights)),
            rng.randrange(len(self.local_array_sizes)),
            rng.randint(1, self.max_adc_bits),
        )

    def evaluate(self, genome: Genome) -> Tuple[Tuple[float, ...], float]:
        """Objective vector and constraint violation of a genome."""
        return self.evaluate_many([genome])[0]

    def evaluate_many(
        self, genomes: Sequence[Genome]
    ) -> List[Tuple[Tuple[float, ...], float]]:
        """Batched :meth:`evaluate`: results in genome order.

        The whole population is decoded and constraint-checked as NumPy
        columns — genome indices become array lookups into the height/L
        tables, the Equation-12 violations are a handful of vectorized
        comparisons — and the feasible rows are submitted to the evaluation
        engine as one :class:`~repro.arch.batch.SpecBatch`, which serves
        repeats from the shared cache and fans the misses out across the
        configured backend.
        """
        results: List[Optional[Tuple[Tuple[float, ...], float]]] = [None] * len(genomes)
        fresh_indices: List[int] = []
        for index, genome in enumerate(genomes):
            cached = self._cache.get(genome)
            if cached is not None:
                results[index] = cached
            else:
                fresh_indices.append(index)
        if fresh_indices:
            h, w, l, b = self.decode_columns(
                [genomes[i] for i in fresh_indices]
            )
            violation = self._violation_array(h, l, b)
            feasible = violation == 0.0
            batch = SpecBatch(
                height=h[feasible], width=w[feasible],
                local_array_size=l[feasible], adc_bits=b[feasible],
            )
            feasible_positions = [
                index for index, ok in zip(fresh_indices, feasible.tolist()) if ok
            ]
            # Infeasible points never enter the Pareto ranking among
            # feasible ones; give them a neutral objective vector.
            for index, ok, value in zip(
                fresh_indices, feasible.tolist(), violation.tolist()
            ):
                if not ok:
                    result = ((0.0, 0.0, 0.0, 0.0), value)
                    self._cache[genomes[index]] = result
                    results[index] = result
            if len(batch):
                metrics_list = self.engine.evaluate_specs(self.estimator, batch)
                if self.observer is not None:
                    self.observer(batch, metrics_list)
                for index, metrics in zip(feasible_positions, metrics_list):
                    result = (metrics.objectives(), 0.0)
                    self._cache[genomes[index]] = result
                    results[index] = result
        return results  # type: ignore[return-value]

    @staticmethod
    def _violation_array(h: np.ndarray, l: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_violation` over decoded genome columns."""
        violation = np.where(l > h, (l - h).astype(float), 0.0)
        divides = (h % l) == 0
        deficit = (1 << np.clip(b, 0, 62)) - h // l
        violation += np.where(
            divides,
            np.where(deficit > 0, deficit.astype(float), 0.0),
            1.0,
        )
        return violation

    def crossover(self, a: Genome, b: Genome, rng: random.Random) -> Genome:
        """Uniform crossover on the three genes."""
        return tuple(rng.choice(pair) for pair in zip(a, b))  # type: ignore[return-value]

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        """Mutate one gene: +/-1 step or full re-draw with small probability."""
        height_index, local_index, adc_bits = genome
        gene = rng.randrange(3)
        if gene == 0:
            if rng.random() < 0.2:
                height_index = rng.randrange(len(self.heights))
            else:
                height_index = _step(height_index, len(self.heights), rng)
        elif gene == 1:
            if rng.random() < 0.2:
                local_index = rng.randrange(len(self.local_array_sizes))
            else:
                local_index = _step(local_index, len(self.local_array_sizes), rng)
        else:
            if rng.random() < 0.2:
                adc_bits = rng.randint(1, self.max_adc_bits)
            else:
                adc_bits = min(self.max_adc_bits, max(1, adc_bits + rng.choice((-1, 1))))
        return (height_index, local_index, adc_bits)

    # -- helpers ---------------------------------------------------------------

    def _violation(self, spec: ACIMDesignSpec) -> float:
        """Total constraint violation of the Equation-12 constraints."""
        violation = 0.0
        if spec.local_array_size > spec.height:
            violation += float(spec.local_array_size - spec.height)
        if spec.height % spec.local_array_size != 0:
            violation += 1.0
        else:
            deficit = 2 ** spec.adc_bits - spec.local_arrays_per_column
            if deficit > 0:
                violation += float(deficit)
        return violation

    def _evaluate_spec(self, spec: ACIMDesignSpec) -> ACIMMetrics:
        # Routed through the engine so the metrics land in the shared bounded
        # cache and survive across problem instances and explorer runs.
        return self.engine.evaluate_specs(self.estimator, [spec])[0]

    def evaluated_design(self, genome: Genome) -> EvaluatedDesign:
        """Full evaluation record of a (feasible) genome."""
        spec = self.decode(genome)
        spec.validate(self.array_size)
        metrics = self._evaluate_spec(spec)
        return EvaluatedDesign(spec=spec, metrics=metrics, objectives=metrics.objectives())

    def feasible_batch(self) -> SpecBatch:
        """Every feasible design point of this problem instance, as arrays.

        Built meshgrid-style over (heights, local sizes, ADC precisions) in
        genome-index order and filtered by the vectorized Equation-12 mask.
        """
        return SpecBatch.from_product(
            self.heights,
            self.local_array_sizes,
            range(1, self.max_adc_bits + 1),
            array_size=self.array_size,
        )

    def feasible_specs(self) -> List[ACIMDesignSpec]:
        """Every feasible design point of this problem instance."""
        return self.feasible_batch().to_specs()


def _step(index: int, size: int, rng: random.Random) -> int:
    """Move an index one step up or down, clamped to the valid range."""
    return min(size - 1, max(0, index + rng.choice((-1, 1))))
