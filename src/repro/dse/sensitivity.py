"""Sensitivity analysis of the design-space conclusions to model constants.

The estimation-model constants (ADC energy k1/k2, cell areas, timing) are
calibrated from the paper's published numbers and from the behavioral
simulator rather than from the authors' PDK, so a fair question is how much
the *conclusions* — which design points are Pareto-optimal, where the
frontier lies — depend on those constants.  This module perturbs selected
constants by a relative amount, re-evaluates the design space, and reports:

* how the Pareto-frontier membership changes (Jaccard similarity),
* how the headline ranges (TOPS/W, F^2/bit) move,
* per-parameter sensitivity of a single design point's metrics.

A conclusion that survives +/-20 % perturbations of every calibrated
constant is robust to the reproduction's calibration choices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import OptimizationError
from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingParameters
from repro.dse.exhaustive import evaluate_all
from repro.dse.pareto import pareto_front
from repro.engine import EvaluationEngine, default_engine
from repro.model.area import AreaParameters
from repro.model.energy import EnergyParameters
from repro.model.estimator import ACIMEstimator, ModelParameters
from repro.model.snr import SnrParameters

#: Constants the analysis knows how to perturb, as (bundle, field) pairs.
PERTURBABLE_PARAMETERS: Dict[str, Tuple[str, str]] = {
    "k1": ("energy", "k1"),
    "k2": ("energy", "k2"),
    "e_compute": ("energy", "e_compute"),
    "e_control": ("energy", "e_control"),
    "a_sram": ("area", "a_sram"),
    "a_local_compute": ("area", "a_local_compute"),
    "a_comparator": ("area", "a_comparator"),
    "a_dff": ("area", "a_dff"),
    "conversion_time_per_bit": ("timing", "conversion_time_per_bit"),
    "time_constant": ("timing", "time_constant"),
    "unit_capacitance": ("snr", "unit_capacitance"),
    "cap_mismatch_kappa": ("snr", "cap_mismatch_kappa"),
}


@dataclass(frozen=True)
class ParameterSensitivity:
    """Sensitivity of one design point's metrics to one constant.

    Attributes:
        parameter: perturbed constant name.
        relative_change: applied relative perturbation (e.g. 0.2 for +20 %).
        tops_change: relative change of throughput.
        tops_per_watt_change: relative change of energy efficiency.
        area_change: relative change of per-bit area.
        snr_change_db: absolute change of SNR in dB.
    """

    parameter: str
    relative_change: float
    tops_change: float
    tops_per_watt_change: float
    area_change: float
    snr_change_db: float


@dataclass(frozen=True)
class FrontierSensitivity:
    """Effect of one perturbation on the whole design space.

    Attributes:
        parameter: perturbed constant name.
        relative_change: applied relative perturbation.
        jaccard_similarity: |front ∩ front'| / |front ∪ front'| over design
            tuples of the baseline and perturbed Pareto frontiers.
        efficiency_range_shift: relative shift of the max TOPS/W.
        area_range_shift: relative shift of the min F^2/bit.
    """

    parameter: str
    relative_change: float
    jaccard_similarity: float
    efficiency_range_shift: float
    area_range_shift: float


def perturb_parameters(
    base: ModelParameters, parameter: str, relative_change: float
) -> ModelParameters:
    """Return a copy of ``base`` with one constant scaled by (1 + change)."""
    if parameter not in PERTURBABLE_PARAMETERS:
        raise OptimizationError(
            f"unknown perturbable parameter {parameter!r}; "
            f"choose from {sorted(PERTURBABLE_PARAMETERS)}"
        )
    bundle_name, field_name = PERTURBABLE_PARAMETERS[parameter]
    bundle = getattr(base, bundle_name)
    new_value = getattr(bundle, field_name) * (1.0 + relative_change)
    new_bundle = replace(bundle, **{field_name: new_value})
    return replace(base, **{bundle_name: new_bundle})


class SensitivityAnalyzer:
    """Perturbs model constants and measures the impact on conclusions.

    Args:
        base: baseline model constants (defaults to the stock bundle).
        engine: evaluation engine the perturbed design-space grids are
            batched through; defaults to a serial engine on the shared
            cache, so the unperturbed baseline grid is computed only once
            across repeated analyses.
    """

    def __init__(
        self,
        base: Optional[ModelParameters] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.base = base or ModelParameters()
        self.engine = engine or default_engine()

    # -- single design point ------------------------------------------------

    def design_point_sensitivity(
        self,
        spec: ACIMDesignSpec,
        parameters: Sequence[str] = ("k1", "k2", "a_sram", "a_local_compute",
                                     "conversion_time_per_bit"),
        relative_change: float = 0.2,
    ) -> List[ParameterSensitivity]:
        """Metric sensitivity of one design point to each constant."""
        baseline = ACIMEstimator(self.base).evaluate(spec)
        results = []
        for parameter in parameters:
            perturbed_params = perturb_parameters(self.base, parameter, relative_change)
            perturbed = ACIMEstimator(perturbed_params).evaluate(spec)
            results.append(ParameterSensitivity(
                parameter=parameter,
                relative_change=relative_change,
                tops_change=perturbed.tops / baseline.tops - 1.0,
                tops_per_watt_change=(
                    perturbed.tops_per_watt / baseline.tops_per_watt - 1.0),
                area_change=(
                    perturbed.area_f2_per_bit / baseline.area_f2_per_bit - 1.0),
                snr_change_db=perturbed.snr_db - baseline.snr_db,
            ))
        return results

    # -- whole frontier ---------------------------------------------------------

    def frontier_sensitivity(
        self,
        array_size: int,
        parameters: Sequence[str] = ("k1", "k2", "a_local_compute"),
        relative_change: float = 0.2,
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        min_height: int = 2,
        max_height: Optional[int] = None,
    ) -> List[FrontierSensitivity]:
        """Pareto-frontier stability under perturbation of each constant.

        The design-space grid (bounded like the other explorers by
        ``local_array_sizes`` / ``max_adc_bits`` / ``min_height`` /
        ``max_height``) is enumerated once as a
        :class:`~repro.arch.batch.SpecBatch` and re-evaluated through the
        vectorized array path for the baseline and for every perturbed
        parameter bundle.
        """
        from repro.arch.batch import SpecBatch

        grid = SpecBatch.enumerate(
            array_size,
            local_array_sizes=local_array_sizes,
            max_adc_bits=max_adc_bits,
            min_height=min_height,
            max_height=max_height,
        )
        if not len(grid):
            raise OptimizationError(
                f"no feasible design points for array size {array_size} "
                "under the given design-space bounds"
            )
        baseline_designs = evaluate_all(
            array_size, estimator=ACIMEstimator(self.base),
            local_array_sizes=local_array_sizes, max_adc_bits=max_adc_bits,
            engine=self.engine, batch=grid)
        baseline_front = self._front_tuples(baseline_designs)
        baseline_eff = max(d.metrics.tops_per_watt for d in baseline_designs)
        baseline_area = min(d.metrics.area_f2_per_bit for d in baseline_designs)

        results = []
        for parameter in parameters:
            perturbed_params = perturb_parameters(self.base, parameter, relative_change)
            designs = evaluate_all(
                array_size, estimator=ACIMEstimator(perturbed_params),
                local_array_sizes=local_array_sizes, max_adc_bits=max_adc_bits,
                engine=self.engine, batch=grid)
            front = self._front_tuples(designs)
            union = baseline_front | front
            intersection = baseline_front & front
            efficiency = max(d.metrics.tops_per_watt for d in designs)
            area = min(d.metrics.area_f2_per_bit for d in designs)
            results.append(FrontierSensitivity(
                parameter=parameter,
                relative_change=relative_change,
                jaccard_similarity=(len(intersection) / len(union)) if union else 1.0,
                efficiency_range_shift=efficiency / baseline_eff - 1.0,
                area_range_shift=area / baseline_area - 1.0,
            ))
        return results

    @staticmethod
    def _front_tuples(designs) -> set:
        indices = pareto_front([d.objectives for d in designs])
        return {designs[i].spec.as_tuple() for i in indices}
