"""User distillation of the Pareto-frontier set (paper Figure 4).

After the automatic exploration, "users can remove undesired solutions from
the Pareto-frontier set according to their requirements" — e.g. a
transformer accelerator needs a minimum SNR, an always-on CNN needs a
minimum energy efficiency.  :class:`DistillationCriteria` expresses such
requirements and :func:`distill` filters an evaluated design set down to
the ones that satisfy them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dse.problem import EvaluatedDesign


@dataclass(frozen=True)
class DistillationCriteria:
    """Application requirements used to filter the Pareto set.

    All bounds are optional; ``None`` means "don't care".

    Attributes:
        min_snr_db: minimum acceptable SNR in dB.
        min_tops: minimum throughput in TOPS.
        max_energy_per_mac: maximum energy per MAC in joules.
        min_tops_per_watt: minimum energy efficiency in TOPS/W.
        max_area_f2_per_bit: maximum per-bit area in F^2.
        max_total_area_um2: maximum macro area in um^2.
        max_adc_bits: maximum ADC resolution (e.g. interface limits).
        name: label of the application scenario (for reports).
    """

    min_snr_db: Optional[float] = None
    min_tops: Optional[float] = None
    max_energy_per_mac: Optional[float] = None
    min_tops_per_watt: Optional[float] = None
    max_area_f2_per_bit: Optional[float] = None
    max_total_area_um2: Optional[float] = None
    max_adc_bits: Optional[int] = None
    name: str = "custom"

    def accepts(self, design: EvaluatedDesign) -> bool:
        """True when the design satisfies every specified requirement."""
        metrics = design.metrics
        checks = (
            (self.min_snr_db, metrics.snr_db, "ge"),
            (self.min_tops, metrics.tops, "ge"),
            (self.max_energy_per_mac, metrics.energy_per_mac, "le"),
            (self.min_tops_per_watt, metrics.tops_per_watt, "ge"),
            (self.max_area_f2_per_bit, metrics.area_f2_per_bit, "le"),
            (self.max_total_area_um2, metrics.total_area_um2, "le"),
            (self.max_adc_bits, metrics.spec.adc_bits, "le"),
        )
        for bound, value, sense in checks:
            if bound is None:
                continue
            if sense == "ge" and value < bound:
                return False
            if sense == "le" and value > bound:
                return False
        return True

    # -- canonical application scenarios (paper Figure 1) --------------------

    @classmethod
    def transformer(cls) -> "DistillationCriteria":
        """LLM-style transformer: accuracy first (high SNR), throughput next."""
        return cls(min_snr_db=30.0, min_tops=0.5, name="transformer")

    @classmethod
    def cnn(cls) -> "DistillationCriteria":
        """Edge CNN: moderate SNR, strong energy-efficiency requirement."""
        return cls(min_snr_db=18.0, min_tops_per_watt=200.0, name="cnn")

    @classmethod
    def snn(cls) -> "DistillationCriteria":
        """Spiking / always-on workload: lowest energy, relaxed SNR."""
        return cls(min_tops_per_watt=400.0, name="snn")


def distill(
    designs: Sequence[EvaluatedDesign],
    criteria: DistillationCriteria,
) -> List[EvaluatedDesign]:
    """Filter ``designs`` down to the ones meeting ``criteria``."""
    return [design for design in designs if criteria.accepts(design)]


def distill_report(
    designs: Sequence[EvaluatedDesign],
    scenarios: Sequence[DistillationCriteria],
) -> dict:
    """Count how many Pareto solutions survive each scenario's distillation."""
    return {
        scenario.name: len(distill(designs, scenario))
        for scenario in scenarios
    }
