"""Exhaustive design-space enumeration baseline.

The discrete ACIM design space for one array size is small (hundreds of
points), so the true Pareto frontier can be computed by brute force.  The
baseline serves two purposes:

* validation — the NSGA-II explorer must recover (a large fraction of) the
  true frontier, which the test suite checks;
* ablation — the benchmark harness compares the runtime of both approaches
  (experiment A1 in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arch.batch import SpecBatch
from repro.dse.pareto import pareto_front
from repro.dse.problem import EvaluatedDesign
from repro.engine import EvaluationEngine, default_engine
from repro.model.estimator import ACIMEstimator


def evaluate_all(
    array_size: int,
    estimator: Optional[ACIMEstimator] = None,
    local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    max_adc_bits: int = 8,
    engine: Optional[EvaluationEngine] = None,
    batch: Optional[SpecBatch] = None,
) -> List[EvaluatedDesign]:
    """Evaluate every feasible design point of an array size.

    The grid is built directly as a :class:`~repro.arch.batch.SpecBatch`
    (meshgrid-style, no intermediate spec lists) and submitted to the
    evaluation engine as one array batch, so a ``thread``/``process``
    engine parallelises it and repeat calls (e.g. the sensitivity
    analyzer's perturbed sweeps) are served from the shared cache.

    Args:
        batch: a pre-built grid to evaluate instead of enumerating one —
            the sensitivity analyzer passes the same grid across all its
            perturbations so the design space is enumerated once.
    """
    estimator = estimator or ACIMEstimator()
    engine = engine or default_engine()
    if batch is None:
        batch = SpecBatch.enumerate(
            array_size,
            local_array_sizes=local_array_sizes,
            max_adc_bits=max_adc_bits,
        )
    metrics_list = engine.evaluate_specs(estimator, batch)
    return [
        EvaluatedDesign(metrics.spec, metrics, metrics.objectives())
        for metrics in metrics_list
    ]


def exhaustive_pareto_front(
    array_size: int,
    estimator: Optional[ACIMEstimator] = None,
    local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    max_adc_bits: int = 8,
    engine: Optional[EvaluationEngine] = None,
) -> List[EvaluatedDesign]:
    """The exact Pareto frontier of an array size's full design space."""
    designs = evaluate_all(
        array_size,
        estimator=estimator,
        local_array_sizes=local_array_sizes,
        max_adc_bits=max_adc_bits,
        engine=engine,
    )
    if not designs:
        return []
    front_indices = pareto_front([design.objectives for design in designs])
    return [designs[i] for i in front_indices]
