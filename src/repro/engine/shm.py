"""Shared-memory publication of SpecBatch columns and result buffers.

The process backend's unit of exchange used to be pickled column arrays:
every chunk shipped its ``(H, W, L, B_ADC)`` columns through the
``ProcessPoolExecutor`` pipe and received a pickled list of metrics records
back.  With the vectorized model core an analytic evaluation costs ~20 us,
so that per-chunk serialization came to *dominate* the work
(``BENCH_engine.json`` recorded the process backend losing to serial).

:class:`SharedArena` removes the spec payload from the pipe entirely.  The
parent publishes a whole miss batch **once** per submission into a named
``multiprocessing.shared_memory`` segment (four int64 spec columns) and
allocates a sibling result segment (eight float64 metric columns, in
:data:`~repro.model.estimator.METRIC_FIELDS` order).  Workers receive only
a tiny ``(segment names, lo, hi)`` descriptor, map the segments, evaluate
their row range as zero-copy :class:`~repro.arch.batch.SpecBatch` views
and write the metric columns straight into the result segment — nothing
spec- or metrics-shaped ever crosses a pipe in either direction.

Segments are reused across submissions and grown geometrically when a
batch exceeds the arena capacity, so a long-lived engine performs O(1)
allocations over its lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arch.batch import SpecBatch
from repro.model.estimator import METRIC_FIELDS

#: Spec columns per design point (H, W, L, B_ADC), int64 each.
SPEC_COLUMNS = 4
#: Metric columns per design point, float64 each (METRIC_FIELDS order).
RESULT_COLUMNS = len(METRIC_FIELDS)
#: Default arena capacity in design points; grown geometrically on demand.
DEFAULT_ARENA_ROWS = 4096

_SPEC_DTYPE = np.int64
_RESULT_DTYPE = np.float64


@dataclass(frozen=True)
class BatchRef:
    """Work descriptor of one published batch: names + geometry, no data.

    This is everything a worker needs to locate a batch — the whole
    point is that it pickles in a few dozen bytes regardless of how many
    design points the segments hold.

    Attributes:
        spec_name: shared-memory segment holding the int64 spec columns.
        result_name: sibling segment receiving the float64 metric columns.
        rows: number of valid design points in this submission.
        capacity: allocated rows per column (the segment stride).
    """

    spec_name: str
    result_name: str
    rows: int
    capacity: int


def attach_spec_columns(name: str, capacity: int) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a published spec segment as a ``(4, capacity)`` int64 array.

    Returns the segment handle (the caller owns closing it) and the array
    view.  Used by pool workers; the attachment is unregistered from this
    process's resource tracker so a worker exiting can never unlink a
    segment the parent still owns (CPython registers attachments too until
    3.13).
    """
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    view = np.frombuffer(
        segment.buf, dtype=_SPEC_DTYPE, count=SPEC_COLUMNS * capacity
    ).reshape(SPEC_COLUMNS, capacity)
    return segment, view


def attach_result_columns(name: str, capacity: int) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Map a result segment as a ``(8, capacity)`` float64 array (see above)."""
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    view = np.frombuffer(
        segment.buf, dtype=_RESULT_DTYPE, count=RESULT_COLUMNS * capacity
    ).reshape(RESULT_COLUMNS, capacity)
    return segment, view


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Unregister an *attachment* from this process's resource tracker.

    Only the creating process may unlink a segment; under ``spawn`` a
    worker has its *own* tracker, which would reclaim segments the parent
    is still serving the moment the worker exits (fixed upstream only in
    Python 3.13's ``track=False``).  Under ``fork`` the tracker process is
    shared with the parent — the attach-side registration deduplicates
    into the parent's entry, so unregistering here would strand the
    parent's unlink bookkeeping instead; leave it alone.
    """
    try:  # pragma: no cover - defensive against stdlib internals moving
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedArena:
    """Reusable shared-memory staging area for batch submissions.

    One arena serves one engine: :meth:`publish` copies a miss batch's
    columns in (the only copy the parent ever makes) and returns the
    :class:`BatchRef` descriptor; after the pool reports completion,
    :meth:`collect` copies the metric columns back out.  Capacity grows
    geometrically, so segment (re-)allocation is amortized O(1).

    Args:
        initial_rows: starting capacity in design points.
    """

    def __init__(self, initial_rows: int = DEFAULT_ARENA_ROWS) -> None:
        self._initial_rows = max(1, initial_rows)
        self._capacity = 0
        self._specs: Optional[shared_memory.SharedMemory] = None
        self._results: Optional[shared_memory.SharedMemory] = None
        self._spec_view: Optional[np.ndarray] = None
        self._result_view: Optional[np.ndarray] = None

    @property
    def capacity(self) -> int:
        """Allocated rows per column (0 before the first publication)."""
        return self._capacity

    def publish(self, batch: SpecBatch) -> BatchRef:
        """Stage a batch's columns into shared memory, growing if needed."""
        rows = len(batch)
        self._ensure_capacity(rows)
        assert self._spec_view is not None
        for index, column in enumerate(batch.columns()):
            self._spec_view[index, :rows] = column
        return BatchRef(
            spec_name=self._specs.name,
            result_name=self._results.name,
            rows=rows,
            capacity=self._capacity,
        )

    def collect(self, rows: int) -> Dict[str, np.ndarray]:
        """Copy the first ``rows`` of every metric column out of the arena.

        Returns ``{metric field: float64 array}`` in
        :data:`~repro.model.estimator.METRIC_FIELDS` order.  The copies are
        owned by the caller, so the arena can be republished immediately.
        """
        assert self._result_view is not None
        return {
            name: np.array(self._result_view[index, :rows])
            for index, name in enumerate(METRIC_FIELDS)
        }

    def _ensure_capacity(self, rows: int) -> None:
        if rows <= self._capacity and self._specs is not None:
            return
        capacity = max(rows, self._capacity * 2, self._initial_rows)
        self._release()
        self._specs = shared_memory.SharedMemory(
            create=True,
            size=SPEC_COLUMNS * capacity * np.dtype(_SPEC_DTYPE).itemsize,
        )
        self._results = shared_memory.SharedMemory(
            create=True,
            size=RESULT_COLUMNS * capacity * np.dtype(_RESULT_DTYPE).itemsize,
        )
        self._spec_view = np.frombuffer(
            self._specs.buf, dtype=_SPEC_DTYPE
        ).reshape(SPEC_COLUMNS, capacity)
        self._result_view = np.frombuffer(
            self._results.buf, dtype=_RESULT_DTYPE
        ).reshape(RESULT_COLUMNS, capacity)
        self._capacity = capacity

    def _release(self) -> None:
        # NumPy views export the segment buffers; drop them before closing
        # or mmap refuses to unmap.
        self._spec_view = None
        self._result_view = None
        for segment in (self._specs, self._results):
            if segment is None:
                continue
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._specs = None
        self._results = None
        self._capacity = 0

    def close(self) -> None:
        """Unlink both segments (idempotent).

        Workers still holding old mappings keep valid memory until they
        drop them — POSIX unlink only removes the name.
        """
        self._release()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
