"""Persistent worker processes serving shared-memory batch evaluations.

:class:`PersistentWorkerPool` is the execution half of the process
backend's shared-memory redesign (:mod:`repro.engine.shm` is the data
half).  Workers are spawned once per engine and live until
:meth:`~repro.engine.engine.EvaluationEngine.close`; each holds a warm
:class:`~repro.model.estimator.ACIMEstimator` per model-parameter bundle,
so neither interpreter startup nor estimator construction is ever paid per
chunk.  A chunk of work travels as a :class:`ChunkTask` — a
:class:`~repro.engine.shm.BatchRef` plus a ``[lo, hi)`` row range — and
the metric columns come back through the shared result segment, so the
task/result queues only ever carry descriptors and timings.

Failure behavior (the part thread pools get for free and process pools
must earn):

* **Worker crash** (segfault, OOM kill, ``kill -9``): the parent's result
  wait never blocks indefinitely — it polls worker liveness and raises
  :class:`~repro.errors.WorkerCrashError` naming the unfinished shard
  ranges.  The engine discards the broken pool and builds a fresh one on
  the next submission.
* **Parent crash**: workers are daemons *and* watch their parent — the
  task-queue wait uses a timeout, and a worker exits on its own when
  ``multiprocessing.parent_process()`` is gone.  The daemon flag alone
  does not cover a parent killed with ``SIGKILL`` (the multiprocessing
  atexit hook never runs), so both mechanisms are load-bearing; the
  orphan-process test exercises the hard-kill path.
* **Evaluation error** (e.g. an infeasible spec): the original exception
  is shipped back and re-raised in the parent after the submission's
  remaining chunks have drained, so a later submission can never collide
  with stragglers still writing to the arena.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.shm import (
    BatchRef,
    SPEC_COLUMNS,
    attach_result_columns,
    attach_spec_columns,
)
from repro.errors import EngineError, WorkerCrashError
from repro.obs.trace import worker_span_record

#: Seconds a worker blocks on the task queue before re-checking that its
#: parent process is still alive (the orphan-prevention heartbeat).
PARENT_POLL_SECONDS = 1.0
#: Parent-side result-queue poll interval; each timeout doubles as a
#: worker-liveness check, bounding crash-detection latency.
RESULT_POLL_SECONDS = 0.05
#: Grace period for workers to drain the shutdown sentinel before the
#: pool escalates to ``terminate()``.
JOIN_TIMEOUT_SECONDS = 5.0


@dataclass(frozen=True)
class ChunkTask:
    """One unit of pool work: evaluate rows ``[lo, hi)`` of a published batch.

    Everything here pickles in constant size — the spec data itself stays
    in the shared segments named by ``ref``.

    Attributes:
        task_id: submission-unique id (monotonic across the pool lifetime,
            so stale results from an abandoned submission can never be
            mistaken for current ones).
        lo: first batch row of this chunk.
        hi: one past the last batch row.
        ref: location/geometry of the published batch.
        parameters: the :class:`~repro.model.estimator.ModelParameters`
            bundle (small, pickled once per chunk; workers memoize the
            estimator built from it).
        kernel: estimator kernel flavour (``vectorized``/``reference``).
        trace: when True the worker records span dictionaries for this
            chunk and ships them back with the reply (the parent adopts
            them into its trace; see :mod:`repro.obs.trace`).
    """

    task_id: int
    lo: int
    hi: int
    ref: BatchRef
    parameters: object
    kernel: str
    trace: bool = False


# -- worker process ------------------------------------------------------------


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: attach, evaluate, write results, report timing.

    Runs until a ``None`` sentinel arrives or the parent process
    disappears.  Segment attachments and estimators are memoized across
    tasks — the whole point of pool persistence.
    """
    attachments: Dict[str, tuple] = {}
    estimators: Dict[tuple, object] = {}
    while True:
        try:
            task = task_queue.get(timeout=PARENT_POLL_SECONDS)
        except queue.Empty:
            parent = multiprocessing.parent_process()
            if parent is None or not parent.is_alive():
                break
            continue
        except (EOFError, OSError):  # queue torn down under us
            break
        if task is None:
            break
        result_queue.put(_process_task(task, attachments, estimators))
    _detach_all(attachments)


def _process_task(task: "ChunkTask", attachments: Dict, estimators: Dict) -> tuple:
    """Evaluate one chunk, returning the queue reply.

    The reply is ``(kind, task_id, payload, spans)``; ``spans`` is a
    (possibly empty) tuple of worker span dictionaries recorded only when
    ``task.trace`` is set, so untraced runs ship nothing extra.  Kept out
    of the worker loop so segment views never linger as loop frame locals
    — they must all be droppable for detach to unmap.
    """
    start_ns = time.perf_counter_ns() if task.trace else 0
    started = time.perf_counter()
    try:
        spec_view = _attached_view(
            attachments, "specs", task.ref.spec_name, task.ref.capacity,
            attach_spec_columns,
        )
        result_view = _attached_view(
            attachments, "results", task.ref.result_name,
            task.ref.capacity, attach_result_columns,
        )
        estimator = _estimator_for(estimators, task.parameters, task.kernel)
        columns = _evaluate_rows(estimator, spec_view, task.lo, task.hi)
        for row_index, column in enumerate(columns):
            result_view[row_index, task.lo:task.hi] = column
        elapsed = time.perf_counter() - started
        spans = ()
        if task.trace:
            spans = (worker_span_record(
                "engine.chunk",
                start_ns,
                time.perf_counter_ns(),
                where="worker",
                lo=task.lo,
                hi=task.hi,
                kernel=task.kernel,
            ),)
        return ("done", task.task_id, elapsed, spans)
    except BaseException as exc:  # ship *any* failure back, never die
        return ("error", task.task_id, _portable_exception(exc), ())


def _attached_view(attachments: Dict, role: str, name: str, capacity: int, attach):
    """The memoized segment view for ``role``, re-attaching when the arena grew."""
    cached = attachments.get(role)
    if cached is not None and cached[0] == name:
        return cached[2]
    if cached is not None:
        _drop_attachment(attachments, role)
    segment, view = attach(name, capacity)
    attachments[role] = (name, segment, view)
    return view


def _drop_attachment(attachments: Dict, role: str) -> None:
    # The NumPy view exports the segment buffer; every reference to it
    # must be gone before close() can unmap (else a BufferError surfaces
    # from SharedMemory.__del__ at interpreter shutdown).
    _, segment, view = attachments.pop(role)
    del view
    try:
        segment.close()
    except Exception:  # pragma: no cover - best-effort unmap
        pass


def _detach_all(attachments: Dict) -> None:
    for role in list(attachments):
        _drop_attachment(attachments, role)


def _estimator_for(estimators: Dict, parameters, kernel: str):
    """The warm per-process estimator for a parameter bundle (built once)."""
    from repro.engine.cache import parameters_cache_key
    from repro.model.estimator import ACIMEstimator

    key = (parameters_cache_key(parameters), kernel)
    estimator = estimators.get(key)
    if estimator is None:
        estimator = ACIMEstimator(parameters, kernel=kernel)
        estimators[key] = estimator
    return estimator


def _evaluate_rows(estimator, spec_view, lo: int, hi: int) -> List:
    """Metric columns (METRIC_FIELDS order) for rows ``[lo, hi)``.

    The sub-batch is a zero-copy view over the shared spec segment; the
    vectorized kernels read it in place.  The reference kernel (scalar
    parity path) materialises records and re-columnises them — identical
    floats either way, so backend parity tests hold for both kernels.
    """
    import numpy as np

    from repro.arch.batch import SpecBatch
    from repro.model.estimator import METRIC_FIELDS

    batch = SpecBatch.from_columns(
        tuple(spec_view[index, lo:hi] for index in range(SPEC_COLUMNS))
    )
    if getattr(estimator, "kernel", "vectorized") == "reference":
        records = estimator.evaluate_batch(batch)
        return [
            np.array([getattr(record, name) for record in records])
            for name in METRIC_FIELDS
        ]
    arrays = estimator.evaluate_arrays(batch)
    return [getattr(arrays, name) for name in METRIC_FIELDS]


def _portable_exception(exc: BaseException) -> Exception:
    """``exc`` if it survives a pickle round-trip, else a wrapped summary."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc if isinstance(exc, Exception) else EngineError(repr(exc))
    except Exception:
        return EngineError(f"worker evaluation failed: {exc!r}")


def _ensure_resource_tracker() -> None:
    """Start the parent's shared-memory resource tracker *before* forking.

    Under ``fork``, workers reuse an already-running parent tracker — but
    if none exists at fork time, each worker's first segment attach spawns
    a private tracker that outlives the worker just long enough to warn
    about "leaked" segments it never owned (the parent unlinks them).
    Starting the tracker up front makes every fork inherit it.
    """
    try:  # pragma: no cover - trivially version-dependent
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


# -- parent-side pool ----------------------------------------------------------


class PersistentWorkerPool:
    """A fixed set of long-lived daemon workers fed by descriptor queues.

    Args:
        workers: number of worker processes (spawned immediately).
        context: a ``multiprocessing`` context; defaults to the platform
            default (``fork`` on Linux, so workers inherit the parent's
            imported modules for free).
    """

    def __init__(self, workers: int, context=None) -> None:
        self._ctx = context or multiprocessing.get_context()
        _ensure_resource_tracker()
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._next_task_id = 0
        self._closed = False
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"repro-engine-worker-{index}",
            )
            for index in range(max(1, workers))
        ]
        for proc in self._procs:
            proc.start()

    @property
    def workers(self) -> int:
        """Configured pool width."""
        return len(self._procs)

    @property
    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the worker processes (for lifecycle tests)."""
        return [proc.pid for proc in self._procs]

    def healthy(self) -> bool:
        """True while the pool is open and every worker is alive."""
        return not self._closed and all(p.is_alive() for p in self._procs)

    def run(
        self,
        ranges: Sequence[Tuple[int, int]],
        ref: BatchRef,
        parameters,
        kernel: str,
        *,
        trace: bool = False,
        span_sink: Optional[List] = None,
    ) -> Dict[Tuple[int, int], float]:
        """Dispatch row ranges of a published batch and await completion.

        Returns per-range in-worker compute seconds.  With ``trace``
        set, worker-recorded span dictionaries are appended to
        ``span_sink`` (the engine adopts them into the live trace).
        Raises :class:`~repro.errors.WorkerCrashError` (listing
        unfinished ranges) when a worker dies, or the original
        evaluation exception after all of this submission's chunks have
        settled.
        """
        if self._closed:
            raise EngineError("worker pool is closed")
        pending: Dict[int, Tuple[int, int]] = {}
        for lo, hi in ranges:
            task = ChunkTask(
                task_id=self._next_task_id, lo=lo, hi=hi, ref=ref,
                parameters=parameters, kernel=kernel, trace=trace,
            )
            self._next_task_id += 1
            pending[task.task_id] = (lo, hi)
            self._tasks.put(task)
        timings: Dict[Tuple[int, int], float] = {}
        first_error: Optional[Exception] = None
        while pending:
            try:
                kind, task_id, payload, spans = self._results.get(
                    timeout=RESULT_POLL_SECONDS
                )
            except queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    raise WorkerCrashError(
                        "worker process"
                        f"{'es' if len(dead) > 1 else ''} "
                        + ", ".join(
                            f"pid {p.pid} (exitcode {p.exitcode})"
                            for p in dead
                        )
                        + " died with shard ranges "
                        + str(sorted(pending.values()))
                        + " unfinished",
                        failed_ranges=sorted(pending.values()),
                    )
                continue
            if task_id not in pending:
                continue  # straggler from an abandoned submission
            chunk_range = pending.pop(task_id)
            if spans and span_sink is not None:
                span_sink.extend(spans)
            if kind == "done":
                timings[chunk_range] = payload
            elif first_error is None:
                first_error = payload
        if first_error is not None:
            raise first_error
        return timings

    def close(self) -> None:
        """Sentinel every worker out, escalating to terminate (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        deadline = time.monotonic() + JOIN_TIMEOUT_SECONDS
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
