"""Surrogate-screened evaluation: learned pre-filtering for the engine.

:class:`ScreeningEvaluator` wraps
:meth:`~repro.engine.engine.EvaluationEngine.evaluate_specs` with a
:class:`~repro.dse.surrogate.SurrogateModel`: an incoming candidate
:class:`~repro.arch.batch.SpecBatch` is predicted in one array pass,
ranked by how plausibly each point is non-dominated against a reference
front (with a calibrated optimistic uncertainty margin), and only the top
``screen_fraction`` — plus an exploration quota of the highest-leverage
remainder — is sent to the exact engine.  Exact results are observed back
into the online training set, so the model sharpens as the run proceeds.

Cold-store fallback: until :data:`~repro.dse.surrogate.MIN_FIT_ROWS`
exact rows have been observed, :meth:`select` keeps everything — a
screener over an empty store behaves exactly like the unscreened engine.

Screening decisions are deterministic (pure array math over the training
set, no RNG), and the training set is insertion-keyed by spec tuple but
canonically sorted before each fit — the coefficients depend only on
*which* rows were seen, never on the order they arrived in.

Counters ``engine.surrogate.exact`` / ``engine.surrogate.screened``
record how many feasible candidates were forwarded vs dropped; they
surface as ``surrogate_exact`` / ``surrogate_screened`` in
:class:`~repro.engine.engine.EngineStats`.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.batch import SpecBatch
from repro.dse.surrogate import (
    MIN_FIT_ROWS,
    SurrogateModel,
    training_fingerprint,
)
from repro.engine.cache import parameters_cache_key
from repro.model.estimator import METRIC_FIELDS

#: Objective vector column indices into the 8-metric row tuples:
#: (-snr_db, -tops, energy_per_mac, area_f2_per_bit).
_OBJ_INDICES = tuple(
    METRIC_FIELDS.index(name)
    for name in ("snr_db", "tops", "energy_per_mac", "area_f2_per_bit")
)


class ScreeningEvaluator:
    """Surrogate-screened façade over ``EvaluationEngine.evaluate_specs``.

    Args:
        engine: the exact evaluation engine; screening counters are
            recorded into its metrics registry.
        estimator: the estimation model (defines the parameter digest
            that keys persisted surrogates and store training scans).
        screen_fraction: fraction of a feasible candidate batch forwarded
            to the exact engine once the model is fit (at least 1 point).
        explore_fraction: extra quota, as a fraction of the screened
            budget, spent on the highest-leverage rejected candidates so
            the model keeps learning where it is least certain.
        margin_z: optimistic-margin width in per-point uncertainty units.
        min_fit_rows: training rows required before screening engages.
        store: optional :class:`~repro.store.result_store.ResultStore`;
            when given, the training set is seeded from the store's rows
            for this parameter bundle and a fingerprint-matched persisted
            model is reused instead of refit.
        seed_from_store: disable the store seeding scan (checkpoint
            restore paths rebuild the training set explicitly instead).
    """

    def __init__(
        self,
        engine,
        estimator,
        screen_fraction: float = 0.25,
        explore_fraction: float = 0.1,
        margin_z: float = 1.0,
        min_fit_rows: int = MIN_FIT_ROWS,
        store=None,
        seed_from_store: bool = True,
    ) -> None:
        if not 0.0 < screen_fraction <= 1.0:
            raise ValueError("screen_fraction must be in (0, 1]")
        self.engine = engine
        self.estimator = estimator
        self.screen_fraction = float(screen_fraction)
        self.explore_fraction = float(explore_fraction)
        self.margin_z = float(margin_z)
        self.min_fit_rows = max(2, int(min_fit_rows))
        self.store = store
        from repro.store.result_store import params_digest_of

        self.params_digest = params_digest_of(
            parameters_cache_key(estimator.parameters)
        )
        self._m_screened = engine.metrics.counter("engine.surrogate.screened")
        self._m_exact = engine.metrics.counter("engine.surrogate.exact")
        self.exact_candidates = 0
        self.screened_candidates = 0
        #: spec tuple -> 8-metric tuple, insertion ordered.
        self._rows: Dict[Tuple[int, int, int, int], Tuple[float, ...]] = {}
        self._model: Optional[SurrogateModel] = None
        self._fitted_rows = -1
        self._archive: set = set()
        self._archive_rows = -1
        self._stored = (
            store.latest_surrogate(self.params_digest)
            if store is not None else None
        )
        if store is not None and seed_from_store:
            for spec_tuple, metric_tuple in store.training_rows(
                self.params_digest
            ):
                self._rows.setdefault(tuple(spec_tuple), tuple(metric_tuple))

    # -- training set ----------------------------------------------------------

    def observe(self, batch: SpecBatch, metrics_list: Sequence) -> None:
        """Add exact evaluation results to the online training set."""
        for spec_tuple, metrics in zip(batch.as_tuples(), metrics_list):
            if spec_tuple not in self._rows:
                self._rows[spec_tuple] = tuple(
                    getattr(metrics, field) for field in METRIC_FIELDS
                )

    def training_specs(self) -> List[Tuple[int, int, int, int]]:
        """The training spec tuples, in insertion order (checkpointing)."""
        return list(self._rows)

    @property
    def training_rows(self) -> int:
        """Number of distinct training rows observed so far."""
        return len(self._rows)

    @property
    def ready(self) -> bool:
        """True once enough rows exist for screening to engage."""
        return len(self._rows) >= self.min_fit_rows

    # -- model lifecycle -------------------------------------------------------

    def model(self) -> Optional[SurrogateModel]:
        """The current model, (re)fit lazily when the training set grew.

        When a persisted model's training fingerprint matches the current
        set exactly it is deserialized instead of refit (same
        coefficients either way — the fit is a pure function of the set
        and serialization round-trips floats exactly); any mismatch
        invalidates it and triggers a fresh fit.
        """
        count = len(self._rows)
        if count < self.min_fit_rows:
            return None
        if self._model is not None and self._fitted_rows == count:
            return self._model
        ordered = sorted(self._rows)
        fingerprint = training_fingerprint(ordered)
        model: Optional[SurrogateModel] = None
        if (
            self._stored is not None
            and self._stored.get("training_fingerprint") == fingerprint
        ):
            model = SurrogateModel.from_dict(self._stored["model"])
        if model is None:
            arr = np.asarray(ordered, dtype=np.int64)
            columns = (arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
            targets = np.asarray(
                [self._rows[spec] for spec in ordered], dtype=float
            )
            model = SurrogateModel.fit(columns, targets, fingerprint=fingerprint)
        self._model = model
        self._fitted_rows = count
        return model

    def persist(self) -> Optional[int]:
        """Version the current model into the store's ``surrogates`` table.

        No-op (returns None) without a store or before the first fit;
        otherwise returns the stored version number.
        """
        if self.store is None:
            return None
        model = self.model()
        if model is None:
            return None
        return self.store.put_surrogate(
            self.params_digest,
            training_rows=model.training_rows,
            fingerprint=model.fingerprint,
            model=model.to_dict(),
        )

    # -- the screen ------------------------------------------------------------

    def select(
        self, batch: SpecBatch, reference_objectives: Sequence[Tuple]
    ) -> np.ndarray:
        """Indices (ascending) of the batch rows worth exact evaluation.

        Candidates are ranked the way NSGA-II itself would select
        survivors, but on *optimistic* predicted objectives: primarily by
        how many reference-front points dominate them, then by predicted
        non-dominated rank within the batch, then by descending crowding
        distance (boundary candidates of every objective carry infinite
        crowding, so predicted extreme trade-off points always survive
        the screen).  The top ``screen_fraction`` plus an exploration
        quota of the highest-leverage remainder is kept.  Below
        ``min_fit_rows`` everything is kept (cold fallback).
        """
        count = len(batch)
        if count == 0:
            return np.arange(0)
        model = self.model()
        if model is None:
            self.exact_candidates += count
            self._m_exact.add(count)
            return np.arange(count)
        predictions, uncertainty = model.predict(batch.columns())
        optimistic = model.optimistic_objectives(
            predictions, uncertainty, self.margin_z
        )
        reference = np.asarray(reference_objectives, dtype=float)
        if reference.size:
            no_worse = reference[None, :, :] <= optimistic[:, None, :]
            better = reference[None, :, :] < optimistic[:, None, :]
            dominated_by = np.sum(
                np.all(no_worse, axis=2) & np.any(better, axis=2), axis=1
            )
        else:
            dominated_by = np.zeros(count, dtype=np.int64)
        # NSGA-II survivor ordering on the predictions: non-dominated
        # rank within the candidate batch, crowding distance within each
        # rank.  In near-degenerate spaces where almost everything is
        # mutually non-dominated, the crowding term is what preserves
        # objective-space spread through the screen.
        rank = np.zeros(count, dtype=np.int64)
        crowding = np.zeros(count, dtype=float)
        for depth, front in enumerate(non_dominated_sort_cached(optimistic)):
            rank[front] = depth
            distances = crowding_distance_cached(optimistic[front])
            crowding[front] = np.nan_to_num(
                np.asarray(distances, dtype=float), posinf=1e30
            )
        budget = max(1, math.ceil(self.screen_fraction * count))
        order = np.lexsort((np.arange(count), -crowding, rank, dominated_by))
        kept = list(order[:budget].tolist())
        if budget < count:
            quota = max(1, math.ceil(self.explore_fraction * budget))
            rest = order[budget:]
            leverage = uncertainty.mean(axis=1)
            explore_order = rest[np.lexsort((rest, -leverage[rest]))]
            kept.extend(explore_order[:quota].tolist())
        keep = np.array(sorted(set(kept)), dtype=np.int64)
        self.exact_candidates += len(keep)
        self.screened_candidates += count - len(keep)
        self._m_exact.add(len(keep))
        self._m_screened.add(count - len(keep))
        return keep

    def evaluate(
        self, batch: SpecBatch, reference_objectives: Sequence[Tuple] = ()
    ) -> Tuple[np.ndarray, List]:
        """Screen then exactly evaluate one batch: ``(kept indices, metrics)``.

        The direct wrapper form of the NSGA-II hook: the kept subset goes
        through ``engine.evaluate_specs`` and the exact results are
        observed back into the training set.  ``metrics`` aligns with the
        returned indices.
        """
        keep = self.select(batch, reference_objectives)
        kept_batch = batch.take(list(keep.tolist()))
        metrics_list = self.engine.evaluate_specs(self.estimator, kept_batch)
        self.observe(kept_batch, metrics_list)
        return keep, metrics_list

    # -- archive / recall ------------------------------------------------------

    def archive_front(self) -> set:
        """Non-dominated objective tuples over every observed exact row.

        Recomputed lazily when the training set grew; used to report
        ``front_recall`` — how much of the best-known front the current
        population retains.
        """
        count = len(self._rows)
        if count != self._archive_rows:
            if count == 0:
                self._archive = set()
            else:
                rows = np.asarray(list(self._rows.values()), dtype=float)
                objectives = np.stack(
                    (
                        -rows[:, _OBJ_INDICES[0]],
                        -rows[:, _OBJ_INDICES[1]],
                        rows[:, _OBJ_INDICES[2]],
                        rows[:, _OBJ_INDICES[3]],
                    ),
                    axis=1,
                )
                mask = pareto_front_mask_cached(objectives)
                self._archive = {
                    tuple(row) for row in objectives[mask].tolist()
                }
            self._archive_rows = count
        return self._archive


def pareto_front_mask_cached(objectives: np.ndarray) -> np.ndarray:
    """Thin indirection so the dse-layer mask is imported lazily."""
    from repro.dse.pareto import pareto_front_mask

    return pareto_front_mask(objectives)


def non_dominated_sort_cached(objectives: np.ndarray):
    """Lazy import of the dse-layer non-dominated sort."""
    from repro.dse.pareto import non_dominated_sort

    return non_dominated_sort(objectives.tolist())


def crowding_distance_cached(objectives: np.ndarray):
    """Lazy import of the dse-layer crowding distance."""
    from repro.dse.pareto import crowding_distance

    return crowding_distance(objectives.tolist())


def load_surrogate_json(payload: str) -> SurrogateModel:
    """Deserialize a persisted ``model_json`` column (store helper)."""
    return SurrogateModel.from_dict(json.loads(payload))
