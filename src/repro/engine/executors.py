"""Executor backends of the evaluation engine.

Three backends cover the latency/throughput trade-offs of the repository's
workloads:

* ``serial``  — no executor at all; zero overhead, the right choice for
  cheap analytic evaluations and for debugging.
* ``thread``  — :class:`concurrent.futures.ThreadPoolExecutor`; useful when
  the work releases the GIL (numpy-heavy Monte-Carlo, file export) or is
  I/O bound.
* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism for CPU-bound work (layout generation, high-fidelity
  evaluation).  Work functions and their arguments must be picklable.

The pool is created lazily and reused across batches so NSGA-II's
per-generation submissions amortize the spawn cost over the whole run.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional, Tuple

from repro.errors import EngineError

#: The recognised backend names, in increasing isolation order.
BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")


def validate_backend(backend: str) -> str:
    """Return ``backend`` lower-cased, raising on unknown names."""
    name = str(backend).lower()
    if name not in BACKENDS:
        raise EngineError(
            f"unknown engine backend {backend!r}; choose from {BACKENDS}"
        )
    return name


def resolve_workers(workers: Optional[int]) -> int:
    """Number of pool workers: explicit value or the machine's CPU count."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise EngineError("workers must be at least 1")
    return int(workers)


def create_executor(backend: str, workers: int) -> Optional[Executor]:
    """Create the executor for ``backend`` (``None`` for ``serial``).

    Per-worker estimator setup for the ``process`` backend happens through
    the :data:`~repro.engine.engine._WORKER_ESTIMATORS` memo rather than a
    pool initializer, so one pool can serve many parameter bundles.

    Args:
        backend: validated backend name.
        workers: pool size (ignored for ``serial``).
    """
    if backend == "serial":
        return None
    if backend == "thread":
        return ThreadPoolExecutor(max_workers=workers)
    return ProcessPoolExecutor(max_workers=workers)
