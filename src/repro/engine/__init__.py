"""Unified evaluation engine: batched, parallel, cached design evaluation.

Every evaluation consumer in the repository — the NSGA-II explorer, the
exhaustive baseline, the sensitivity analyzer, the flow controller's
netlist/layout fan-out and the scaling benchmarks — routes through
:class:`EvaluationEngine`, which pairs a pluggable executor backend
(``serial`` / ``thread`` / ``process``) with a bounded shared memoization
cache keyed by ``(spec, model-params, tech)``.

See ``docs/engine.md`` for backend selection and cache semantics.
"""

from repro.engine.cache import (
    EvaluationCache,
    parameters_cache_key,
    reset_shared_cache,
    shared_cache,
    spec_cache_key,
)
from repro.engine.engine import EngineStats, EvaluationEngine, default_engine
from repro.engine.executors import BACKENDS, resolve_workers, validate_backend
from repro.engine.screen import ScreeningEvaluator
from repro.engine.shm import BatchRef, SharedArena
from repro.engine.workers import PersistentWorkerPool

__all__ = [
    "BACKENDS",
    "BatchRef",
    "EngineStats",
    "EvaluationCache",
    "EvaluationEngine",
    "PersistentWorkerPool",
    "ScreeningEvaluator",
    "SharedArena",
    "default_engine",
    "parameters_cache_key",
    "reset_shared_cache",
    "resolve_workers",
    "shared_cache",
    "spec_cache_key",
    "validate_backend",
]
