"""Bounded, thread-safe memoization cache for design-point evaluations.

Evaluating one ``(H, W, L, B_ADC)`` spec through the estimation model is
pure: the metrics depend only on the spec, the :class:`ModelParameters`
bundle and (for layout-aware consumers) the technology.  The cache keys on
exactly that triple, so two explorer runs, a sensitivity sweep and the
exhaustive baseline all share each other's work when they use the same
model constants — the repeated-flow re-evaluation the per-problem dicts of
older revisions could never avoid.

Process-safety model: worker processes never touch the cache.  With the
``process`` backend the parent looks up hits, ships only the misses to the
pool and inserts the returned metrics itself, so the cache needs a lock
only against concurrent *threads* (the ``thread`` backend and any user
threads).  The lock is excluded from pickling so a cache-bearing object can
still cross a process boundary if a consumer ships one.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

#: Default capacity of the shared cache — a few hundred array sizes' worth
#: of full design spaces (a 16 kb space has ~300 feasible points).
DEFAULT_CACHE_SIZE = 65536


def parameters_cache_key(parameters) -> Tuple:
    """Stable hashable key of a :class:`ModelParameters` bundle.

    ``dataclasses.astuple`` recurses into the nested frozen parameter
    bundles, producing a flat tuple of floats/bools that identifies the
    model constants independent of object identity.
    """
    return dataclasses.astuple(parameters)


def spec_tuple_cache_key(
    spec_tuple: Tuple, params_key: Tuple, technology: Optional[str] = None
) -> Tuple:
    """Cache key from an already-extracted ``(H, W, L, B_ADC)`` tuple.

    The single authority for the key layout: :func:`spec_cache_key`, the
    engine's batch path (which gets its tuples straight from
    ``SpecBatch.as_tuples()``) and the store layer all produce keys through
    here, so they can never drift apart.
    """
    return (spec_tuple, params_key, technology)


def spec_cache_key(
    spec,
    parameters=None,
    technology: Optional[str] = None,
    params_key: Optional[Tuple] = None,
) -> Tuple:
    """Cache key of one evaluation: ``(spec, model-params, tech)``.

    Pass ``params_key`` (a precomputed :func:`parameters_cache_key`) when
    keying many specs against the same bundle — the engine's batch path
    does — so the bundle is flattened once per batch instead of per spec.
    """
    if params_key is None:
        params_key = parameters_cache_key(parameters)
    return spec_tuple_cache_key(spec.as_tuple(), params_key, technology)


class EvaluationCache:
    """A bounded LRU cache with hit/miss statistics.

    Attributes:
        max_size: capacity; the least recently used entry is evicted first.
    """

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE) -> None:
        if max_size < 1:
            from repro.errors import EngineError

            raise EngineError("cache size must be at least 1")
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- mapping operations ---------------------------------------------------

    def get(self, key: Hashable, default=None):
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU one when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    # -- statistics -----------------------------------------------------------

    @property
    def hits(self) -> int:
        """Number of successful lookups so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups so far."""
        return self._misses

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters plus occupancy, as a flat dict."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


_shared_cache: Optional[EvaluationCache] = None
_shared_lock = threading.Lock()


def shared_cache() -> EvaluationCache:
    """The process-wide evaluation cache shared by every consumer.

    Explorer problems, the exhaustive baseline and the flow controller all
    default to this instance, so identical specs evaluated with identical
    model constants are computed once per process lifetime rather than once
    per run.
    """
    global _shared_cache
    with _shared_lock:
        if _shared_cache is None:
            _shared_cache = EvaluationCache()
        return _shared_cache


def reset_shared_cache(max_size: int = DEFAULT_CACHE_SIZE) -> EvaluationCache:
    """Replace the shared cache (used by tests and long-running services)."""
    global _shared_cache
    with _shared_lock:
        _shared_cache = EvaluationCache(max_size)
        return _shared_cache
