"""The unified evaluation engine: batched, parallel, cached evaluation.

:class:`EvaluationEngine` is the single seam every evaluation consumer in
the repository routes through — the NSGA-II explorer's population batches,
the exhaustive baseline's full grids, the sensitivity analyzer's perturbed
sweeps and the flow controller's netlist/layout fan-out.  It combines

* an executor backend (``serial`` / ``thread`` / ``process``, see
  :mod:`repro.engine.executors`); the process backend evaluates specs on
  a persistent shared-memory worker pool (:mod:`repro.engine.shm` /
  :mod:`repro.engine.workers`) — spec columns and metric results travel
  through named shared-memory segments, never the task pipe — while the
  generic :meth:`EvaluationEngine.map` fan-out keeps a conventional
  ``ProcessPoolExecutor`` for arbitrary picklable callables,
* the shared bounded memoization cache keyed by ``(spec, model-params,
  tech)`` (see :mod:`repro.engine.cache`),
* a cost-model-driven auto-chunker: a per-eval cost EMA (fed by every
  backend) sizes chunks to ~:data:`TARGET_CHUNK_SECONDS` of work each
  and refuses to dispatch chunks below the measured break-even size, and
* hit/miss/timing statistics — including ``dispatch`` / ``worker`` /
  ``serialize`` splits — exposed to results and reports.

Determinism contract: for a fixed input order the engine returns results in
exactly that order regardless of backend, so an NSGA-II run with a fixed
seed produces the identical Pareto set under ``serial`` and ``process``
execution (the regression suite asserts this bit-identically).
"""

from __future__ import annotations

import functools
import math
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.arch.batch import SpecBatch
from repro.engine.cache import (
    EvaluationCache,
    parameters_cache_key,
    shared_cache,
    spec_tuple_cache_key,
)
from repro.engine.executors import (
    BACKENDS,
    create_executor,
    resolve_workers,
    validate_backend,
)
from repro.engine.shm import SharedArena
from repro.engine.workers import PersistentWorkerPool
from repro.errors import WorkerCrashError
from repro.model.estimator import MetricsArrays
from repro.obs import MetricsRegistry, SIZE_BUCKETS, Span, get_tracer

Item = TypeVar("Item")
Result = TypeVar("Result")


def _traced_map_call(fn: Callable, item):
    """Worker-side ``map`` shim: run ``fn(item)`` under a local trace.

    ``engine.map`` fans arbitrary callables out to a conventional
    ``ProcessPoolExecutor`` whose workers each have their own process-wide
    tracer — spans opened there (e.g. the physical pipeline's per-stage
    spans during the flow's layout fan-out) would otherwise be stranded.
    This wrapper enables the worker tracer around the call and ships the
    finished span dictionaries back with the result; the parent adopts
    them under its ``engine.map`` span.  Span ids embed the worker pid,
    so the shipped hierarchy keeps valid parent links after adoption.
    """
    tracer = get_tracer()
    tracer.clear()
    tracer.enable()
    try:
        with tracer.span("engine.map.item"):
            result = fn(item)
        spans = [span.as_dict() for span in tracer.finished_spans()]
    finally:
        tracer.disable()
        tracer.clear()
    return result, spans


@dataclass
class EngineStats:
    """Aggregate statistics of one engine instance.

    Attributes:
        backend: executor backend name.
        workers: pool size (1 for ``serial``).
        batches: number of batch submissions (``map`` or ``evaluate_specs``).
        tasks: total items routed through the engine.
        evaluations: spec evaluations actually computed (cache misses).
        cache_hits: spec evaluations answered from the cache.
        store_hits: cache hits whose entry was hydrated from the
            persistent result store (work amortized from past campaigns).
        store_writes: evaluations flushed to the persistent store.
        busy_seconds: wall-clock time spent inside engine calls.
        dispatch_seconds: parent-side wall-clock of parallel submissions
            *not* explained by ideally-parallel worker compute — i.e.
            ``wall - worker_seconds / workers``, accumulated per
            submission.  This is the scheduling/queueing overhead a
            parallel backend pays; when it rivals ``worker_seconds`` the
            batch is too cheap for the backend (pick serial).
        worker_seconds: aggregate compute time inside backend workers
            (in-thread for ``thread``, in-process for ``process``, the
            evaluation call itself for ``serial``).  May exceed wall-clock
            time — workers run concurrently.
        serialize_seconds: time spent publishing batches into shared
            memory and collecting result columns back out (``process``
            backend only; the pickling-overhead axis the shared arena
            exists to flatten).
        surrogate_exact: feasible candidates a surrogate screener
            forwarded to the exact engine (0 when screening is off).
        surrogate_screened: feasible candidates a surrogate screener
            dropped before exact evaluation — the work the learned
            pre-filter saved.
    """

    backend: str
    workers: int
    batches: int = 0
    tasks: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    store_writes: int = 0
    busy_seconds: float = 0.0
    dispatch_seconds: float = 0.0
    worker_seconds: float = 0.0
    serialize_seconds: float = 0.0
    surrogate_exact: int = 0
    surrogate_screened: int = 0

    @property
    def evaluations_per_second(self) -> float:
        """Computed evaluations per busy second (0 when idle)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.evaluations / self.busy_seconds

    def snapshot(self) -> "EngineStats":
        """An independent copy of the counters at this instant."""
        return replace(self)

    def since(self, baseline: "EngineStats") -> "EngineStats":
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Engines are long-lived (one per flow, shared across `explore_many`
        sizes), so per-run statistics are reported as deltas instead of the
        cumulative totals.
        """
        return EngineStats(
            backend=self.backend,
            workers=self.workers,
            batches=self.batches - baseline.batches,
            tasks=self.tasks - baseline.tasks,
            evaluations=self.evaluations - baseline.evaluations,
            cache_hits=self.cache_hits - baseline.cache_hits,
            store_hits=self.store_hits - baseline.store_hits,
            store_writes=self.store_writes - baseline.store_writes,
            busy_seconds=self.busy_seconds - baseline.busy_seconds,
            dispatch_seconds=self.dispatch_seconds - baseline.dispatch_seconds,
            worker_seconds=self.worker_seconds - baseline.worker_seconds,
            serialize_seconds=(
                self.serialize_seconds - baseline.serialize_seconds
            ),
            surrogate_exact=self.surrogate_exact - baseline.surrogate_exact,
            surrogate_screened=(
                self.surrogate_screened - baseline.surrogate_screened
            ),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for result records and report tables."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches": self.batches,
            "tasks": self.tasks,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "busy_seconds": round(self.busy_seconds, 6),
            "dispatch_seconds": round(self.dispatch_seconds, 6),
            "worker_seconds": round(self.worker_seconds, 6),
            "serialize_seconds": round(self.serialize_seconds, 6),
            "evaluations_per_second": round(self.evaluations_per_second, 1),
            "surrogate_exact": self.surrogate_exact,
            "surrogate_screened": self.surrogate_screened,
        }


# -- auto-chunking cost model -------------------------------------------------

#: Target in-worker compute per chunk.  Large enough that queue round
#: trips disappear in the noise, small enough that stragglers rebalance
#: and progress stays visible (the ISSUE's 50-100 ms band).
TARGET_CHUNK_SECONDS = 0.075

#: Estimated fixed cost of shipping one chunk descriptor through the task
#: queue and getting its completion back.  Break-even chunk size =
#: ``overhead / per-eval cost``: below it a chunk costs more to dispatch
#: than to compute inline.
DISPATCH_OVERHEAD_SECONDS = 5e-4

#: Break-even chunk size assumed before the cost model has a measurement
#: (matches the vectorized analytic path within an order of magnitude).
DEFAULT_BREAK_EVEN_SIZE = 16


class EvaluationEngine:
    """Batched, parallel, cached evaluation of design points and tasks.

    Args:
        backend: ``serial`` (default), ``thread`` or ``process``.
        workers: pool size; defaults to the machine's CPU count.
        cache: evaluation cache; defaults to the process-wide shared cache.
        chunk_size: items per pool task; defaults to an even split into
            ``4 * workers`` chunks so stragglers rebalance.
        store: optional :class:`~repro.store.result_store.ResultStore`.
            On startup the LRU cache is hydrated from the store (every past
            campaign's evaluations become warm cache hits), and computed
            misses are written behind in batches of ``store_flush_size``
            (plus a final flush on :meth:`close`/:meth:`flush_store`).
        store_flush_size: write-behind batch size.
        metrics: :class:`~repro.obs.MetricsRegistry` the engine records
            into; defaults to a private registry.  All statistics live in
            the registry under ``engine.*`` names and :attr:`stats`
            materializes the classic :class:`EngineStats` view from it.

    The executor is created lazily on first use and reused across batches;
    call :meth:`close` (or use the engine as a context manager) to release
    pool workers deterministically.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        chunk_size: Optional[int] = None,
        store=None,
        store_flush_size: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.backend = validate_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)
        self.cache = cache if cache is not None else shared_cache()
        self.chunk_size = chunk_size
        self._executor = None
        self._pool: Optional[PersistentWorkerPool] = None
        self._arena: Optional[SharedArena] = None
        self._cost_per_eval: Optional[float] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Instrument handles are resolved once: hot paths record into
        # them directly instead of paying a name lookup per batch.
        registry = self.metrics
        self._m_batches = registry.counter("engine.eval.batches")
        self._m_tasks = registry.counter("engine.eval.tasks")
        self._m_evaluations = registry.counter("engine.eval.computed")
        self._m_cache_hits = registry.counter("engine.cache.hit")
        self._m_store_hits = registry.counter("engine.store.hit")
        self._m_store_writes = registry.counter("engine.store.write")
        self._m_busy = registry.counter("engine.busy.seconds")
        self._m_dispatch = registry.counter("engine.dispatch.seconds")
        self._m_worker = registry.counter("engine.worker.seconds")
        self._m_serialize = registry.counter("engine.serialize.seconds")
        self._m_surrogate_exact = registry.counter("engine.surrogate.exact")
        self._m_surrogate_screened = registry.counter(
            "engine.surrogate.screened"
        )
        self._m_batch_size = registry.histogram(
            "engine.eval.batch_size", SIZE_BUCKETS
        )
        self.store = store
        self.store_flush_size = max(1, store_flush_size)
        # Concurrent threads (a serving layer's workers) may evaluate
        # through one engine; the write-behind buffer swap must be atomic
        # or a flush could drop entries appended between put_many and
        # clear.
        self._store_lock = threading.Lock()
        self._store_buffer: List = []
        self._store_keys = (
            set(store.hydrate(self.cache)) if store is not None else set()
        )
        # Keys this engine has already buffered/flushed to the store —
        # kept apart from ``_store_keys`` so ``store_hits`` keeps meaning
        # "hit hydrated from the store", not "hit we wrote ourselves".
        self._written_keys: set = set()

    # -- lifecycle ------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None and self.backend != "serial":
            self._executor = create_executor(self.backend, self.workers)
        return self._executor

    def _ensure_pool(self) -> PersistentWorkerPool:
        """The persistent shm worker pool, (re)built lazily.

        A pool that lost a worker (crash) is discarded and replaced, so a
        crash fails one submission, not the engine.
        """
        if self._pool is not None and not self._pool.healthy():
            self._teardown_pool()
        if self._pool is None:
            self._pool = PersistentWorkerPool(self.workers)
        return self._pool

    def _ensure_arena(self) -> SharedArena:
        if self._arena is None:
            self._arena = SharedArena()
        return self._arena

    def _teardown_pool(self) -> None:
        """Drop the pool *and* arena (straggler writes must never land in a
        segment a later submission reuses)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def close(self) -> None:
        """Flush the store buffer and release every worker (idempotent).

        The pending write-behind batch is flushed *before* teardown — and
        still flushed if teardown is what raises — so no computed
        evaluation is lost on shutdown.  Shuts down the generic executor,
        the persistent shm worker pool and the shared-memory arena; the
        engine transparently rebuilds them if it is used again.
        """
        try:
            self.flush_store()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._teardown_pool()

    def flush_store(self) -> None:
        """Write buffered evaluations behind to the persistent store.

        The buffer is swapped out under the lock and written outside it,
        so concurrent evaluating threads never block on SQLite and an
        entry appended mid-flush lands in the next batch instead of being
        cleared unwritten.
        """
        if self.store is None:
            return
        with self._store_lock:
            batch, self._store_buffer = self._store_buffer, []
        if batch:
            started = time.perf_counter()
            self.store.put_many(batch)
            self._m_store_writes.add(len(batch))
            self.metrics.histogram("store.flush.seconds").observe(
                time.perf_counter() - started
            )

    def rehydrate(self) -> int:
        """Re-hydrate the cache from the store; returns rows now warm.

        Campaign sharding uses this: after shard workers commit their
        grid slices through their own store connections, the parent
        engine picks the fresh rows up without being rebuilt.
        """
        if self.store is None:
            return 0
        keys = self.store.hydrate(self.cache)
        self._store_keys.update(keys)
        return len(keys)

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statistics -----------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """Aggregate batch/cache/timing statistics of this engine.

        Materialized from the metrics registry on every read.  The
        ``int()``/``float()`` coercions matter: registry counters start
        as int ``0``, and ``as_dict()`` must keep emitting ``0.0`` (not
        ``0``) for the seconds fields to stay byte-identical with the
        pre-registry dataclass.
        """
        return EngineStats(
            backend=self.backend,
            workers=self.workers,
            batches=int(self._m_batches.value),
            tasks=int(self._m_tasks.value),
            evaluations=int(self._m_evaluations.value),
            cache_hits=int(self._m_cache_hits.value),
            store_hits=int(self._m_store_hits.value),
            store_writes=int(self._m_store_writes.value),
            busy_seconds=float(self._m_busy.value),
            dispatch_seconds=float(self._m_dispatch.value),
            worker_seconds=float(self._m_worker.value),
            serialize_seconds=float(self._m_serialize.value),
            surrogate_exact=int(self._m_surrogate_exact.value),
            surrogate_screened=int(self._m_surrogate_screened.value),
        )

    # -- cost model & auto-chunking -------------------------------------------

    def _observe_cost(self, seconds: float, count: int) -> None:
        """Fold a measured evaluation into the per-eval cost EMA.

        Every backend feeds the model — a serial warm-up evaluation is
        enough for the first process submission to chunk sensibly.
        """
        if count <= 0 or seconds <= 0.0:
            return
        sample = seconds / count
        if self._cost_per_eval is None:
            self._cost_per_eval = sample
        else:
            self._cost_per_eval = 0.5 * self._cost_per_eval + 0.5 * sample

    def _break_even_size(self) -> int:
        """Smallest chunk worth dispatching instead of evaluating inline.

        ``dispatch overhead / measured per-eval cost``: cheaper analytic
        evaluations push it up (ship big chunks or none at all), expensive
        high-fidelity evaluations push it down to 1 (every item is worth
        shipping).  Falls back to a static floor until measured.
        """
        cost = self._cost_per_eval
        if cost is None or cost <= 0.0:
            return DEFAULT_BREAK_EVEN_SIZE
        return max(1, math.ceil(DISPATCH_OVERHEAD_SECONDS / cost))

    def _chunk(self, count: int, floor: Optional[int] = None) -> int:
        """Chunk size for a pool submission of ``count`` items.

        Clamped below by ``floor`` so a small batch split across many
        workers never degenerates into 1-item chunks whose dispatch costs
        more than their compute.  ``map`` has no per-item cost model, so
        its floor keeps every worker busy (``count / workers``) but caps
        the fragment size.
        """
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        even = count // (self.workers * 4) or 1
        if floor is None:
            floor = min(4, max(1, count // self.workers))
        return max(1, floor, even)

    def _plan_chunk(self, count: int) -> int:
        """Cost-model-driven chunk size for a spec-evaluation submission.

        Targets :data:`TARGET_CHUNK_SECONDS` of in-worker compute per
        chunk, capped at an even per-worker split (all workers busy) and
        floored at break-even (no chunk cheaper than its dispatch).
        Before the first measurement it falls back to the legacy even
        ``4 * workers`` split, break-even-clamped.
        """
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        floor = self._break_even_size()
        cost = self._cost_per_eval
        if cost is not None and cost > 0.0:
            target = max(1, int(TARGET_CHUNK_SECONDS / cost))
            per_worker = math.ceil(count / self.workers)
            return max(floor, min(target, per_worker))
        return max(floor, count // (self.workers * 4) or 1)

    def _ranges(self, count: int, chunk: int) -> List[Tuple[int, int]]:
        """Contiguous ``[lo, hi)`` chunk ranges; a sub-break-even tail is
        merged into its predecessor rather than dispatched on its own."""
        ranges = [
            (lo, min(lo + chunk, count)) for lo in range(0, count, chunk)
        ]
        if len(ranges) > 1:
            lo, hi = ranges[-1]
            if hi - lo < self._break_even_size():
                ranges[-2] = (ranges[-2][0], hi)
                ranges.pop()
        return ranges

    # -- generic parallel map -------------------------------------------------

    def map(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        chunk_size: Optional[int] = None,
    ) -> List[Result]:
        """Apply ``fn`` to every item, preserving input order.

        With the ``process`` backend ``fn`` and the items must be picklable;
        the flow controller uses this for its netlist/layout fan-out.
        """
        items = list(items)
        start = time.perf_counter()
        tracer = get_tracer()
        try:
            with tracer.span(
                "engine.map", count=len(items), backend=self.backend
            ) as map_span:
                if not items or self.backend == "serial":
                    return [fn(item) for item in items]
                executor = self._ensure_executor()
                chunksize = chunk_size or self._chunk(len(items))
                if tracer.enabled and self.backend == "process":
                    # Ship worker-side spans home (the thread backend
                    # shares this tracer already and needs no shim).
                    call = functools.partial(_traced_map_call, fn)
                    results: List[Result] = []
                    for result, records in executor.map(
                        call, items, chunksize=chunksize
                    ):
                        tracer.adopt(records, parent_id=map_span.span_id)
                        results.append(result)
                    return results
                return list(executor.map(fn, items, chunksize=chunksize))
        finally:
            self._m_batches.inc()
            self._m_tasks.add(len(items))
            self._m_busy.add(time.perf_counter() - start)
            self._m_batch_size.observe(len(items))

    # -- cached spec evaluation ----------------------------------------------

    def evaluate_specs(self, estimator, specs: Union[SpecBatch, Sequence]) -> List:
        """Evaluate design specs through ``estimator``, cached and batched.

        Accepts either a sequence of scalar specs or a
        :class:`~repro.arch.batch.SpecBatch` (grid consumers build batches
        directly, skipping the per-spec object hop).  Returns one
        :class:`~repro.model.estimator.ACIMMetrics` per spec, in input
        order.  Hits are served from the cache; misses are deduplicated,
        gathered into a miss SpecBatch and dispatched to the backend as
        array chunks, then inserted into the cache by the calling process
        (workers never mutate the cache).
        """
        if isinstance(specs, SpecBatch):
            batch = specs
            tuples = batch.as_tuples()
        else:
            batch = None
            spec_list = list(specs)
            tuples = [spec.as_tuple() for spec in spec_list]
        start = time.perf_counter()
        try:
            if not tuples:
                return []
            with get_tracer().span(
                "engine.evaluate_specs",
                count=len(tuples),
                backend=self.backend,
            ) as eval_span:
                params = estimator.parameters
                params_key = parameters_cache_key(params)
                keys = [
                    spec_tuple_cache_key(spec_tuple, params_key)
                    for spec_tuple in tuples
                ]
                results: Dict[tuple, object] = {}
                missing_indices: List[int] = []
                pending = set()
                # Hit counts aggregate in locals and land in the registry
                # once per batch — one lock acquisition instead of one per
                # spec, which is what keeps the instrumented serial path
                # inside the overhead budget.
                cache_hits = 0
                store_hits = 0
                unstored_hits: List = []
                for index, key in enumerate(keys):
                    if key in results or key in pending:
                        continue
                    cached = self.cache.get(key)
                    if cached is not None:
                        results[key] = cached
                        cache_hits += 1
                        if key in self._store_keys:
                            store_hits += 1
                        elif (
                            self.store is not None
                            and key not in self._written_keys
                        ):
                            # A hit the cache already held (e.g. warmed by
                            # another engine sharing the process-wide
                            # cache) that this store has never seen: it
                            # must still reach the store, or queries would
                            # miss work the engine demonstrably served.
                            unstored_hits.append((key, cached))
                    else:
                        pending.add(key)
                        missing_indices.append(index)
                if unstored_hits:
                    with self._store_lock:
                        self._written_keys.update(
                            key for key, _ in unstored_hits
                        )
                        self._store_buffer.extend(unstored_hits)
                if cache_hits:
                    self._m_cache_hits.add(cache_hits)
                if store_hits:
                    self._m_store_hits.add(store_hits)
                eval_span.set("misses", len(missing_indices))
                if missing_indices:
                    if batch is not None:
                        missing = batch.take(missing_indices)
                    else:
                        missing = SpecBatch.from_specs(
                            [spec_list[i] for i in missing_indices]
                        )
                    computed = self._compute(estimator, params, missing)
                    for index, metrics in zip(missing_indices, computed):
                        key = keys[index]
                        results[key] = metrics
                        self.cache.put(key, metrics)
                    if self.store is not None:
                        with self._store_lock:
                            self._written_keys.update(
                                keys[i] for i in missing_indices
                            )
                            self._store_buffer.extend(
                                (keys[i], results[keys[i]])
                                for i in missing_indices
                            )
                            buffered = len(self._store_buffer)
                        if buffered >= self.store_flush_size:
                            self.flush_store()
                    self._m_evaluations.add(len(missing_indices))
                return [results[key] for key in keys]
        finally:
            self._m_batches.inc()
            self._m_tasks.add(len(tuples))
            self._m_busy.add(time.perf_counter() - start)
            self._m_batch_size.observe(len(tuples))

    def _compute(self, estimator, params, batch: SpecBatch) -> List:
        """Evaluate a cache-miss SpecBatch on the configured backend, in order.

        Chunk boundaries never change results — the model kernels are
        elementwise — so serial, thread and process submissions of the
        same batch are bit-identical (the backend-parity suite asserts
        this through NSGA-II fronts).
        """
        if self.backend == "serial" or len(batch) == 1:
            return self._compute_serial(estimator, batch)
        if self.backend == "thread":
            return self._compute_thread(estimator, batch)
        return self._compute_process(estimator, params, batch)

    def _compute_serial(self, estimator, batch: SpecBatch) -> List:
        with get_tracer().span(
            "engine.chunk", where="inline", count=len(batch)
        ):
            started = time.perf_counter()
            results = estimator.evaluate_batch(batch)
            elapsed = time.perf_counter() - started
        self._m_worker.add(elapsed)
        self._observe_cost(elapsed, len(batch))
        return results

    def _compute_thread(self, estimator, batch: SpecBatch) -> List:
        count = len(batch)
        chunk = self._plan_chunk(count)
        if chunk >= count:
            return self._compute_serial(estimator, batch)
        executor = self._ensure_executor()
        started = time.perf_counter()
        with get_tracer().span(
            "engine.dispatch", backend="thread", count=count
        ) as dispatch_span:
            futures = [
                executor.submit(
                    _timed_evaluate,
                    estimator,
                    batch[lo:hi],
                    dispatch_span.span_id,
                )
                for lo, hi in self._ranges(count, chunk)
            ]
            results: List = []
            worker_total = 0.0
            for future in futures:
                chunk_results, chunk_seconds = future.result()
                results.extend(chunk_results)
                worker_total += chunk_seconds
            dispatch_span.set("chunks", len(futures))
        wall = time.perf_counter() - started
        self._m_worker.add(worker_total)
        self._m_dispatch.add(max(0.0, wall - worker_total / self.workers))
        self._observe_cost(worker_total, count)
        return results

    def _compute_process(self, estimator, params, batch: SpecBatch) -> List:
        count = len(batch)
        if count <= self._break_even_size():
            # The whole batch is below break-even: a pool round trip would
            # cost more than computing it here.
            return self._compute_serial(estimator, batch)
        pool = self._ensure_pool()
        arena = self._ensure_arena()
        kernel = getattr(estimator, "kernel", "vectorized")
        tracer = get_tracer()
        publish_start = time.perf_counter()
        ref = arena.publish(batch)
        self._m_serialize.add(time.perf_counter() - publish_start)
        ranges = self._ranges(count, self._plan_chunk(count))
        span_sink: List[Dict] = []
        dispatch_start = time.perf_counter()
        with tracer.span(
            "engine.dispatch",
            backend="process",
            count=count,
            chunks=len(ranges),
        ) as dispatch_span:
            try:
                timings = pool.run(
                    ranges,
                    ref,
                    params,
                    kernel,
                    trace=tracer.enabled,
                    span_sink=span_sink,
                )
            except WorkerCrashError:
                # Live stragglers may still write into the arena; retire
                # both so the next submission starts on clean segments.
                self._teardown_pool()
                raise
        if span_sink:
            # Worker chunk spans nest under this dispatch span, giving
            # one trace across the process boundary.
            tracer.adopt(span_sink, parent_id=dispatch_span.span_id)
        wall = time.perf_counter() - dispatch_start
        worker_total = sum(timings.values())
        self._m_worker.add(worker_total)
        self._m_dispatch.add(max(0.0, wall - worker_total / self.workers))
        self._observe_cost(worker_total, count)
        collect_start = time.perf_counter()
        columns = arena.collect(count)
        self._m_serialize.add(time.perf_counter() - collect_start)
        return MetricsArrays(batch=batch, **columns).to_metrics()


def _timed_evaluate(
    estimator, chunk: SpecBatch, parent_id: Optional[str] = None
) -> tuple:
    """(results, seconds) of one thread-backend chunk evaluation.

    Runs on a pool thread, whose span stack is empty — the chunk span is
    recorded explicitly under the dispatcher's ``parent_id`` instead of
    through the context-manager stack.
    """
    tracer = get_tracer()
    start_ns = time.perf_counter_ns() if tracer.enabled else 0
    started = time.perf_counter()
    results = estimator.evaluate_batch(chunk)
    elapsed = time.perf_counter() - started
    if tracer.enabled:
        tracer.record(Span(
            "engine.chunk",
            parent_id=parent_id,
            attrs={"where": "thread", "count": len(chunk)},
            start_ns=start_ns,
            end_ns=time.perf_counter_ns(),
        ))
    return results, elapsed


def default_engine() -> EvaluationEngine:
    """A fresh serial engine bound to the shared cache (the cheap default)."""
    return EvaluationEngine("serial")
