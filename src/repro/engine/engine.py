"""The unified evaluation engine: batched, parallel, cached evaluation.

:class:`EvaluationEngine` is the single seam every evaluation consumer in
the repository routes through — the NSGA-II explorer's population batches,
the exhaustive baseline's full grids, the sensitivity analyzer's perturbed
sweeps and the flow controller's netlist/layout fan-out.  It combines

* an executor backend (``serial`` / ``thread`` / ``process``, see
  :mod:`repro.engine.executors`),
* the shared bounded memoization cache keyed by ``(spec, model-params,
  tech)`` (see :mod:`repro.engine.cache`), and
* hit/miss/timing statistics exposed to results and reports.

Determinism contract: for a fixed input order the engine returns results in
exactly that order regardless of backend, so an NSGA-II run with a fixed
seed produces the identical Pareto set under ``serial`` and ``process``
execution (the regression suite asserts this bit-identically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.arch.batch import SpecBatch
from repro.engine.cache import (
    EvaluationCache,
    parameters_cache_key,
    shared_cache,
    spec_tuple_cache_key,
)
from repro.engine.executors import (
    BACKENDS,
    create_executor,
    resolve_workers,
    validate_backend,
)

Item = TypeVar("Item")
Result = TypeVar("Result")


@dataclass
class EngineStats:
    """Aggregate statistics of one engine instance.

    Attributes:
        backend: executor backend name.
        workers: pool size (1 for ``serial``).
        batches: number of batch submissions (``map`` or ``evaluate_specs``).
        tasks: total items routed through the engine.
        evaluations: spec evaluations actually computed (cache misses).
        cache_hits: spec evaluations answered from the cache.
        store_hits: cache hits whose entry was hydrated from the
            persistent result store (work amortized from past campaigns).
        store_writes: evaluations flushed to the persistent store.
        busy_seconds: wall-clock time spent inside engine calls.
    """

    backend: str
    workers: int
    batches: int = 0
    tasks: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    store_writes: int = 0
    busy_seconds: float = 0.0

    @property
    def evaluations_per_second(self) -> float:
        """Computed evaluations per busy second (0 when idle)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.evaluations / self.busy_seconds

    def snapshot(self) -> "EngineStats":
        """An independent copy of the counters at this instant."""
        return replace(self)

    def since(self, baseline: "EngineStats") -> "EngineStats":
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Engines are long-lived (one per flow, shared across `explore_many`
        sizes), so per-run statistics are reported as deltas instead of the
        cumulative totals.
        """
        return EngineStats(
            backend=self.backend,
            workers=self.workers,
            batches=self.batches - baseline.batches,
            tasks=self.tasks - baseline.tasks,
            evaluations=self.evaluations - baseline.evaluations,
            cache_hits=self.cache_hits - baseline.cache_hits,
            store_hits=self.store_hits - baseline.store_hits,
            store_writes=self.store_writes - baseline.store_writes,
            busy_seconds=self.busy_seconds - baseline.busy_seconds,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for result records and report tables."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "batches": self.batches,
            "tasks": self.tasks,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "busy_seconds": round(self.busy_seconds, 6),
            "evaluations_per_second": round(self.evaluations_per_second, 1),
        }


# -- process-pool work functions (module level for picklability) -------------

#: Per-worker estimator memo, keyed by the model-parameters cache key (plus
#: the kernel flavour) so a long-lived pool serving several parameter
#: bundles (sensitivity sweeps) builds each estimator once per worker
#: instead of once per chunk.
_WORKER_ESTIMATORS: Dict[tuple, object] = {}


def _evaluate_batch_chunk(parameters, kernel: str, columns: tuple) -> list:
    """Evaluate a shipped SpecBatch chunk, reusing a per-process estimator.

    ``columns`` is the picklable array payload of
    :meth:`~repro.arch.batch.SpecBatch.columns` — four NumPy integer
    columns, far cheaper to pickle than N spec objects.
    """
    from repro.model.estimator import ACIMEstimator

    key = (parameters_cache_key(parameters), kernel)
    estimator = _WORKER_ESTIMATORS.get(key)
    if estimator is None:
        estimator = ACIMEstimator(parameters, kernel=kernel)
        _WORKER_ESTIMATORS[key] = estimator
    return estimator.evaluate_batch(SpecBatch(*columns))


class EvaluationEngine:
    """Batched, parallel, cached evaluation of design points and tasks.

    Args:
        backend: ``serial`` (default), ``thread`` or ``process``.
        workers: pool size; defaults to the machine's CPU count.
        cache: evaluation cache; defaults to the process-wide shared cache.
        chunk_size: items per pool task; defaults to an even split into
            ``4 * workers`` chunks so stragglers rebalance.
        store: optional :class:`~repro.store.result_store.ResultStore`.
            On startup the LRU cache is hydrated from the store (every past
            campaign's evaluations become warm cache hits), and computed
            misses are written behind in batches of ``store_flush_size``
            (plus a final flush on :meth:`close`/:meth:`flush_store`).
        store_flush_size: write-behind batch size.

    The executor is created lazily on first use and reused across batches;
    call :meth:`close` (or use the engine as a context manager) to release
    pool workers deterministically.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        chunk_size: Optional[int] = None,
        store=None,
        store_flush_size: int = 64,
    ) -> None:
        self.backend = validate_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)
        self.cache = cache if cache is not None else shared_cache()
        self.chunk_size = chunk_size
        self._executor = None
        self._stats = EngineStats(backend=self.backend, workers=self.workers)
        self.store = store
        self.store_flush_size = max(1, store_flush_size)
        self._store_buffer: List = []
        self._store_keys = (
            set(store.hydrate(self.cache)) if store is not None else set()
        )

    # -- lifecycle ------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None and self.backend != "serial":
            self._executor = create_executor(self.backend, self.workers)
        return self._executor

    def close(self) -> None:
        """Flush the store buffer and shut the executor down (idempotent)."""
        self.flush_store()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def flush_store(self) -> None:
        """Write buffered evaluations behind to the persistent store."""
        if self.store is not None and self._store_buffer:
            self.store.put_many(self._store_buffer)
            self._stats.store_writes += len(self._store_buffer)
            self._store_buffer.clear()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statistics -----------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """Aggregate batch/cache/timing statistics of this engine."""
        return self._stats

    def _chunk(self, count: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, count // (self.workers * 4) or 1)

    # -- generic parallel map -------------------------------------------------

    def map(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        chunk_size: Optional[int] = None,
    ) -> List[Result]:
        """Apply ``fn`` to every item, preserving input order.

        With the ``process`` backend ``fn`` and the items must be picklable;
        the flow controller uses this for its netlist/layout fan-out.
        """
        items = list(items)
        start = time.perf_counter()
        try:
            if not items or self.backend == "serial":
                return [fn(item) for item in items]
            executor = self._ensure_executor()
            chunksize = chunk_size or self._chunk(len(items))
            return list(executor.map(fn, items, chunksize=chunksize))
        finally:
            self._stats.batches += 1
            self._stats.tasks += len(items)
            self._stats.busy_seconds += time.perf_counter() - start

    # -- cached spec evaluation ----------------------------------------------

    def evaluate_specs(self, estimator, specs: Union[SpecBatch, Sequence]) -> List:
        """Evaluate design specs through ``estimator``, cached and batched.

        Accepts either a sequence of scalar specs or a
        :class:`~repro.arch.batch.SpecBatch` (grid consumers build batches
        directly, skipping the per-spec object hop).  Returns one
        :class:`~repro.model.estimator.ACIMMetrics` per spec, in input
        order.  Hits are served from the cache; misses are deduplicated,
        gathered into a miss SpecBatch and dispatched to the backend as
        array chunks, then inserted into the cache by the calling process
        (workers never mutate the cache).
        """
        if isinstance(specs, SpecBatch):
            batch = specs
            tuples = batch.as_tuples()
        else:
            batch = None
            spec_list = list(specs)
            tuples = [spec.as_tuple() for spec in spec_list]
        start = time.perf_counter()
        try:
            if not tuples:
                return []
            params = estimator.parameters
            params_key = parameters_cache_key(params)
            keys = [
                spec_tuple_cache_key(spec_tuple, params_key)
                for spec_tuple in tuples
            ]
            results: Dict[tuple, object] = {}
            missing_indices: List[int] = []
            pending = set()
            for index, key in enumerate(keys):
                if key in results or key in pending:
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    results[key] = cached
                    self._stats.cache_hits += 1
                    if key in self._store_keys:
                        self._stats.store_hits += 1
                else:
                    pending.add(key)
                    missing_indices.append(index)
            if missing_indices:
                if batch is not None:
                    missing = batch.take(missing_indices)
                else:
                    missing = SpecBatch.from_specs(
                        [spec_list[i] for i in missing_indices]
                    )
                computed = self._compute(estimator, params, missing)
                for index, metrics in zip(missing_indices, computed):
                    key = keys[index]
                    results[key] = metrics
                    self.cache.put(key, metrics)
                    if self.store is not None:
                        self._store_buffer.append((key, metrics))
                self._stats.evaluations += len(missing_indices)
                if len(self._store_buffer) >= self.store_flush_size:
                    self.flush_store()
            return [results[key] for key in keys]
        finally:
            self._stats.batches += 1
            self._stats.tasks += len(tuples)
            self._stats.busy_seconds += time.perf_counter() - start

    def _compute(self, estimator, params, batch: SpecBatch) -> List:
        """Evaluate a cache-miss SpecBatch on the configured backend, in order."""
        if self.backend == "serial" or len(batch) == 1:
            return estimator.evaluate_batch(batch)
        executor = self._ensure_executor()
        chunksize = self._chunk(len(batch))
        chunks = [
            batch[i:i + chunksize] for i in range(0, len(batch), chunksize)
        ]
        if self.backend == "thread":
            futures = [
                executor.submit(estimator.evaluate_batch, chunk)
                for chunk in chunks
            ]
        else:
            kernel = getattr(estimator, "kernel", "vectorized")
            futures = [
                executor.submit(
                    _evaluate_batch_chunk, params, kernel, chunk.columns()
                )
                for chunk in chunks
            ]
        results: List = []
        for future in futures:
            results.extend(future.result())
        return results


def default_engine() -> EvaluationEngine:
    """A fresh serial engine bound to the shared cache (the cheap default)."""
    return EvaluationEngine("serial")
