"""AMS placement constraints: symmetry, alignment, abutment, arrays.

Beyond plain HPWL, analog/mixed-signal placement must honour structural
constraints (paper section 2.3).  Each constraint exposes a ``violation``
measure in dbu that the annealing placer adds (weighted) to its cost, and a
``satisfied`` predicate used by tests and by the hierarchical placer's
post-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import PlacementError


class PlacementConstraint:
    """Base class of all placement constraints."""

    def violation(self, problem) -> float:
        """Violation magnitude in dbu (0 when satisfied)."""
        raise NotImplementedError

    def satisfied(self, problem, tolerance: float = 0.0) -> bool:
        """True when the violation does not exceed ``tolerance``."""
        return self.violation(problem) <= tolerance


@dataclass
class SymmetryConstraint(PlacementConstraint):
    """Pairs of objects must be mirror-symmetric about a common vertical axis.

    Attributes:
        pairs: (left object, right object) name pairs.
        self_symmetric: objects whose center must lie on the axis.
    """

    pairs: List[Sequence[str]] = field(default_factory=list)
    self_symmetric: List[str] = field(default_factory=list)

    def violation(self, problem) -> float:
        centers = []
        for left_name, right_name in self.pairs:
            left = problem.object(left_name)
            right = problem.object(right_name)
            if not (left.placed and right.placed):
                continue
            centers.append((left.rect().center, right.rect().center))
        axis_candidates = [
            (l.x + r.x) / 2.0 for l, r in centers
        ]
        for name in self.self_symmetric:
            obj = problem.object(name)
            if obj.placed:
                axis_candidates.append(float(obj.rect().center.x))
        if not axis_candidates:
            return 0.0
        axis = sum(axis_candidates) / len(axis_candidates)
        violation = 0.0
        for left_center, right_center in centers:
            violation += abs((left_center.x + right_center.x) / 2.0 - axis)
            violation += abs(left_center.y - right_center.y)
        for name in self.self_symmetric:
            obj = problem.object(name)
            if obj.placed:
                violation += abs(obj.rect().center.x - axis)
        return violation


@dataclass
class AlignmentConstraint(PlacementConstraint):
    """Objects must share an edge coordinate (left/right/bottom/top).

    Attributes:
        objects: names of the aligned objects.
        edge: one of ``"left"``, ``"right"``, ``"bottom"``, ``"top"``.
    """

    objects: List[str] = field(default_factory=list)
    edge: str = "left"

    _EDGES = ("left", "right", "bottom", "top")

    def __post_init__(self) -> None:
        if self.edge not in self._EDGES:
            raise PlacementError(f"unknown alignment edge {self.edge!r}")

    def _edge_value(self, rect) -> int:
        return {
            "left": rect.x_lo,
            "right": rect.x_hi,
            "bottom": rect.y_lo,
            "top": rect.y_hi,
        }[self.edge]

    def violation(self, problem) -> float:
        values = [
            self._edge_value(problem.object(name).rect())
            for name in self.objects
            if problem.object(name).placed
        ]
        if len(values) < 2:
            return 0.0
        reference = min(values)
        return float(sum(value - reference for value in values))


@dataclass
class AbutmentConstraint(PlacementConstraint):
    """Consecutive objects must abut (no gap, no overlap) in one direction.

    Attributes:
        objects: names in abutment order (bottom-to-top or left-to-right).
        direction: ``"vertical"`` or ``"horizontal"``.
    """

    objects: List[str] = field(default_factory=list)
    direction: str = "vertical"

    def __post_init__(self) -> None:
        if self.direction not in ("vertical", "horizontal"):
            raise PlacementError(f"unknown abutment direction {self.direction!r}")

    def violation(self, problem) -> float:
        violation = 0.0
        placed = [problem.object(name) for name in self.objects]
        if any(not obj.placed for obj in placed):
            return 0.0
        for lower, upper in zip(placed, placed[1:]):
            lower_rect, upper_rect = lower.rect(), upper.rect()
            if self.direction == "vertical":
                violation += abs(upper_rect.y_lo - lower_rect.y_hi)
                violation += abs(upper_rect.x_lo - lower_rect.x_lo)
            else:
                violation += abs(upper_rect.x_lo - lower_rect.x_hi)
                violation += abs(upper_rect.y_lo - lower_rect.y_lo)
        return violation


@dataclass
class ArrayConstraint(PlacementConstraint):
    """Objects must form a regular grid with fixed pitches.

    Attributes:
        objects: names in row-major order.
        columns: number of grid columns.
        pitch_x: horizontal pitch in dbu.
        pitch_y: vertical pitch in dbu.
    """

    objects: List[str] = field(default_factory=list)
    columns: int = 1
    pitch_x: int = 0
    pitch_y: int = 0

    def __post_init__(self) -> None:
        if self.columns < 1:
            raise PlacementError("array constraint needs at least one column")

    def violation(self, problem) -> float:
        placed = [problem.object(name) for name in self.objects]
        if any(not obj.placed for obj in placed):
            return 0.0
        origin = placed[0].rect()
        violation = 0.0
        for index, obj in enumerate(placed):
            row, column = divmod(index, self.columns)
            expected_x = origin.x_lo + column * self.pitch_x
            expected_y = origin.y_lo + row * self.pitch_y
            rect = obj.rect()
            violation += abs(rect.x_lo - expected_x) + abs(rect.y_lo - expected_y)
        return violation
