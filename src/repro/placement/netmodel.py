"""Placement problem model: movable objects, nets and the problem container.

The placer works on an abstracted view of the layout: each movable object
is a rectangle (the PR boundary of a child layout cell) with named pin
offsets, and each net is a set of (object, pin) terminals plus optional
fixed terminals.  This keeps the placement engines independent of the full
layout database and easy to test in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.layout.geometry import Point, Rect, hpwl


@dataclass
class PlacementObject:
    """A movable (or fixed) rectangular object.

    Attributes:
        name: unique object name.
        width: object width in dbu.
        height: object height in dbu.
        pin_offsets: pin name -> offset from the object's lower-left corner.
        fixed: True when the placer must not move the object.
        position: lower-left corner in dbu (None until placed).
    """

    name: str
    width: int
    height: int
    pin_offsets: Dict[str, Point] = field(default_factory=dict)
    fixed: bool = False
    position: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PlacementError(f"object {self.name!r} must have positive size")
        if self.fixed and self.position is None:
            raise PlacementError(f"fixed object {self.name!r} needs a position")

    @property
    def placed(self) -> bool:
        """True once the object has a position."""
        return self.position is not None

    def rect(self) -> Rect:
        """Bounding rectangle at the current position."""
        if self.position is None:
            raise PlacementError(f"object {self.name!r} is not placed")
        return Rect.from_size(self.position.x, self.position.y, self.width, self.height)

    def pin_position(self, pin: str) -> Point:
        """Absolute position of a pin (object center when the pin is unknown)."""
        if self.position is None:
            raise PlacementError(f"object {self.name!r} is not placed")
        offset = self.pin_offsets.get(pin)
        if offset is None:
            return self.rect().center
        return Point(self.position.x + offset.x, self.position.y + offset.y)


@dataclass
class PlacementNet:
    """A net connecting pins of placement objects (and fixed points).

    Attributes:
        name: net name.
        terminals: (object name, pin name) pairs.
        fixed_points: absolute points (e.g. top-level pins) included in HPWL.
        weight: HPWL weight (critical nets can be weighted more heavily).
    """

    name: str
    terminals: List[Tuple[str, str]] = field(default_factory=list)
    fixed_points: List[Point] = field(default_factory=list)
    weight: float = 1.0


class PlacementProblem:
    """A set of objects, nets and constraints to be placed inside a region."""

    def __init__(self, region: Rect) -> None:
        if region.width <= 0 or region.height <= 0:
            raise PlacementError("placement region must have positive area")
        self.region = region
        self._objects: Dict[str, PlacementObject] = {}
        self._nets: List[PlacementNet] = []
        self.constraints: List = []

    # -- construction ------------------------------------------------------------

    def add_object(self, obj: PlacementObject) -> PlacementObject:
        """Register an object (names must be unique)."""
        if obj.name in self._objects:
            raise PlacementError(f"duplicate placement object {obj.name!r}")
        self._objects[obj.name] = obj
        return obj

    def add_net(self, net: PlacementNet) -> PlacementNet:
        """Register a net; all referenced objects must already exist."""
        for obj_name, _pin in net.terminals:
            if obj_name not in self._objects:
                raise PlacementError(
                    f"net {net.name!r} references unknown object {obj_name!r}"
                )
        self._nets.append(net)
        return net

    def add_constraint(self, constraint) -> None:
        """Attach a placement constraint (see :mod:`repro.placement.constraints`)."""
        self.constraints.append(constraint)

    # -- access ------------------------------------------------------------------

    @property
    def objects(self) -> List[PlacementObject]:
        return list(self._objects.values())

    @property
    def movable_objects(self) -> List[PlacementObject]:
        return [obj for obj in self._objects.values() if not obj.fixed]

    @property
    def nets(self) -> List[PlacementNet]:
        return list(self._nets)

    def object(self, name: str) -> PlacementObject:
        try:
            return self._objects[name]
        except KeyError:
            raise PlacementError(f"unknown placement object {name!r}")

    # -- cost --------------------------------------------------------------------

    def total_hpwl(self) -> float:
        """Weighted half-perimeter wire length of all nets."""
        total = 0.0
        for net in self._nets:
            points = [
                self.object(obj_name).pin_position(pin)
                for obj_name, pin in net.terminals
            ]
            points.extend(net.fixed_points)
            total += net.weight * hpwl(points)
        return total

    def constraint_penalty(self) -> float:
        """Total violation of all attached constraints."""
        return sum(constraint.violation(self) for constraint in self.constraints)

    def overlap_area(self) -> int:
        """Total pairwise overlap area between placed objects (0 when legal)."""
        placed = [obj for obj in self._objects.values() if obj.placed]
        total = 0
        for i, a in enumerate(placed):
            rect_a = a.rect()
            for b in placed[i + 1:]:
                intersection = rect_a.intersection(b.rect())
                if intersection is not None:
                    total += intersection.area
        return total

    def all_inside_region(self) -> bool:
        """True when every placed object lies inside the placement region."""
        return all(
            self.region.contains_rect(obj.rect())
            for obj in self._objects.values()
            if obj.placed
        )
