"""Template-based hierarchical placement (paper section 3.3, Figure 7).

Two placement engines are provided:

* :class:`~repro.placement.grid_placer.GridPlacer` — the classic grid-based
  simulated-annealing placer over a 2-D partitioned grid (paper Figure 3),
  minimising half-perimeter wire length subject to AMS constraints
  (symmetry, alignment, abutment).
* :class:`~repro.placement.hierarchical.HierarchicalPlacer` — the
  template-based placer used by the EasyACIM flow: at every hierarchy level
  the placement *inside* "Std" cells or subcircuits is kept, and only the
  over-cell placement of that level is performed, either from an explicit
  :class:`~repro.placement.template.PlacementTemplate` (rows, columns,
  arrays) or by falling back to the grid placer.
"""

from repro.placement.netmodel import PlacementNet, PlacementObject, PlacementProblem
from repro.placement.constraints import (
    AbutmentConstraint,
    AlignmentConstraint,
    ArrayConstraint,
    PlacementConstraint,
    SymmetryConstraint,
)
from repro.placement.grid_placer import GridPlacer, GridPlacerConfig, PlacementResult
from repro.placement.template import (
    ColumnStackTemplate,
    PlacementTemplate,
    RowTemplate,
    TemplateSlot,
)
from repro.placement.hierarchical import HierarchicalPlacer, MacroPlacement

__all__ = [
    "PlacementNet",
    "PlacementObject",
    "PlacementProblem",
    "AbutmentConstraint",
    "AlignmentConstraint",
    "ArrayConstraint",
    "PlacementConstraint",
    "SymmetryConstraint",
    "GridPlacer",
    "GridPlacerConfig",
    "PlacementResult",
    "ColumnStackTemplate",
    "PlacementTemplate",
    "RowTemplate",
    "TemplateSlot",
    "HierarchicalPlacer",
    "MacroPlacement",
]
