"""Placement templates for the regular structures of the ACIM macro.

The EasyACIM macro is dominated by regular structures — columns of stacked
cells and arrays of identical columns — for which a template beats any
general-purpose placer (this is the "template-based" half of the paper's
placer).  A template assigns deterministic positions to named slots; the
hierarchical placer applies templates where they exist and falls back to
the annealing grid placer elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlacementError
from repro.layout.geometry import Point


@dataclass(frozen=True)
class TemplateSlot:
    """One placed slot of a template.

    Attributes:
        name: instance name the slot is for.
        position: lower-left corner in dbu.
    """

    name: str
    position: Point


class PlacementTemplate:
    """Base class: a deterministic assignment of instance names to positions."""

    def place(self, sizes: Dict[str, Tuple[int, int]]) -> List[TemplateSlot]:
        """Compute slot positions.

        Args:
            sizes: instance name -> (width, height) in dbu.

        Returns:
            One slot per instance the template covers.
        """
        raise NotImplementedError

    def bounding_size(self, sizes: Dict[str, Tuple[int, int]]) -> Tuple[int, int]:
        """(width, height) of the template's occupied area."""
        slots = self.place(sizes)
        if not slots:
            return (0, 0)
        max_x = max(slot.position.x + sizes[slot.name][0] for slot in slots)
        max_y = max(slot.position.y + sizes[slot.name][1] for slot in slots)
        return (max_x, max_y)


@dataclass
class ColumnStackTemplate(PlacementTemplate):
    """Stack instances bottom-to-top at a fixed x offset (an ACIM column).

    Attributes:
        order: instance names from bottom to top.
        x_offset: common x coordinate of every instance.
        start_y: y coordinate of the bottom instance.
        spacing: extra vertical spacing between consecutive instances.
    """

    order: List[str] = field(default_factory=list)
    x_offset: int = 0
    start_y: int = 0
    spacing: int = 0

    def place(self, sizes: Dict[str, Tuple[int, int]]) -> List[TemplateSlot]:
        slots: List[TemplateSlot] = []
        y = self.start_y
        for name in self.order:
            if name not in sizes:
                raise PlacementError(f"column template: unknown instance {name!r}")
            slots.append(TemplateSlot(name, Point(self.x_offset, y)))
            y += sizes[name][1] + self.spacing
        return slots


@dataclass
class RowTemplate(PlacementTemplate):
    """Place instances left-to-right at a fixed y offset (a row of columns).

    Attributes:
        order: instance names from left to right.
        y_offset: common y coordinate.
        start_x: x coordinate of the left-most instance.
        spacing: extra horizontal spacing between consecutive instances.
    """

    order: List[str] = field(default_factory=list)
    y_offset: int = 0
    start_x: int = 0
    spacing: int = 0

    def place(self, sizes: Dict[str, Tuple[int, int]]) -> List[TemplateSlot]:
        slots: List[TemplateSlot] = []
        x = self.start_x
        for name in self.order:
            if name not in sizes:
                raise PlacementError(f"row template: unknown instance {name!r}")
            slots.append(TemplateSlot(name, Point(x, self.y_offset)))
            x += sizes[name][0] + self.spacing
        return slots


@dataclass
class GridArrayTemplate(PlacementTemplate):
    """Place instances on a regular row-major grid (an array of bit cells).

    Attributes:
        order: instance names in row-major order (bottom row first).
        columns: number of grid columns.
        pitch_x: horizontal pitch; defaults to each instance's own width.
        pitch_y: vertical pitch; defaults to the row's tallest instance.
        origin: lower-left corner of the grid.
    """

    order: List[str] = field(default_factory=list)
    columns: int = 1
    pitch_x: Optional[int] = None
    pitch_y: Optional[int] = None
    origin: Point = field(default_factory=lambda: Point(0, 0))

    def place(self, sizes: Dict[str, Tuple[int, int]]) -> List[TemplateSlot]:
        if self.columns < 1:
            raise PlacementError("grid template needs at least one column")
        slots: List[TemplateSlot] = []
        y = self.origin.y
        for row_start in range(0, len(self.order), self.columns):
            row = self.order[row_start: row_start + self.columns]
            x = self.origin.x
            row_height = 0
            for name in row:
                if name not in sizes:
                    raise PlacementError(f"grid template: unknown instance {name!r}")
                width, height = sizes[name]
                slots.append(TemplateSlot(name, Point(x, y)))
                x += self.pitch_x if self.pitch_x is not None else width
                row_height = max(row_height, height)
            y += self.pitch_y if self.pitch_y is not None else row_height
        return slots
