"""Grid-based simulated-annealing placer (paper Figure 3, left).

The placer discretises the placement region into uniform sites, seeds every
movable object onto free sites, then anneals with three move types
(relocate, swap, small shift) against a cost that combines weighted HPWL,
constraint violation and an overlap penalty.  It is intentionally a classic
textbook engine: the EasyACIM flow relies on *templates* for the big regular
structures and only needs this engine for small over-cell placements and as
a fallback, so robustness and clarity win over raw speed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PlacementError
from repro.layout.geometry import Point, Rect
from repro.placement.netmodel import PlacementObject, PlacementProblem


@dataclass(frozen=True)
class GridPlacerConfig:
    """Annealing schedule and cost weights.

    Attributes:
        site: grid site edge length in dbu.
        initial_temperature: starting annealing temperature (cost units).
        cooling_rate: geometric cooling factor per outer iteration.
        moves_per_temperature: inner-loop moves at each temperature.
        min_temperature: stop once the temperature falls below this.
        constraint_weight: cost weight of constraint violations.
        overlap_weight: cost weight of object overlap area.
        seed: random seed.
    """

    site: int = 500
    initial_temperature: float = 2.0e5
    cooling_rate: float = 0.9
    moves_per_temperature: int = 120
    min_temperature: float = 1.0
    constraint_weight: float = 4.0
    overlap_weight: float = 0.05
    seed: int = 7


@dataclass
class PlacementResult:
    """Outcome of a placement run.

    Attributes:
        positions: object name -> lower-left corner.
        hpwl: final weighted HPWL.
        constraint_violation: final total constraint violation.
        overlap: final overlap area (0 for a legal placement).
        iterations: number of accepted moves.
    """

    positions: Dict[str, Point]
    hpwl: float
    constraint_violation: float
    overlap: int
    iterations: int

    @property
    def legal(self) -> bool:
        """True when no two objects overlap."""
        return self.overlap == 0


class GridPlacer:
    """Simulated-annealing placement over a uniform grid."""

    def __init__(self, config: GridPlacerConfig = GridPlacerConfig()) -> None:
        self.config = config

    # -- public API ----------------------------------------------------------

    def place(self, problem: PlacementProblem) -> PlacementResult:
        """Place every movable object of ``problem`` in-place and return the result."""
        rng = random.Random(self.config.seed)
        movable = problem.movable_objects
        if not movable:
            return self._result(problem, iterations=0)
        self._initial_placement(problem, rng)
        cost = self._cost(problem)
        temperature = self.config.initial_temperature
        accepted = 0
        while temperature > self.config.min_temperature:
            for _ in range(self.config.moves_per_temperature):
                move = self._propose_move(problem, rng)
                if move is None:
                    continue
                undo = self._apply_move(problem, move)
                new_cost = self._cost(problem)
                delta = new_cost - cost
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    cost = new_cost
                    accepted += 1
                else:
                    undo()
            temperature *= self.config.cooling_rate
        self._legalize(problem, rng)
        return self._result(problem, iterations=accepted)

    # -- initial placement ----------------------------------------------------

    def _initial_placement(self, problem: PlacementProblem, rng: random.Random) -> None:
        """Greedy row packing of the movable objects (fixed ones stay put)."""
        region = problem.region
        cursor_x, cursor_y = region.x_lo, region.y_lo
        row_height = 0
        ordered = sorted(
            problem.movable_objects, key=lambda o: (o.height, o.width), reverse=True
        )
        for obj in ordered:
            if cursor_x + obj.width > region.x_hi:
                cursor_x = region.x_lo
                cursor_y += row_height
                row_height = 0
            if cursor_y + obj.height > region.y_hi:
                # Out of room: fall back to a random in-region position; the
                # annealer and legaliser will sort out overlaps.
                cursor_y = region.y_lo
            obj.position = Point(cursor_x, cursor_y)
            cursor_x += obj.width
            row_height = max(row_height, obj.height)

    # -- cost and moves -----------------------------------------------------------

    def _cost(self, problem: PlacementProblem) -> float:
        return (
            problem.total_hpwl()
            + self.config.constraint_weight * problem.constraint_penalty()
            + self.config.overlap_weight * problem.overlap_area()
        )

    def _propose_move(
        self, problem: PlacementProblem, rng: random.Random
    ) -> Optional[Tuple[str, ...]]:
        movable = problem.movable_objects
        if not movable:
            return None
        kind = rng.random()
        if kind < 0.45 or len(movable) < 2:
            obj = rng.choice(movable)
            target = self._random_site(problem, obj, rng)
            return ("relocate", obj.name, target)
        if kind < 0.8:
            a, b = rng.sample(movable, 2)
            return ("swap", a.name, b.name)
        obj = rng.choice(movable)
        dx = rng.choice((-2, -1, 1, 2)) * self.config.site
        dy = rng.choice((-2, -1, 1, 2)) * self.config.site
        return ("shift", obj.name, dx, dy)

    def _random_site(
        self, problem: PlacementProblem, obj: PlacementObject, rng: random.Random
    ) -> Point:
        region = problem.region
        max_x = max(region.x_lo, region.x_hi - obj.width)
        max_y = max(region.y_lo, region.y_hi - obj.height)
        site = self.config.site
        x = region.x_lo + rng.randrange(max(1, (max_x - region.x_lo) // site + 1)) * site
        y = region.y_lo + rng.randrange(max(1, (max_y - region.y_lo) // site + 1)) * site
        return Point(min(x, max_x), min(y, max_y))

    def _apply_move(self, problem: PlacementProblem, move: Tuple) -> callable:
        """Apply a move and return an undo closure."""
        if move[0] == "relocate":
            _, name, target = move
            obj = problem.object(name)
            old = obj.position
            obj.position = target

            def undo():
                obj.position = old

            return undo
        if move[0] == "swap":
            _, name_a, name_b = move
            obj_a, obj_b = problem.object(name_a), problem.object(name_b)
            old_a, old_b = obj_a.position, obj_b.position
            # Swapped positions are clamped so differently-sized objects
            # cannot end up hanging outside the placement region.
            obj_a.position = self._clamp(problem, obj_a, old_b)
            obj_b.position = self._clamp(problem, obj_b, old_a)

            def undo():
                obj_a.position, obj_b.position = old_a, old_b

            return undo
        if move[0] == "shift":
            _, name, dx, dy = move
            obj = problem.object(name)
            old = obj.position
            region = problem.region
            new_x = min(max(region.x_lo, old.x + dx), region.x_hi - obj.width)
            new_y = min(max(region.y_lo, old.y + dy), region.y_hi - obj.height)
            obj.position = Point(new_x, new_y)

            def undo():
                obj.position = old

            return undo
        raise PlacementError(f"unknown move {move[0]!r}")

    @staticmethod
    def _clamp(problem: PlacementProblem, obj: PlacementObject, target: Point) -> Point:
        """Clamp a candidate position so ``obj`` stays inside the region."""
        region = problem.region
        x = min(max(region.x_lo, target.x), max(region.x_lo, region.x_hi - obj.width))
        y = min(max(region.y_lo, target.y), max(region.y_lo, region.y_hi - obj.height))
        return Point(x, y)

    # -- legalisation ----------------------------------------------------------

    def _legalize(self, problem: PlacementProblem, rng: random.Random) -> None:
        """Remove residual overlaps by nudging objects to free grid sites."""
        for _ in range(200):
            if problem.overlap_area() == 0:
                return
            moved = False
            for obj in problem.movable_objects:
                if self._overlaps_any(problem, obj):
                    spot = self._find_free_site(problem, obj)
                    if spot is not None:
                        obj.position = spot
                        moved = True
            if not moved:
                break

    def _overlaps_any(self, problem: PlacementProblem, obj: PlacementObject) -> bool:
        rect = obj.rect()
        for other in problem.objects:
            if other.name == obj.name or not other.placed:
                continue
            if rect.overlaps(other.rect()):
                return True
        return False

    def _find_free_site(
        self, problem: PlacementProblem, obj: PlacementObject
    ) -> Optional[Point]:
        region = problem.region
        site = self.config.site
        others = [o.rect() for o in problem.objects if o.name != obj.name and o.placed]
        y = region.y_lo
        while y + obj.height <= region.y_hi:
            x = region.x_lo
            while x + obj.width <= region.x_hi:
                candidate = Rect.from_size(x, y, obj.width, obj.height)
                if not any(candidate.overlaps(other) for other in others):
                    return Point(x, y)
                x += site
            y += site
        return None

    # -- result -------------------------------------------------------------------

    def _result(self, problem: PlacementProblem, iterations: int) -> PlacementResult:
        positions = {
            obj.name: obj.position for obj in problem.objects if obj.placed
        }
        return PlacementResult(
            positions=positions,
            hpwl=problem.total_hpwl(),
            constraint_violation=problem.constraint_penalty(),
            overlap=problem.overlap_area(),
            iterations=iterations,
        )
