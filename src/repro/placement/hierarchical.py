"""The template-based hierarchical placer (paper section 3.3, Figure 7).

At every hierarchy level the placement *inside* a "Std" layout cell or an
already-placed subcircuit is kept untouched; only the over-cell placement
of that level's direct children is performed.  Children are placed either:

* from an explicit :class:`~repro.placement.template.PlacementTemplate`
  (columns, rows, grids — the regular structures of the ACIM macro), or
* by the annealing :class:`~repro.placement.grid_placer.GridPlacer` when no
  template applies (small irregular over-cell placements), using the nets
  and constraints supplied by the caller.

Working bottom-up through the hierarchy — leaf cells, local arrays,
columns, the full array — yields the final macro floorplan.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from dataclasses import dataclass

from repro.errors import PlacementError
from repro.layout.geometry import Point, Rect, Transform
from repro.layout.layout import LayoutCell
from repro.placement.constraints import PlacementConstraint
from repro.placement.grid_placer import GridPlacer, GridPlacerConfig, PlacementResult
from repro.placement.netmodel import (
    PlacementNet,
    PlacementObject,
    PlacementProblem,
)
from repro.placement.template import PlacementTemplate


@dataclass(frozen=True)
class MacroPlacement:
    """One solved macro to instantiate by transform.

    Attributes:
        name: instance name in the parent cell.
        macro: the solved (placed + routed) macro layout cell.
        transform: placement transform in parent coordinates.
    """

    name: str
    macro: LayoutCell
    transform: Transform


class HierarchicalPlacer:
    """Places the direct children of layout cells, level by level."""

    def __init__(self, grid_placer: Optional[GridPlacer] = None) -> None:
        self.grid_placer = grid_placer or GridPlacer(GridPlacerConfig())

    # -- template-driven placement ------------------------------------------------

    def place_with_template(
        self, cell: LayoutCell, template: PlacementTemplate
    ) -> Dict[str, Point]:
        """Place ``cell``'s children according to ``template``.

        Returns the applied instance positions.  Instances not mentioned by
        the template keep their current transforms.
        """
        sizes = self._instance_sizes(cell)
        slots = template.place(sizes)
        positions: Dict[str, Point] = {}
        for slot in slots:
            if slot.name not in sizes:
                raise PlacementError(
                    f"template slot {slot.name!r} has no matching instance in "
                    f"cell {cell.name!r}"
                )
            cell.move_instance(slot.name, Transform(slot.position.x, slot.position.y))
            positions[slot.name] = slot.position
        return positions

    # -- optimisation-driven placement ----------------------------------------------

    def place_with_optimizer(
        self,
        cell: LayoutCell,
        nets: Sequence[PlacementNet] = (),
        constraints: Sequence[PlacementConstraint] = (),
        region: Optional[Rect] = None,
        fixed_instances: Iterable[str] = (),
    ) -> PlacementResult:
        """Place ``cell``'s children with the annealing grid placer.

        Args:
            cell: the parent whose direct children are placed.
            nets: connectivity between children, expressed on child pin names.
            constraints: AMS placement constraints.
            region: placement region; defaults to the cell boundary or a
                region sized for the combined child area.
            fixed_instances: children that must keep their current position.
        """
        fixed = set(fixed_instances)
        problem = PlacementProblem(region or self._default_region(cell))
        for instance in cell.instances:
            bbox = instance.cell.boundary or instance.cell.bounding_box()
            if bbox is None:
                raise PlacementError(
                    f"instance {instance.name!r} references an empty cell"
                )
            pin_offsets = {
                pin.name: Point(
                    pin.access_point.x - bbox.x_lo, pin.access_point.y - bbox.y_lo
                )
                for pin in instance.cell.pins
            }
            is_fixed = instance.name in fixed
            position = None
            if is_fixed:
                position = Point(instance.transform.dx, instance.transform.dy)
            problem.add_object(PlacementObject(
                name=instance.name,
                width=bbox.width,
                height=bbox.height,
                pin_offsets=pin_offsets,
                fixed=is_fixed,
                position=position,
            ))
        for net in nets:
            problem.add_net(net)
        for constraint in constraints:
            problem.add_constraint(constraint)
        result = self.grid_placer.place(problem)
        for name, position in result.positions.items():
            if name in fixed:
                continue
            cell.move_instance(name, Transform(position.x, position.y))
        return result

    # -- macro-instance placement -----------------------------------------------------

    def place_macro_instances(
        self,
        cell: LayoutCell,
        placements: Sequence[MacroPlacement],
        check_overlaps: bool = True,
    ) -> Dict[str, Rect]:
        """Instantiate solved macros by transform (the reuse consumer path).

        Macros arrive placed and routed (from the
        :class:`~repro.physical.macro_library.MacroLibrary`); this method
        only *instantiates* them — no re-placement, no re-routing.  Every
        macro must be non-empty, and with ``check_overlaps`` (the
        default) any pair of placed macros whose bounding-box interiors
        intersect raises :class:`~repro.errors.PlacementError` before the
        parent cell is modified, so an illegal plan can never reach the
        router and corrupt its grid.

        Returns the placed bounding boxes by instance name.
        """
        boxes: Dict[str, Rect] = {}
        for placement in placements:
            bbox = placement.macro.boundary or placement.macro.bounding_box()
            if bbox is None:
                raise PlacementError(
                    f"macro placement {placement.name!r} references an "
                    f"empty cell {placement.macro.name!r}"
                )
            boxes[placement.name] = placement.transform.apply_rect(bbox)
        if check_overlaps:
            self.ensure_no_overlaps(boxes)
        for placement in placements:
            cell.add_instance(placement.name, placement.macro, placement.transform)
        return boxes

    @staticmethod
    def ensure_no_overlaps(boxes: Dict[str, Rect]) -> None:
        """Raise :class:`PlacementError` when any two boxes overlap.

        Shared edges are legal (abutted macros); only interior
        intersections are rejected.  The sweep over x-sorted boxes keeps
        the pair check near-linear for row/column arrangements.
        """
        ordered = sorted(boxes.items(), key=lambda item: item[1].x_lo)
        for i, (name_a, box_a) in enumerate(ordered):
            for name_b, box_b in ordered[i + 1:]:
                if box_b.x_lo >= box_a.x_hi:
                    break
                if box_a.overlaps(box_b):
                    overlap = box_a.intersection(box_b)
                    raise PlacementError(
                        f"macro instances {name_a!r} and {name_b!r} overlap "
                        f"at ({overlap.x_lo},{overlap.y_lo})-"
                        f"({overlap.x_hi},{overlap.y_hi}); "
                        "solved macros must be abutted or disjoint"
                    )

    # -- combined entry point ---------------------------------------------------------

    def place(
        self,
        cell: LayoutCell,
        template: Optional[PlacementTemplate] = None,
        nets: Sequence[PlacementNet] = (),
        constraints: Sequence[PlacementConstraint] = (),
        region: Optional[Rect] = None,
    ):
        """Template placement when a template is given, optimisation otherwise."""
        if template is not None:
            return self.place_with_template(cell, template)
        return self.place_with_optimizer(
            cell, nets=nets, constraints=constraints, region=region
        )

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _instance_sizes(cell: LayoutCell) -> Dict[str, Tuple[int, int]]:
        sizes: Dict[str, Tuple[int, int]] = {}
        for instance in cell.instances:
            bbox = instance.cell.boundary or instance.cell.bounding_box()
            if bbox is None:
                raise PlacementError(
                    f"instance {instance.name!r} references an empty cell"
                )
            sizes[instance.name] = (bbox.width, bbox.height)
        return sizes

    def _default_region(self, cell: LayoutCell) -> Rect:
        if cell.boundary is not None:
            return cell.boundary
        sizes = self._instance_sizes(cell)
        if not sizes:
            raise PlacementError(f"cell {cell.name!r} has no children to place")
        total_area = sum(w * h for w, h in sizes.values())
        max_width = max(w for w, _h in sizes.values())
        max_height = max(h for _w, h in sizes.values())
        # Square-ish region with 40% whitespace, at least one object each way.
        side = int((total_area * 1.4) ** 0.5)
        return Rect(0, 0, max(side, max_width), max(side, max_height))
