"""Throughput model (paper Equation 7).

``T = (H / L) * W / (t_com + t_set + t_conv)``

Every column performs an (H/L)-long analog dot product per cycle, and all W
columns operate in parallel, so a cycle completes (H/L)*W multiply-accumulate
operations.  The cycle time decomposes into the MAC compute delay, the
charge-redistribution setup time (which must exceed ``0.69 * tau * B_ADC``)
and ``B_ADC`` SAR comparison rounds.  The timing constants live in
:class:`repro.arch.timing.TimingParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingModel, TimingParameters
from repro.units import OPS_PER_MAC, ops_to_tops


@dataclass(frozen=True)
class ThroughputBreakdown:
    """The Equation-7 terms for one design point.

    Attributes:
        compute_time: t_com in seconds.
        setup_time: t_set in seconds.
        conversion_time: t_conv in seconds.
        cycle_time: total cycle time in seconds.
        macs_per_cycle: (H / L) * W.
        macs_per_second: throughput in MAC/s (the paper's T).
        tops: throughput in TOPS counting 2 ops per MAC.
    """

    compute_time: float
    setup_time: float
    conversion_time: float
    cycle_time: float
    macs_per_cycle: int
    macs_per_second: float
    tops: float


@dataclass(frozen=True)
class ThroughputArrays:
    """Vectorized Equation-7 terms: one array entry per design point.

    Attributes:
        compute_time: t_com in seconds (spec-independent scalar).
        setup_time: t_set per design point.
        conversion_time: t_conv per design point.
        cycle_time: total cycle time per design point.
        macs_per_cycle: (H / L) * W per design point (integer array).
        macs_per_second: throughput T per design point.
        tops: throughput in TOPS per design point.
    """

    compute_time: float
    setup_time: np.ndarray
    conversion_time: np.ndarray
    cycle_time: np.ndarray
    macs_per_cycle: np.ndarray
    macs_per_second: np.ndarray
    tops: np.ndarray


class ThroughputModel:
    """Evaluates Equation 7 for design points."""

    def __init__(self, timing: TimingParameters = TimingParameters()) -> None:
        self.timing = timing

    def breakdown(self, spec: ACIMDesignSpec) -> ThroughputBreakdown:
        """Full Equation-7 term breakdown for ``spec``."""
        model = TimingModel(spec, self.timing)
        macs_per_cycle = model.macs_per_cycle()
        cycle = model.cycle_time
        macs_per_second = macs_per_cycle / cycle
        return ThroughputBreakdown(
            compute_time=model.compute_time,
            setup_time=model.setup_time,
            conversion_time=model.conversion_time,
            cycle_time=cycle,
            macs_per_cycle=macs_per_cycle,
            macs_per_second=macs_per_second,
            tops=ops_to_tops(macs_per_second * OPS_PER_MAC),
        )

    def breakdown_arrays(self, batch) -> ThroughputArrays:
        """Vectorized Equation-7 term breakdown of a :class:`SpecBatch`.

        The timing terms come from the vectorized
        :class:`~repro.arch.timing.TimingParameters` kernels, mirroring the
        scalar :class:`~repro.arch.timing.TimingModel` operation for
        operation, so a length-1 batch reproduces the scalar result bit for
        bit.
        """
        timing = self.timing
        adc = batch.adc_bits
        setup = timing.setup_time_array(adc)
        conversion = timing.conversion_time_array(adc)
        cycle = timing.cycle_time_array(adc)
        macs_per_cycle = batch.local_arrays_per_column * batch.width
        macs_per_second = macs_per_cycle / cycle
        tops = ops_to_tops(macs_per_second * OPS_PER_MAC)
        return ThroughputArrays(
            compute_time=timing.compute_delay,
            setup_time=setup,
            conversion_time=conversion,
            cycle_time=cycle,
            macs_per_cycle=macs_per_cycle,
            macs_per_second=macs_per_second,
            tops=tops,
        )

    def macs_per_second(self, spec: ACIMDesignSpec) -> float:
        """Throughput T in MAC/s (Equation 7)."""
        return self.breakdown(spec).macs_per_second

    def tops(self, spec: ACIMDesignSpec) -> float:
        """Throughput in TOPS (2 operations per MAC)."""
        return self.breakdown(spec).tops
