"""Energy model (paper Equations 8 and 9).

The average energy of one 1-bit MAC is

``E = E_compute + E_control + E_ADC / (H / L)``            (Eq. 8)

where the ADC conversion energy is amortised over the H/L products that one
conversion digitises, and the ADC energy follows Murmann's empirical SAR
formula

``E_ADC = k1 * (B_ADC + log2(VDD)) + k2 * 4^B_ADC * VDD^2``  (Eq. 9).

``k1`` captures the roughly-linear-in-bits logic/comparator energy and
``k2`` the exponential CDAC switching energy.  In the paper k1/k2 come from
post-layout simulation; here they are fitted against the behavioral CDAC
model (see :func:`repro.model.calibration.fit_adc_energy_constants`), with
defaults chosen so the design-space extremes reproduce the published
50–750 TOPS/W range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.arch.spec import ACIMDesignSpec
from repro.units import OPS_PER_MAC


@dataclass(frozen=True)
class EnergyParameters:
    """Constants of the energy model.

    Attributes:
        e_compute: E_compute, energy of one 1-bit multiply in joules.
        e_control: E_control, control/clocking energy per MAC in joules.
        k1: linear ADC energy coefficient in joules per bit (Eq. 9).
        k2: exponential CDAC energy coefficient in joules (Eq. 9).
        vdd: supply voltage in volts.
    """

    e_compute: float = 1.8e-15
    e_control: float = 0.9e-15
    k1: float = 2.0e-15
    k2: float = 0.15e-15
    vdd: float = 0.9

    def __post_init__(self) -> None:
        if self.e_compute < 0 or self.e_control < 0:
            raise ModelError("compute/control energies must be non-negative")
        if self.k1 < 0 or self.k2 < 0:
            raise ModelError("ADC energy coefficients must be non-negative")
        if self.vdd <= 0:
            raise ModelError("supply voltage must be positive")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-MAC energy decomposition for one design point.

    Attributes:
        compute: E_compute in joules.
        control: E_control in joules.
        adc_total: E_ADC of one full conversion in joules.
        adc_per_mac: E_ADC / (H/L), the amortised ADC energy per MAC.
        total_per_mac: total energy per MAC in joules.
        tops_per_watt: energy efficiency in TOPS/W (2 ops per MAC).
    """

    compute: float
    control: float
    adc_total: float
    adc_per_mac: float
    total_per_mac: float
    tops_per_watt: float


@dataclass(frozen=True)
class EnergyArrays:
    """Vectorized Equation-8 decomposition: one array entry per design point.

    Attributes:
        compute: E_compute in joules (spec-independent scalar).
        control: E_control in joules (spec-independent scalar).
        adc_total: E_ADC of one full conversion, per design point.
        adc_per_mac: amortised ADC energy E_ADC / (H/L), per design point.
        total_per_mac: total energy per MAC, per design point.
        tops_per_watt: energy efficiency in TOPS/W, per design point.
    """

    compute: float
    control: float
    adc_total: np.ndarray
    adc_per_mac: np.ndarray
    total_per_mac: np.ndarray
    tops_per_watt: np.ndarray


class EnergyModel:
    """Evaluates Equations 8 and 9 for design points."""

    def __init__(self, parameters: EnergyParameters = EnergyParameters()) -> None:
        self.parameters = parameters

    def adc_energy(self, adc_bits: int) -> float:
        """E_ADC of one conversion (Equation 9), in joules."""
        if adc_bits < 1:
            raise ModelError("ADC precision must be at least 1 bit")
        p = self.parameters
        return (
            p.k1 * (adc_bits + math.log2(p.vdd))
            + p.k2 * (4.0 ** adc_bits) * p.vdd ** 2
        )

    def breakdown(self, spec: ACIMDesignSpec) -> EnergyBreakdown:
        """Full Equation-8 decomposition for ``spec``."""
        p = self.parameters
        adc_total = self.adc_energy(spec.adc_bits)
        share = spec.local_arrays_per_column
        adc_per_mac = adc_total / share
        total = p.e_compute + p.e_control + adc_per_mac
        if total <= 0:
            raise ModelError("total energy per MAC must be positive")
        tops_per_watt = OPS_PER_MAC / (total * 1.0e12)
        return EnergyBreakdown(
            compute=p.e_compute,
            control=p.e_control,
            adc_total=adc_total,
            adc_per_mac=adc_per_mac,
            total_per_mac=total,
            tops_per_watt=tops_per_watt,
        )

    def adc_energy_array(self, adc_bits) -> np.ndarray:
        """Vectorized Equation 9 over a column of ADC precisions."""
        adc = np.asarray(adc_bits)
        if adc.size and np.any(adc < 1):
            raise ModelError("ADC precision must be at least 1 bit")
        p = self.parameters
        return (
            p.k1 * (adc + math.log2(p.vdd))
            + p.k2 * (4.0 ** adc) * p.vdd ** 2
        )

    def breakdown_arrays(self, batch) -> EnergyArrays:
        """Vectorized Equation-8 decomposition of a :class:`SpecBatch`.

        Expressions mirror :meth:`breakdown` operation for operation, so a
        length-1 batch reproduces the scalar result bit for bit.
        """
        p = self.parameters
        adc_total = self.adc_energy_array(batch.adc_bits)
        share = batch.local_arrays_per_column
        adc_per_mac = adc_total / share
        total = p.e_compute + p.e_control + adc_per_mac
        if total.size and np.any(total <= 0):
            raise ModelError("total energy per MAC must be positive")
        tops_per_watt = OPS_PER_MAC / (total * 1.0e12)
        return EnergyArrays(
            compute=p.e_compute,
            control=p.e_control,
            adc_total=adc_total,
            adc_per_mac=adc_per_mac,
            total_per_mac=total,
            tops_per_watt=tops_per_watt,
        )

    def energy_per_mac(self, spec: ACIMDesignSpec) -> float:
        """Average energy of one 1-bit MAC in joules (Equation 8)."""
        return self.breakdown(spec).total_per_mac

    def tops_per_watt(self, spec: ACIMDesignSpec) -> float:
        """Energy efficiency in TOPS/W."""
        return self.breakdown(spec).tops_per_watt

    def power(self, spec: ACIMDesignSpec, macs_per_second: float) -> float:
        """Average power in watts at a given throughput."""
        if macs_per_second < 0:
            raise ModelError("throughput must be non-negative")
        return self.energy_per_mac(spec) * macs_per_second
