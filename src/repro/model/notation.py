"""Workload statistics (the paper's Table 1 notation).

The SNR model needs the statistical properties of the inputs (activations)
and weights flowing through the macro: their standard deviations, maxima,
second moments and quantization precisions.  :class:`WorkloadStatistics`
holds these and provides factories for the distributions used throughout
the reproduction (binary 1b x 1b computation as in the paper's section 4,
plus Gaussian and uniform multi-bit variants used by the application-level
examples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.units import amplitude_db


@dataclass(frozen=True)
class WorkloadStatistics:
    """Statistical description of inputs (x) and weights (w).

    Attributes:
        sigma_x: standard deviation of the activations.
        sigma_w: standard deviation of the weights.
        x_max: maximum activation magnitude x_m.
        w_max: maximum weight magnitude w_m.
        mean_x_squared: E[x^2] of the activations.
        bits_x: activation precision B_x in bits.
        bits_w: weight precision B_w in bits.
    """

    sigma_x: float
    sigma_w: float
    x_max: float
    w_max: float
    mean_x_squared: float
    bits_x: int = 1
    bits_w: int = 1

    def __post_init__(self) -> None:
        if self.sigma_x <= 0 or self.sigma_w <= 0:
            raise ModelError("input/weight standard deviations must be positive")
        if self.x_max <= 0 or self.w_max <= 0:
            raise ModelError("input/weight maxima must be positive")
        if self.mean_x_squared <= 0:
            raise ModelError("E[x^2] must be positive")
        if self.bits_x < 1 or self.bits_w < 1:
            raise ModelError("precisions must be at least 1 bit")

    # -- derived quantities -----------------------------------------------

    @property
    def zeta_x(self) -> float:
        """Crest factor of the activations, zeta_x = x_m / sigma_x."""
        return self.x_max / self.sigma_x

    @property
    def zeta_w(self) -> float:
        """Crest factor of the weights, zeta_w = w_m / sigma_w."""
        return self.w_max / self.sigma_w

    @property
    def zeta_x_db(self) -> float:
        """zeta_x expressed in dB (20 log10)."""
        return amplitude_db(self.zeta_x)

    @property
    def zeta_w_db(self) -> float:
        """zeta_w expressed in dB (20 log10)."""
        return amplitude_db(self.zeta_w)

    @property
    def delta_x(self) -> float:
        """Activation quantization step, Delta_x = x_m * 2^-B_x (Eq. 4)."""
        return self.x_max * 2.0 ** (-self.bits_x)

    @property
    def delta_w(self) -> float:
        """Weight quantization step, Delta_w = w_m * 2^(-B_w + 1) (Eq. 4)."""
        return self.w_max * 2.0 ** (-self.bits_w + 1)

    def output_variance(self, dot_product_length: int) -> float:
        """Variance of the pre-ADC output, sigma_yo^2 = N sigma_w^2 E[x^2]."""
        if dot_product_length < 1:
            raise ModelError("dot product length must be at least 1")
        return dot_product_length * self.sigma_w ** 2 * self.mean_x_squared

    # -- factories ----------------------------------------------------------

    @classmethod
    def binary(cls) -> "WorkloadStatistics":
        """1b x 1b computation as used in the paper's evaluation.

        Activations are Bernoulli(1/2) over {0, 1}; weights are equiprobable
        over {-1, +1}.
        """
        return cls(
            sigma_x=0.5,
            sigma_w=1.0,
            x_max=1.0,
            w_max=1.0,
            mean_x_squared=0.5,
            bits_x=1,
            bits_w=1,
        )

    @classmethod
    def gaussian(
        cls,
        bits_x: int = 4,
        bits_w: int = 4,
        crest_factor: float = 3.0,
    ) -> "WorkloadStatistics":
        """Zero-mean Gaussian activations and weights clipped at ``crest_factor`` sigma."""
        if crest_factor <= 0:
            raise ModelError("crest factor must be positive")
        sigma = 1.0
        return cls(
            sigma_x=sigma,
            sigma_w=sigma,
            x_max=crest_factor * sigma,
            w_max=crest_factor * sigma,
            mean_x_squared=sigma ** 2,
            bits_x=bits_x,
            bits_w=bits_w,
        )

    @classmethod
    def uniform(cls, bits_x: int = 4, bits_w: int = 4) -> "WorkloadStatistics":
        """Activations uniform on [0, 1], weights uniform on [-1, 1]."""
        return cls(
            sigma_x=1.0 / math.sqrt(12.0),
            sigma_w=2.0 / math.sqrt(12.0),
            x_max=1.0,
            w_max=1.0,
            mean_x_squared=1.0 / 3.0,
            bits_x=bits_x,
            bits_w=bits_w,
        )
