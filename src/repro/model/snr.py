"""SNR estimation model: paper Equations 2–6 (full) and Equation 11 (simplified).

The total SNR of an analog MAC + SAR-ADC readout combines three noise
mechanisms:

* input/weight quantization noise (Eq. 4) — fixed by the workload precision,
* analog non-ideality (Eq. 5) — capacitor mismatch, kT/C thermal noise and
  (negligible, thanks to bottom-plate sampling) charge injection,
* ADC output quantization noise (Eq. 6) — set by B_ADC and the dot-product
  length N.

The simplified Equation 11 collapses the constant terms into two fitted
coefficients (k3, k4) and keeps only the design-dependent terms
``6*B_ADC - 10*log10(H/L)``; it is the form the design-space explorer uses
as its f_SNR objective.  :mod:`repro.model.calibration` fits k3/k4 against
the full model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.model.notation import WorkloadStatistics
from repro.units import BOLTZMANN_K, ROOM_TEMPERATURE_K, db_to_linear, linear_to_db


@dataclass(frozen=True)
class SnrParameters:
    """Circuit-level parameters of the SNR model.

    Attributes:
        unit_capacitance: compute capacitor C_o (= C_F) in farads.
        cap_mismatch_kappa: mismatch coefficient kappa with
            sigma_C = kappa * sqrt(C)  (layout/technology dependent).
        vdd: supply voltage in volts.
        temperature_k: temperature in Kelvin for the kT/C term.
        charge_injection_variance: sigma_inj^2; essentially zero because the
            architecture uses bottom-plate charge redistribution.
        k3: fitted coefficient of the simplified Equation 11.
        k4: fitted constant of the simplified Equation 11 in dB.
    """

    unit_capacitance: float = 1.0e-15
    cap_mismatch_kappa: float = 4.0e-10
    vdd: float = 0.9
    temperature_k: float = ROOM_TEMPERATURE_K
    charge_injection_variance: float = 0.0
    k3: float = 1.0e-15
    k4: float = 9.0

    def __post_init__(self) -> None:
        if self.unit_capacitance <= 0:
            raise ModelError("unit capacitance must be positive")
        if self.cap_mismatch_kappa < 0:
            raise ModelError("mismatch coefficient must be non-negative")
        if self.vdd <= 0:
            raise ModelError("supply voltage must be positive")
        if self.temperature_k <= 0:
            raise ModelError("temperature must be positive")
        if self.charge_injection_variance < 0:
            raise ModelError("charge injection variance must be non-negative")

    @property
    def cap_sigma(self) -> float:
        """Absolute capacitor mismatch sigma_C = kappa * sqrt(C_o) in farads."""
        return self.cap_mismatch_kappa * math.sqrt(self.unit_capacitance)

    @property
    def cap_relative_variance(self) -> float:
        """Relative mismatch variance sigma_C^2 / C_o^2."""
        return (self.cap_sigma / self.unit_capacitance) ** 2

    @property
    def thermal_noise_variance(self) -> float:
        """kT/C thermal noise variance sigma_theta^2 in V^2."""
        return BOLTZMANN_K * self.temperature_k / self.unit_capacitance


class SnrModel:
    """Full and simplified SNR models for the synthesizable ACIM."""

    def __init__(
        self,
        parameters: SnrParameters = SnrParameters(),
        workload: WorkloadStatistics = WorkloadStatistics.binary(),
    ) -> None:
        self.parameters = parameters
        self.workload = workload

    # -- Equation 4: input quantization noise -----------------------------

    def input_quantization_variance(self, dot_product_length: int) -> float:
        """sigma_qi^2 = N/12 * (Delta_x^2 sigma_w^2 + Delta_w^2 E[x^2])."""
        w = self.workload
        n = self._check_n(dot_product_length)
        return (n / 12.0) * (
            w.delta_x ** 2 * w.sigma_w ** 2 + w.delta_w ** 2 * w.mean_x_squared
        )

    # -- Equation 5: analog non-ideality -----------------------------------

    def analog_noise_variance(self, dot_product_length: int) -> float:
        """sigma_eta^2 per Equation 5 (mismatch + thermal + injection)."""
        p = self.parameters
        w = self.workload
        n = self._check_n(dot_product_length)
        prefactor = (2.0 / 3.0) * (1.0 - 4.0 ** (-w.bits_w)) * n
        per_term = (
            w.mean_x_squared * p.cap_relative_variance
            + 2.0 * p.thermal_noise_variance / (p.vdd ** 2)
            + p.charge_injection_variance
        )
        return prefactor * per_term

    # -- Equation 3 components ---------------------------------------------

    def snr_analog(self, dot_product_length: int) -> float:
        """SNR_a (linear): output variance over analog noise variance."""
        n = self._check_n(dot_product_length)
        noise = self.analog_noise_variance(n)
        if noise == 0.0:
            return math.inf
        return self.workload.output_variance(n) / noise

    def sqnr_input(self, dot_product_length: int) -> float:
        """SQNR_i (linear): output variance over input-quantization noise."""
        n = self._check_n(dot_product_length)
        noise = self.input_quantization_variance(n)
        if noise == 0.0:
            return math.inf
        return self.workload.output_variance(n) / noise

    def snr_pre(self, dot_product_length: int) -> float:
        """SNR before the ADC (Equation 3), linear."""
        return _parallel(
            self.snr_analog(dot_product_length),
            self.sqnr_input(dot_product_length),
        )

    # -- Equation 6: ADC quantization --------------------------------------

    def sqnr_output_db(self, adc_bits: int, dot_product_length: int) -> float:
        """SQNR_y in dB (Equation 6)."""
        if adc_bits < 1:
            raise ModelError("ADC precision must be at least 1 bit")
        n = self._check_n(dot_product_length)
        w = self.workload
        return (
            6.0 * adc_bits
            + 4.8
            - (w.zeta_x_db + w.zeta_w_db)
            - 10.0 * math.log10(n)
        )

    def sqnr_output(self, adc_bits: int, dot_product_length: int) -> float:
        """SQNR_y as a linear ratio."""
        return db_to_linear(self.sqnr_output_db(adc_bits, dot_product_length))

    # -- Equation 2: total SNR ----------------------------------------------

    def total_snr(self, adc_bits: int, dot_product_length: int) -> float:
        """SNR_T (linear) combining pre-ADC SNR and ADC quantization."""
        return _parallel(
            self.snr_pre(dot_product_length),
            self.sqnr_output(adc_bits, dot_product_length),
        )

    def total_snr_db(self, adc_bits: int, dot_product_length: int) -> float:
        """SNR_T in dB."""
        return linear_to_db(self.total_snr(adc_bits, dot_product_length))

    def design_snr(self, adc_bits: int, dot_product_length: int) -> float:
        """Design-dependent SNR (linear): analog noise + ADC quantization only.

        Input/weight quantization (SQNR_i) is set by the workload precision,
        not by (H, W, L, B_ADC); excluding it isolates the part of the SNR
        the explorer can actually influence, which is what the simplified
        Equation 11 captures.
        """
        return _parallel(
            self.snr_analog(dot_product_length),
            self.sqnr_output(adc_bits, dot_product_length),
        )

    def design_snr_db(self, adc_bits: int, dot_product_length: int) -> float:
        """Design-dependent SNR in dB."""
        return linear_to_db(self.design_snr(adc_bits, dot_product_length))

    # -- Equation 11: simplified objective ------------------------------------

    def simplified_snr_db(self, adc_bits: int, local_arrays_per_column: int) -> float:
        """f_SNR of Equation 11:

        ``SNR(dB) = 6 B_ADC - 10 log10(H/L) - 10 log10(k3 / C_o) + k4``.
        """
        if adc_bits < 1:
            raise ModelError("ADC precision must be at least 1 bit")
        n = self._check_n(local_arrays_per_column)
        p = self.parameters
        return (
            6.0 * adc_bits
            - 10.0 * math.log10(n)
            - 10.0 * math.log10(p.k3 / p.unit_capacitance)
            + p.k4
        )

    # -- vectorized kernels ----------------------------------------------------
    #
    # Array counterparts of the scalar equations above, taking NumPy columns
    # of B_ADC and N = H/L values and returning one value per design point.
    # Each expression mirrors its scalar twin operation for operation; the
    # spec-independent factors are folded into Python-float constants first,
    # exactly as the scalar path computes them.  On pure-arithmetic chains
    # the results are bit-identical to the scalar model; chains through the
    # transcendental ufuncs (log10, 10**x) may differ from ``math`` by a few
    # ULP, which the parity suite bounds at 1e-12 relative.

    def _check_arrays(self, adc_bits, dot_product_length):
        adc = np.asarray(adc_bits)
        n = np.asarray(dot_product_length)
        if adc.size and np.any(adc < 1):
            raise ModelError("ADC precision must be at least 1 bit")
        if n.size and np.any(n < 1):
            raise ModelError("dot product length must be at least 1")
        return adc, n

    def input_quantization_variance_array(self, dot_product_length) -> np.ndarray:
        """Vectorized Equation 4 over a column of N values."""
        w = self.workload
        _, n = self._check_arrays(1, dot_product_length)
        per_term = (
            w.delta_x ** 2 * w.sigma_w ** 2 + w.delta_w ** 2 * w.mean_x_squared
        )
        return (n / 12.0) * per_term

    def analog_noise_variance_array(self, dot_product_length) -> np.ndarray:
        """Vectorized Equation 5 over a column of N values."""
        p = self.parameters
        w = self.workload
        _, n = self._check_arrays(1, dot_product_length)
        prefactor_per_n = (2.0 / 3.0) * (1.0 - 4.0 ** (-w.bits_w))
        per_term = (
            w.mean_x_squared * p.cap_relative_variance
            + 2.0 * p.thermal_noise_variance / (p.vdd ** 2)
            + p.charge_injection_variance
        )
        return (prefactor_per_n * n) * per_term

    def snr_analog_array(self, dot_product_length) -> np.ndarray:
        """Vectorized SNR_a (linear)."""
        _, n = self._check_arrays(1, dot_product_length)
        w = self.workload
        output = (n * w.sigma_w ** 2) * w.mean_x_squared
        noise = self.analog_noise_variance_array(n)
        return np.where(noise == 0.0, math.inf, output / np.where(
            noise == 0.0, 1.0, noise))

    def sqnr_input_array(self, dot_product_length) -> np.ndarray:
        """Vectorized SQNR_i (linear)."""
        _, n = self._check_arrays(1, dot_product_length)
        w = self.workload
        output = (n * w.sigma_w ** 2) * w.mean_x_squared
        noise = self.input_quantization_variance_array(n)
        return np.where(noise == 0.0, math.inf, output / np.where(
            noise == 0.0, 1.0, noise))

    def snr_pre_array(self, dot_product_length) -> np.ndarray:
        """Vectorized pre-ADC SNR (Equation 3, linear)."""
        return _parallel_array(
            self.snr_analog_array(dot_product_length),
            self.sqnr_input_array(dot_product_length),
        )

    def sqnr_output_db_array(self, adc_bits, dot_product_length) -> np.ndarray:
        """Vectorized SQNR_y in dB (Equation 6)."""
        adc, n = self._check_arrays(adc_bits, dot_product_length)
        w = self.workload
        return (
            6.0 * adc
            + 4.8
            - (w.zeta_x_db + w.zeta_w_db)
            - 10.0 * np.log10(n)
        )

    def sqnr_output_array(self, adc_bits, dot_product_length) -> np.ndarray:
        """Vectorized SQNR_y as a linear ratio."""
        return 10.0 ** (self.sqnr_output_db_array(adc_bits, dot_product_length) / 10.0)

    def total_snr_db_array(self, adc_bits, dot_product_length) -> np.ndarray:
        """Vectorized SNR_T in dB (Equation 2)."""
        total = _parallel_array(
            self.snr_pre_array(dot_product_length),
            self.sqnr_output_array(adc_bits, dot_product_length),
        )
        return _linear_to_db_array(total)

    def design_snr_db_array(self, adc_bits, dot_product_length) -> np.ndarray:
        """Vectorized design-dependent SNR in dB (analog + ADC terms only)."""
        design = _parallel_array(
            self.snr_analog_array(dot_product_length),
            self.sqnr_output_array(adc_bits, dot_product_length),
        )
        return _linear_to_db_array(design)

    def simplified_snr_db_array(self, adc_bits, local_arrays_per_column) -> np.ndarray:
        """Vectorized f_SNR of Equation 11."""
        adc, n = self._check_arrays(adc_bits, local_arrays_per_column)
        p = self.parameters
        constant = 10.0 * math.log10(p.k3 / p.unit_capacitance)
        return (
            6.0 * adc
            - 10.0 * np.log10(n)
            - constant
            + p.k4
        )

    # -- noise budget report ---------------------------------------------------

    def noise_budget(self, adc_bits: int, dot_product_length: int) -> dict:
        """Return every noise contribution (variances and dB SNRs) for reporting."""
        n = self._check_n(dot_product_length)
        return {
            "output_variance": self.workload.output_variance(n),
            "input_quantization_variance": self.input_quantization_variance(n),
            "analog_noise_variance": self.analog_noise_variance(n),
            "snr_analog_db": linear_to_db(self.snr_analog(n)),
            "sqnr_input_db": linear_to_db(self.sqnr_input(n)),
            "sqnr_output_db": self.sqnr_output_db(adc_bits, n),
            "snr_pre_db": linear_to_db(self.snr_pre(n)),
            "total_snr_db": self.total_snr_db(adc_bits, n),
            "design_snr_db": self.design_snr_db(adc_bits, n),
        }

    @staticmethod
    def _check_n(dot_product_length: int) -> int:
        if dot_product_length < 1:
            raise ModelError("dot product length must be at least 1")
        return dot_product_length


def _parallel(a: float, b: float) -> float:
    """Combine two SNRs as [1/a + 1/b]^-1 (Equations 2 and 3)."""
    if math.isinf(a):
        return b
    if math.isinf(b):
        return a
    if a <= 0 or b <= 0:
        raise ModelError("SNR terms must be positive")
    return 1.0 / (1.0 / a + 1.0 / b)


def _parallel_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_parallel`: elementwise [1/a + 1/b]^-1.

    Infinite terms pass the other operand through unchanged (matching the
    scalar early returns, which avoid the 1/(1/x) double rounding).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_inf = np.isinf(a)
    b_inf = np.isinf(b)
    finite = ~(a_inf | b_inf)
    if np.any(finite & ((a <= 0) | (b <= 0))):
        raise ModelError("SNR terms must be positive")
    safe_a = np.where(finite, a, 1.0)
    safe_b = np.where(finite, b, 1.0)
    combined = 1.0 / (1.0 / safe_a + 1.0 / safe_b)
    return np.where(a_inf, b, np.where(b_inf, a, combined))


def _linear_to_db_array(value: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.units.linear_to_db` with the same guard."""
    value = np.asarray(value, dtype=float)
    if value.size and np.any(value <= 0.0):
        raise ValueError("cannot convert non-positive ratio to dB")
    return 10.0 * np.log10(value)
