"""Area model (paper Equation 10).

The average area per bit cell is

``A = A_SRAM + A_LC / L + A_COMP / H + B_ADC * A_DFF / H``

where the local-array shared computing cell is amortised over its L bit
cells and the per-column comparator and SAR flip-flops are amortised over
the H cells of the column.  All areas are expressed in F^2 (squared feature
sizes) so results are technology-normalised the same way the paper reports
them; helpers convert to um^2 for a concrete technology.

The default constants are derived from the paper's own Figure-8 datapoints
(see :func:`repro.model.calibration.derive_area_parameters_from_figure8`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.arch.spec import ACIMDesignSpec
from repro.units import f2_to_um2


@dataclass(frozen=True)
class AreaParameters:
    """Cell-area constants of the area model, in F^2.

    Attributes:
        a_sram: A_SRAM, effective area of one 8T SRAM cell.
        a_local_compute: A_LC, area of the local-array shared computing cell
            (compute capacitor + group control switches).
        a_comparator: A_COMP, area of the dynamic comparator / sense amp.
        a_dff: A_DFF, area of one dynamic D flip-flop of the SAR logic.
        feature_size: technology feature size F in meters (for um^2 reports).
    """

    a_sram: float = 1611.67
    a_local_compute: float = 5050.67
    a_comparator: float = 29000.0
    a_dff: float = 5992.0
    feature_size: float = 28e-9

    def __post_init__(self) -> None:
        for attr in ("a_sram", "a_local_compute", "a_comparator", "a_dff"):
            if getattr(self, attr) <= 0:
                raise ModelError(f"{attr} must be positive")
        if self.feature_size <= 0:
            raise ModelError("feature size must be positive")


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-bit area decomposition for one design point (all values in F^2).

    Attributes:
        sram: A_SRAM contribution.
        local_compute: A_LC / L contribution.
        comparator: A_COMP / H contribution.
        sar_logic: B_ADC * A_DFF / H contribution.
        per_bit: total per-bit area A.
        total_f2: A * H * W, the whole-macro area in F^2.
        total_um2: whole-macro area in um^2 for the configured feature size.
    """

    sram: float
    local_compute: float
    comparator: float
    sar_logic: float
    per_bit: float
    total_f2: float
    total_um2: float


@dataclass(frozen=True)
class AreaArrays:
    """Vectorized Equation-10 decomposition: one array entry per design point.

    Attributes:
        sram: A_SRAM contribution (spec-independent scalar), in F^2.
        local_compute: A_LC / L contribution, per design point.
        comparator: A_COMP / H contribution, per design point.
        sar_logic: B_ADC * A_DFF / H contribution, per design point.
        per_bit: total per-bit area A, per design point.
        total_f2: whole-macro area A * H * W in F^2, per design point.
        total_um2: whole-macro area in um^2, per design point.
    """

    sram: float
    local_compute: np.ndarray
    comparator: np.ndarray
    sar_logic: np.ndarray
    per_bit: np.ndarray
    total_f2: np.ndarray
    total_um2: np.ndarray


class AreaModel:
    """Evaluates Equation 10 for design points."""

    def __init__(self, parameters: AreaParameters = AreaParameters()) -> None:
        self.parameters = parameters

    def breakdown(self, spec: ACIMDesignSpec) -> AreaBreakdown:
        """Full Equation-10 decomposition for ``spec``."""
        p = self.parameters
        sram = p.a_sram
        local_compute = p.a_local_compute / spec.local_array_size
        comparator = p.a_comparator / spec.height
        sar_logic = spec.adc_bits * p.a_dff / spec.height
        per_bit = sram + local_compute + comparator + sar_logic
        total_f2 = per_bit * spec.array_size
        return AreaBreakdown(
            sram=sram,
            local_compute=local_compute,
            comparator=comparator,
            sar_logic=sar_logic,
            per_bit=per_bit,
            total_f2=total_f2,
            total_um2=f2_to_um2(total_f2, p.feature_size),
        )

    def breakdown_arrays(self, batch) -> AreaArrays:
        """Vectorized Equation-10 decomposition of a :class:`SpecBatch`.

        Expressions mirror :meth:`breakdown` operation for operation, so a
        length-1 batch reproduces the scalar result bit for bit.
        """
        p = self.parameters
        sram = p.a_sram
        local_compute = p.a_local_compute / batch.local_array_size
        comparator = p.a_comparator / batch.height
        sar_logic = batch.adc_bits * p.a_dff / batch.height
        per_bit = sram + local_compute + comparator + sar_logic
        total_f2 = per_bit * batch.array_size
        # f2_to_um2 is elementwise-safe and shares the scalar path's exact
        # operation order, so the conversion cannot drift between paths.
        total_um2 = f2_to_um2(total_f2, p.feature_size)
        return AreaArrays(
            sram=sram,
            local_compute=local_compute,
            comparator=comparator,
            sar_logic=sar_logic,
            per_bit=per_bit,
            total_f2=total_f2,
            total_um2=total_um2,
        )

    def area_per_bit_f2(self, spec: ACIMDesignSpec) -> float:
        """Average area per bit in F^2 (Equation 10)."""
        return self.breakdown(spec).per_bit

    def total_area_um2(self, spec: ACIMDesignSpec) -> float:
        """Total macro area in um^2."""
        return self.breakdown(spec).total_um2

    def estimated_dimensions_um(self, spec: ACIMDesignSpec) -> tuple:
        """Rough (width, height) of the macro in um.

        The macro width scales with the number of columns W and the height
        with the column content; the product always equals the modelled
        total area.  This is an estimate used for floorplan seeding and
        reporting — the layout flow produces the real dimensions.
        """
        total_um2 = self.total_area_um2(spec)
        p = self.parameters
        f_um = p.feature_size / 1e-6
        # Column width: an 8T cell plus its share of the local compute cell.
        column_area_f2 = self.area_per_bit_f2(spec) * spec.height
        column_height_f = spec.height * math.sqrt(self.parameters.a_sram) * 1.35
        column_width_f = column_area_f2 / column_height_f
        width_um = column_width_f * f_um * spec.width
        height_um = total_um2 / width_um
        return (width_um, height_um)
