"""ACIM performance estimation model (paper section 3.2.1).

The model evaluates a design point :class:`~repro.arch.spec.ACIMDesignSpec`
on the four axes the paper optimises:

* **SNR** — Equations 2–6 (full model) and Equation 11 (the simplified form
  used as the optimisation objective f_SNR),
* **throughput** — Equation 7,
* **energy** — Equations 8–9,
* **area** — Equation 10.

:class:`~repro.model.estimator.ACIMEstimator` bundles everything into a
single object returning an :class:`~repro.model.estimator.ACIMMetrics`
record and the objective vector ``[-f_SNR, -f_T, f_E, f_A]`` consumed by the
design-space explorer.  :mod:`~repro.model.calibration` derives the model
constants from the paper's published Figure-8 datapoints and from the
behavioral simulator.

Every sub-model exposes both scalar formulas and vectorized NumPy kernels;
batches of design points travel as :class:`~repro.arch.batch.SpecBatch`
columns and come back as :class:`~repro.model.estimator.MetricsArrays`
metric columns (see ``docs/model.md``).
"""

from repro.model.notation import WorkloadStatistics
from repro.model.snr import SnrParameters, SnrModel
from repro.model.throughput import ThroughputArrays, ThroughputModel
from repro.model.energy import EnergyArrays, EnergyParameters, EnergyModel
from repro.model.area import AreaArrays, AreaParameters, AreaModel
from repro.model.estimator import (
    ACIMEstimator,
    ACIMMetrics,
    MetricsArrays,
    ModelParameters,
)
from repro.model.backannotate import BackAnnotationResult, BackAnnotator
from repro.model.calibration import (
    derive_area_parameters_from_figure8,
    fit_adc_energy_constants,
    fit_snr_constants,
)

__all__ = [
    "WorkloadStatistics",
    "SnrParameters",
    "SnrModel",
    "ThroughputArrays",
    "ThroughputModel",
    "EnergyArrays",
    "EnergyParameters",
    "EnergyModel",
    "AreaArrays",
    "AreaParameters",
    "AreaModel",
    "ACIMEstimator",
    "ACIMMetrics",
    "MetricsArrays",
    "ModelParameters",
    "BackAnnotationResult",
    "BackAnnotator",
    "derive_area_parameters_from_figure8",
    "fit_adc_energy_constants",
    "fit_snr_constants",
]
