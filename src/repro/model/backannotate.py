"""Back-annotation of the estimation model from extracted layouts.

The paper's constants (ADC energy k1/k2, the redistribution time constant
tau) come from post-layout simulation.  This module provides the analogous
refinement loop for the reproduction:

1. generate a layout for a design point,
2. extract the read-bitline (RBL) parasitics with
   :class:`repro.layout.extraction.ParasiticExtractor`,
3. derive a post-layout time constant (tau = R_RBL * (C_RBL + C_CDAC)) and
   a per-MAC wire-energy adder (C_RBL * VDD^2 amortised over the products
   of one conversion),
4. return a :class:`~repro.model.estimator.ModelParameters` copy with the
   refined timing and energy constants, plus a record of what changed.

The refined model lets users quantify how much the pre-layout estimates
drift once real wire lengths are known — typically a few percent for the
macro sizes the paper studies, which is what justifies using the analytic
model inside the optimisation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ModelError
from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingParameters
from repro.layout.extraction import ParasiticExtractor, ParasiticReport
from repro.model.energy import EnergyParameters
from repro.model.estimator import ACIMEstimator, ModelParameters


@dataclass(frozen=True)
class BackAnnotationResult:
    """Outcome of one back-annotation pass.

    Attributes:
        spec: the design point the layout was generated for.
        parasitics: the column-level extraction report.
        pre_layout: the model parameters used before back-annotation.
        post_layout: the refined model parameters.
        tau_pre / tau_post: redistribution time constants in seconds.
        wire_energy_per_mac: added switched-wire energy per MAC in joules.
        cycle_time_change: relative change of the cycle time (post/pre - 1).
        energy_change: relative change of the per-MAC energy (post/pre - 1).
    """

    spec: ACIMDesignSpec
    parasitics: ParasiticReport
    pre_layout: ModelParameters
    post_layout: ModelParameters
    tau_pre: float
    tau_post: float
    wire_energy_per_mac: float
    cycle_time_change: float
    energy_change: float


class BackAnnotator:
    """Refines model parameters from an extracted column layout."""

    def __init__(self, technology, parameters: Optional[ModelParameters] = None) -> None:
        self.technology = technology
        self.parameters = parameters or ModelParameters()
        self.extractor = ParasiticExtractor(technology)

    def annotate(
        self,
        spec: ACIMDesignSpec,
        macro_layout,
        rbl_net: str = "RBL",
    ) -> BackAnnotationResult:
        """Derive post-layout model parameters for ``spec``.

        Args:
            spec: the design point of the generated macro.
            macro_layout: the macro :class:`repro.layout.LayoutCell` produced
                by the layout generator (column routing must be enabled so
                the RBL wires exist).
            rbl_net: name of the column read bitline net.
        """
        spec.validate()
        column = self._find_column(macro_layout)
        report = self.extractor.extract(column, nets=None)
        if rbl_net not in report.nets:
            raise ModelError(
                f"net {rbl_net!r} not found in routed column {column.name!r}; "
                "generate the layout with route_column=True"
            )
        rbl = report.net(rbl_net)

        electrical = self.technology.electrical
        cdac_capacitance = spec.capacitor_units_per_column * electrical.unit_capacitance
        tau_pre = self.parameters.timing.time_constant
        tau_post = max(tau_pre, rbl.time_constant(load_capacitance=cdac_capacitance))

        # Switched wire energy: the RBL swings by up to VDD/2 every
        # conversion; amortise over the H/L MACs a conversion digitises.
        wire_energy_per_conversion = rbl.capacitance * (electrical.vdd / 2.0) ** 2
        wire_energy_per_mac = wire_energy_per_conversion / spec.local_arrays_per_column

        refined_timing = TimingParameters(
            compute_delay=self.parameters.timing.compute_delay,
            time_constant=tau_post,
            conversion_time_per_bit=self.parameters.timing.conversion_time_per_bit,
            setup_margin=self.parameters.timing.setup_margin,
        )
        refined_energy = EnergyParameters(
            e_compute=self.parameters.energy.e_compute + wire_energy_per_mac,
            e_control=self.parameters.energy.e_control,
            k1=self.parameters.energy.k1,
            k2=self.parameters.energy.k2,
            vdd=self.parameters.energy.vdd,
        )
        post_layout = replace(
            self.parameters, timing=refined_timing, energy=refined_energy
        )

        pre_metrics = ACIMEstimator(self.parameters).evaluate(spec)
        post_metrics = ACIMEstimator(post_layout).evaluate(spec)
        cycle_change = (
            (pre_metrics.macs_per_second / post_metrics.macs_per_second) - 1.0
        )
        energy_change = post_metrics.energy_per_mac / pre_metrics.energy_per_mac - 1.0

        return BackAnnotationResult(
            spec=spec,
            parasitics=report,
            pre_layout=self.parameters,
            post_layout=post_layout,
            tau_pre=tau_pre,
            tau_post=tau_post,
            wire_energy_per_mac=wire_energy_per_mac,
            cycle_time_change=cycle_change,
            energy_change=energy_change,
        )

    @staticmethod
    def _find_column(macro_layout):
        """Locate the routed column cell inside a generated macro layout."""
        for name, cell in macro_layout.collect_cells().items():
            if name.startswith("acim_column"):
                return cell
        raise ModelError(
            f"macro layout {macro_layout.name!r} contains no ACIM column cell"
        )
