"""Calibration of the estimation-model constants.

The paper obtains its model constants from the TSMC28 PDK and post-layout
simulation.  Neither is available here, so the constants are derived from
two sources instead:

1. **The paper's own published numbers.**  Figure 8 reports three fully
   specified 16 kb design points (H, L, throughput, F^2/bit, die size),
   which uniquely determine A_LC, A_SRAM and the combined per-column
   overhead A_COMP + 3*A_DFF of the area model
   (:func:`derive_area_parameters_from_figure8`), and the ~5 ns cycle time
   of the throughput model.

2. **The behavioral simulator.**  The simplified-SNR coefficients k3/k4 are
   fitted against the full Equations 2-6 (:func:`fit_snr_constants`), and
   the ADC energy coefficients k1/k2 against the behavioral CDAC + SAR-logic
   energy model (:func:`fit_adc_energy_constants`), replacing the paper's
   post-layout extraction.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.model.area import AreaParameters
from repro.model.notation import WorkloadStatistics
from repro.model.snr import SnrModel, SnrParameters


# ---------------------------------------------------------------------------
# Figure-8 reference datapoints (16 kb, B_ADC = 3, F = 28 nm)
# ---------------------------------------------------------------------------

#: The three layouts of paper Figure 8: (H, W, L, B_ADC) -> (TOPS, F^2/bit).
FIGURE8_REFERENCE: Dict[Tuple[int, int, int, int], Tuple[float, float]] = {
    (128, 128, 2, 3): (3.277, 4504.0),
    (128, 128, 8, 3): (0.813, 2610.0),
    (64, 256, 8, 3): (0.813, 2977.0),
}


def derive_area_parameters_from_figure8(
    comparator_fraction: float = 0.6173,
    feature_size: float = 28e-9,
) -> AreaParameters:
    """Solve the Equation-10 constants from the Figure-8 datapoints.

    The three published (L, H, F^2/bit) triples give three linear equations
    in A_SRAM, A_LC and the lumped per-column term (A_COMP + 3 * A_DFF);
    splitting the lumped term between comparator and flip-flops needs one
    extra assumption, supplied by ``comparator_fraction`` (the comparator's
    share of the lumped overhead — a dynamic comparator plus sense amplifier
    is substantially larger than a single dynamic DFF).

    Args:
        comparator_fraction: fraction of (A_COMP + 3*A_DFF) assigned to the
            comparator.  The default splits the lumped 46 976 F^2 into
            A_COMP = 29 000 F^2 and A_DFF = 5 992 F^2.
        feature_size: feature size used for um^2 reporting.

    Returns:
        An :class:`~repro.model.area.AreaParameters` reproducing Figure 8.
    """
    if not 0.0 < comparator_fraction < 1.0:
        raise CalibrationError("comparator fraction must be in (0, 1)")
    points = list(FIGURE8_REFERENCE.items())
    if len(points) < 3:
        raise CalibrationError("need at least three reference points")
    # Rows: [1, 1/L, (1 + B*a_dff_share)/H] is nonlinear in the split, so we
    # solve for the lumped column overhead first using B_ADC = 3 throughout.
    matrix = []
    targets = []
    for (height, _width, local, adc_bits), (_tops, f2_per_bit) in points:
        if adc_bits != 3:
            raise CalibrationError("Figure-8 reference points are all B_ADC = 3")
        matrix.append([1.0, 1.0 / local, 1.0 / height])
        targets.append(f2_per_bit)
    solution, residuals, rank, _ = np.linalg.lstsq(
        np.asarray(matrix), np.asarray(targets), rcond=None
    )
    if rank < 3:
        raise CalibrationError("Figure-8 system is rank deficient")
    a_sram, a_lc, lumped = (float(v) for v in solution)
    if min(a_sram, a_lc, lumped) <= 0:
        raise CalibrationError(
            f"non-physical calibration result: {a_sram}, {a_lc}, {lumped}"
        )
    a_comp = lumped * comparator_fraction
    a_dff = lumped * (1.0 - comparator_fraction) / 3.0
    return AreaParameters(
        a_sram=a_sram,
        a_local_compute=a_lc,
        a_comparator=a_comp,
        a_dff=a_dff,
        feature_size=feature_size,
    )


# ---------------------------------------------------------------------------
# Simplified-SNR constants (Equation 11)
# ---------------------------------------------------------------------------


def fit_snr_constants(
    snr_parameters: SnrParameters = SnrParameters(),
    workload: WorkloadStatistics = WorkloadStatistics.binary(),
    adc_bits_range: Sequence[int] = tuple(range(1, 9)),
    local_arrays_range: Sequence[int] = (2, 4, 8, 16, 32, 64, 128, 256),
) -> Tuple[float, float, float]:
    """Fit the Equation-11 coefficients (k3, k4) against the full model.

    Equation 11 has the form ``6*B - 10*log10(N) + c`` where the constant
    ``c = -10*log10(k3/C_o) + k4`` absorbs the workload- and circuit-
    dependent terms.  The fit:

    * computes the full-model design SNR (analog noise + ADC quantization)
      over a grid of feasible (B_ADC, N) pairs,
    * solves for ``c`` in the least-squares sense,
    * assigns ``k4`` the data-distribution constant of Equation 6
      (``4.8 - zeta_x(dB) - zeta_w(dB)``) and folds the remainder into k3,
      preserving the Equation-11 factorisation.

    Returns:
        ``(k3, k4, rms_error_db)``.
    """
    model = SnrModel(snr_parameters, workload)
    residual_targets = []
    for adc_bits in adc_bits_range:
        for n in local_arrays_range:
            if n < 2 ** adc_bits:
                continue  # infeasible under H/L >= 2^B_ADC
            full_db = model.design_snr_db(adc_bits, n)
            base_db = 6.0 * adc_bits - 10.0 * math.log10(n)
            residual_targets.append((adc_bits, n, full_db - base_db))
    if not residual_targets:
        raise CalibrationError("no feasible (B_ADC, N) pairs in the fit grid")
    offsets = np.asarray([target for _, _, target in residual_targets])
    c = float(np.mean(offsets))
    k4 = 4.8 - workload.zeta_x_db - workload.zeta_w_db
    k3 = snr_parameters.unit_capacitance * 10.0 ** ((k4 - c) / 10.0)
    errors = offsets - c
    rms_error = float(np.sqrt(np.mean(errors ** 2)))
    return (k3, k4, rms_error)


# ---------------------------------------------------------------------------
# ADC energy constants (Equation 9)
# ---------------------------------------------------------------------------


def fit_adc_energy_constants(
    samples: Optional[Dict[int, float]] = None,
    vdd: float = 0.9,
    unit_capacitance: float = 1.0e-15,
) -> Tuple[float, float, float]:
    """Fit Equation 9's (k1, k2) to per-resolution ADC energy samples.

    Args:
        samples: mapping from B_ADC to measured conversion energy in joules.
            When omitted, samples are produced by the behavioral SAR ADC
            energy model (CDAC switching + comparator + SAR logic), which is
            the reproduction's substitute for post-layout simulation.
        vdd: supply voltage used in the fit.
        unit_capacitance: unit capacitance of the behavioral CDAC.

    Returns:
        ``(k1, k2, relative_rms_error)``.
    """
    if samples is None:
        from repro.sim.sar_adc import sar_adc_energy

        samples = {
            bits: sar_adc_energy(bits, unit_capacitance=unit_capacitance, vdd=vdd)
            for bits in range(2, 9)
        }
    if len(samples) < 2:
        raise CalibrationError("need at least two ADC energy samples")
    rows = []
    targets = []
    for bits, energy in sorted(samples.items()):
        if bits < 1 or energy <= 0:
            raise CalibrationError(f"invalid ADC energy sample ({bits}, {energy})")
        rows.append([bits + math.log2(vdd), (4.0 ** bits) * vdd ** 2])
        targets.append(energy)
    matrix = np.asarray(rows)
    target_vec = np.asarray(targets)
    solution, _residuals, rank, _ = np.linalg.lstsq(matrix, target_vec, rcond=None)
    if rank < 2:
        raise CalibrationError("ADC energy fit is rank deficient")
    k1, k2 = (float(max(v, 0.0)) for v in solution)
    predictions = matrix @ np.asarray([k1, k2])
    relative_rms = float(
        np.sqrt(np.mean(((predictions - target_vec) / target_vec) ** 2))
    )
    return (k1, k2, relative_rms)


def calibrate_cycle_time_from_figure8(
    timing_candidates: Optional[Iterable[float]] = None,
) -> float:
    """Back out the B_ADC = 3 cycle time implied by Figure 8's throughputs.

    Every Figure-8 point satisfies ``TOPS = 2 * (H/L) * W / cycle``, so the
    implied cycle time can be recovered per point; the calibration returns
    the mean, which the default :class:`repro.arch.timing.TimingParameters`
    reproduce to within a percent (~5 ns).
    """
    implied = []
    for (height, width, local, _bits), (tops, _area) in FIGURE8_REFERENCE.items():
        macs_per_cycle = (height // local) * width
        implied.append(2.0 * macs_per_cycle / (tops * 1e12))
    return float(np.mean(implied))
