"""The combined ACIM performance estimator and its objective vector.

:class:`ACIMEstimator` evaluates a design point on all four axes the paper
optimises and exposes the multi-objective vector

``F(H, W, L, B_ADC) = [-f_SNR, -f_T, f_E, f_A]``    (Equation 12)

used by the NSGA-II explorer (minimisation context: SNR and throughput are
negated).  The default constants are the calibrated values documented in
DESIGN.md; :class:`ModelParameters` lets applications override any subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingParameters
from repro.model.area import AreaModel, AreaParameters
from repro.model.energy import EnergyModel, EnergyParameters
from repro.model.notation import WorkloadStatistics
from repro.model.snr import SnrModel, SnrParameters
from repro.model.throughput import ThroughputModel


@dataclass(frozen=True)
class ModelParameters:
    """All constants of the estimation model in one bundle.

    Attributes:
        snr: SNR-model parameters (C_o, kappa, k3, k4, ...).
        energy: energy-model parameters (E_compute, E_control, k1, k2).
        area: area-model parameters (A_SRAM, A_LC, A_COMP, A_DFF).
        timing: timing parameters (t_com, tau, t_conv/bit).
        workload: workload statistics (defaults to 1b x 1b, as in the paper).
        use_simplified_snr: when True the explorer objective uses the
            simplified Equation 11; otherwise the full Equations 2-6.
    """

    snr: SnrParameters = field(default_factory=SnrParameters)
    energy: EnergyParameters = field(default_factory=EnergyParameters)
    area: AreaParameters = field(default_factory=AreaParameters)
    timing: TimingParameters = field(default_factory=TimingParameters)
    workload: WorkloadStatistics = field(default_factory=WorkloadStatistics.binary)
    use_simplified_snr: bool = True

    @classmethod
    def calibrated(cls, **overrides) -> "ModelParameters":
        """Return the default parameter set with the fitted k3/k4 constants.

        The simplified-SNR coefficients are fitted against the full model on
        construction so Equation 11 tracks Equations 2-6 for the default
        workload; everything else uses the DESIGN.md calibration constants.
        """
        from repro.model.calibration import fit_snr_constants

        base = cls(**overrides)
        k3, k4, _residual = fit_snr_constants(
            snr_parameters=base.snr, workload=base.workload
        )
        return replace(base, snr=replace(base.snr, k3=k3, k4=k4))


@dataclass(frozen=True)
class ACIMMetrics:
    """Evaluation result of one design point.

    Attributes:
        spec: the evaluated design point.
        snr_db: SNR in dB (simplified Equation 11 when the estimator is
            configured that way, otherwise the full-model design SNR).
        snr_total_db: full-model total SNR including workload quantization.
        tops: throughput in TOPS (2 ops/MAC).
        macs_per_second: throughput in MAC/s (the paper's T).
        energy_per_mac: average energy per 1-bit MAC in joules.
        tops_per_watt: energy efficiency in TOPS/W.
        area_f2_per_bit: average area per bit in F^2.
        total_area_um2: whole-macro area in um^2.
    """

    spec: ACIMDesignSpec
    snr_db: float
    snr_total_db: float
    tops: float
    macs_per_second: float
    energy_per_mac: float
    tops_per_watt: float
    area_f2_per_bit: float
    total_area_um2: float

    def objectives(self) -> Tuple[float, float, float, float]:
        """The Equation-12 minimisation vector ``[-f_SNR, -f_T, f_E, f_A]``."""
        return (-self.snr_db, -self.tops, self.energy_per_mac, self.area_f2_per_bit)

    def as_dict(self) -> dict:
        """Flat dictionary (useful for CSV export and reports)."""
        return {
            "H": self.spec.height,
            "W": self.spec.width,
            "L": self.spec.local_array_size,
            "B_ADC": self.spec.adc_bits,
            "snr_db": self.snr_db,
            "snr_total_db": self.snr_total_db,
            "tops": self.tops,
            "macs_per_second": self.macs_per_second,
            "energy_per_mac_fJ": self.energy_per_mac * 1e15,
            "tops_per_watt": self.tops_per_watt,
            "area_f2_per_bit": self.area_f2_per_bit,
            "total_area_um2": self.total_area_um2,
        }


class ACIMEstimator:
    """Evaluates design points on SNR, throughput, energy and area."""

    def __init__(self, parameters: Optional[ModelParameters] = None) -> None:
        self.parameters = parameters or ModelParameters()
        self._snr = SnrModel(self.parameters.snr, self.parameters.workload)
        self._throughput = ThroughputModel(self.parameters.timing)
        self._energy = EnergyModel(self.parameters.energy)
        self._area = AreaModel(self.parameters.area)

    # -- individual models ---------------------------------------------------

    @property
    def snr_model(self) -> SnrModel:
        """The underlying SNR model."""
        return self._snr

    @property
    def throughput_model(self) -> ThroughputModel:
        """The underlying throughput model."""
        return self._throughput

    @property
    def energy_model(self) -> EnergyModel:
        """The underlying energy model."""
        return self._energy

    @property
    def area_model(self) -> AreaModel:
        """The underlying area model."""
        return self._area

    # -- evaluation -----------------------------------------------------------

    def snr_db(self, spec: ACIMDesignSpec) -> float:
        """The f_SNR objective in dB for ``spec``."""
        n = spec.local_arrays_per_column
        if self.parameters.use_simplified_snr:
            return self._snr.simplified_snr_db(spec.adc_bits, n)
        return self._snr.design_snr_db(spec.adc_bits, n)

    def evaluate(self, spec: ACIMDesignSpec) -> ACIMMetrics:
        """Evaluate ``spec`` on every axis and return the metrics record."""
        return self.evaluate_batch([spec])[0]

    def evaluate_batch(self, specs: Sequence[ACIMDesignSpec]) -> List[ACIMMetrics]:
        """Evaluate many specs at once, returning metrics in input order.

        The spec-independent setup — model/method lookups, the choice of the
        SNR objective — is hoisted out of the per-spec loop, and duplicate
        specs in the batch are evaluated once.  This is the hot path the
        :class:`~repro.engine.engine.EvaluationEngine` drives for population
        batches and exhaustive grids.
        """
        snr_model = self._snr
        snr_objective = (
            snr_model.simplified_snr_db
            if self.parameters.use_simplified_snr
            else snr_model.design_snr_db
        )
        total_snr = snr_model.total_snr_db
        throughput_breakdown = self._throughput.breakdown
        energy_breakdown = self._energy.breakdown
        area_breakdown = self._area.breakdown

        unique: Dict[ACIMDesignSpec, ACIMMetrics] = {}
        results: List[ACIMMetrics] = []
        for spec in specs:
            metrics = unique.get(spec)
            if metrics is None:
                spec.validate()
                n = spec.local_arrays_per_column
                throughput = throughput_breakdown(spec)
                energy = energy_breakdown(spec)
                area = area_breakdown(spec)
                metrics = ACIMMetrics(
                    spec=spec,
                    snr_db=snr_objective(spec.adc_bits, n),
                    snr_total_db=total_snr(spec.adc_bits, n),
                    tops=throughput.tops,
                    macs_per_second=throughput.macs_per_second,
                    energy_per_mac=energy.total_per_mac,
                    tops_per_watt=energy.tops_per_watt,
                    area_f2_per_bit=area.per_bit,
                    total_area_um2=area.total_um2,
                )
                unique[spec] = metrics
            results.append(metrics)
        return results

    def objectives(self, spec: ACIMDesignSpec) -> Tuple[float, float, float, float]:
        """The Equation-12 objective vector for ``spec``."""
        return self.evaluate(spec).objectives()
