"""The combined ACIM performance estimator and its objective vector.

:class:`ACIMEstimator` evaluates a design point on all four axes the paper
optimises and exposes the multi-objective vector

``F(H, W, L, B_ADC) = [-f_SNR, -f_T, f_E, f_A]``    (Equation 12)

used by the NSGA-II explorer (minimisation context: SNR and throughput are
negated).  The default constants are the calibrated values documented in
DESIGN.md; :class:`ModelParameters` lets applications override any subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.batch import SpecBatch
from repro.arch.spec import ACIMDesignSpec
from repro.arch.timing import TimingParameters
from repro.model.area import AreaModel, AreaParameters
from repro.model.energy import EnergyModel, EnergyParameters
from repro.model.notation import WorkloadStatistics
from repro.model.snr import SnrModel, SnrParameters
from repro.model.throughput import ThroughputModel


@dataclass(frozen=True)
class ModelParameters:
    """All constants of the estimation model in one bundle.

    Attributes:
        snr: SNR-model parameters (C_o, kappa, k3, k4, ...).
        energy: energy-model parameters (E_compute, E_control, k1, k2).
        area: area-model parameters (A_SRAM, A_LC, A_COMP, A_DFF).
        timing: timing parameters (t_com, tau, t_conv/bit).
        workload: workload statistics (defaults to 1b x 1b, as in the paper).
        use_simplified_snr: when True the explorer objective uses the
            simplified Equation 11; otherwise the full Equations 2-6.
    """

    snr: SnrParameters = field(default_factory=SnrParameters)
    energy: EnergyParameters = field(default_factory=EnergyParameters)
    area: AreaParameters = field(default_factory=AreaParameters)
    timing: TimingParameters = field(default_factory=TimingParameters)
    workload: WorkloadStatistics = field(default_factory=WorkloadStatistics.binary)
    use_simplified_snr: bool = True

    @classmethod
    def calibrated(cls, **overrides) -> "ModelParameters":
        """Return the default parameter set with the fitted k3/k4 constants.

        The simplified-SNR coefficients are fitted against the full model on
        construction so Equation 11 tracks Equations 2-6 for the default
        workload; everything else uses the DESIGN.md calibration constants.
        """
        from repro.model.calibration import fit_snr_constants

        base = cls(**overrides)
        k3, k4, _residual = fit_snr_constants(
            snr_parameters=base.snr, workload=base.workload
        )
        return replace(base, snr=replace(base.snr, k3=k3, k4=k4))


@dataclass(frozen=True)
class ACIMMetrics:
    """Evaluation result of one design point.

    Attributes:
        spec: the evaluated design point.
        snr_db: SNR in dB (simplified Equation 11 when the estimator is
            configured that way, otherwise the full-model design SNR).
        snr_total_db: full-model total SNR including workload quantization.
        tops: throughput in TOPS (2 ops/MAC).
        macs_per_second: throughput in MAC/s (the paper's T).
        energy_per_mac: average energy per 1-bit MAC in joules.
        tops_per_watt: energy efficiency in TOPS/W.
        area_f2_per_bit: average area per bit in F^2.
        total_area_um2: whole-macro area in um^2.
    """

    spec: ACIMDesignSpec
    snr_db: float
    snr_total_db: float
    tops: float
    macs_per_second: float
    energy_per_mac: float
    tops_per_watt: float
    area_f2_per_bit: float
    total_area_um2: float

    def objectives(self) -> Tuple[float, float, float, float]:
        """The Equation-12 minimisation vector ``[-f_SNR, -f_T, f_E, f_A]``."""
        return (-self.snr_db, -self.tops, self.energy_per_mac, self.area_f2_per_bit)

    def as_dict(self) -> dict:
        """Flat dictionary (useful for CSV export and reports)."""
        return {
            "H": self.spec.height,
            "W": self.spec.width,
            "L": self.spec.local_array_size,
            "B_ADC": self.spec.adc_bits,
            "snr_db": self.snr_db,
            "snr_total_db": self.snr_total_db,
            "tops": self.tops,
            "macs_per_second": self.macs_per_second,
            "energy_per_mac_fJ": self.energy_per_mac * 1e15,
            "tops_per_watt": self.tops_per_watt,
            "area_f2_per_bit": self.area_f2_per_bit,
            "total_area_um2": self.total_area_um2,
        }


#: The eight metric fields of :class:`ACIMMetrics` (everything but the
#: spec), in record order — the single source the parity suite and the
#: vectorized-model benchmark iterate over.
METRIC_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(ACIMMetrics) if f.name != "spec"
)


@dataclass(frozen=True)
class MetricsArrays:
    """Structure-of-arrays evaluation result of a :class:`SpecBatch`.

    One NumPy column per metric, aligned with the batch — the raw output of
    the vectorized model kernels before (optional) materialisation into
    per-spec :class:`ACIMMetrics` records.

    Attributes:
        batch: the evaluated design points.
        snr_db: f_SNR objective per design point, in dB.
        snr_total_db: full-model total SNR per design point, in dB.
        tops: throughput in TOPS.
        macs_per_second: throughput in MAC/s.
        energy_per_mac: energy per 1-bit MAC in joules.
        tops_per_watt: energy efficiency in TOPS/W.
        area_f2_per_bit: per-bit area in F^2.
        total_area_um2: whole-macro area in um^2.
    """

    batch: SpecBatch
    snr_db: np.ndarray
    snr_total_db: np.ndarray
    tops: np.ndarray
    macs_per_second: np.ndarray
    energy_per_mac: np.ndarray
    tops_per_watt: np.ndarray
    area_f2_per_bit: np.ndarray
    total_area_um2: np.ndarray

    def __len__(self) -> int:
        return len(self.batch)

    def objectives_array(self) -> np.ndarray:
        """The Equation-12 minimisation vectors as an (N, 4) array."""
        return np.column_stack(
            (-self.snr_db, -self.tops, self.energy_per_mac, self.area_f2_per_bit)
        )

    def to_metrics(
        self, specs: Optional[Sequence[ACIMDesignSpec]] = None
    ) -> List[ACIMMetrics]:
        """Materialise per-spec :class:`ACIMMetrics` records, in batch order.

        Args:
            specs: pre-built spec objects aligned with the batch; when
                omitted they are reconstructed from the batch columns.
        """
        if specs is None:
            specs = self.batch.to_specs()
        return [
            ACIMMetrics(*row)
            for row in zip(
                specs,
                self.snr_db.tolist(),
                self.snr_total_db.tolist(),
                self.tops.tolist(),
                self.macs_per_second.tolist(),
                self.energy_per_mac.tolist(),
                self.tops_per_watt.tolist(),
                self.area_f2_per_bit.tolist(),
                self.total_area_um2.tolist(),
            )
        ]

    def metrics_at(self, index: int) -> ACIMMetrics:
        """One per-spec metrics record."""
        return ACIMMetrics(
            spec=self.batch.spec_at(index),
            snr_db=float(self.snr_db[index]),
            snr_total_db=float(self.snr_total_db[index]),
            tops=float(self.tops[index]),
            macs_per_second=float(self.macs_per_second[index]),
            energy_per_mac=float(self.energy_per_mac[index]),
            tops_per_watt=float(self.tops_per_watt[index]),
            area_f2_per_bit=float(self.area_f2_per_bit[index]),
            total_area_um2=float(self.total_area_um2[index]),
        )


class ACIMEstimator:
    """Evaluates design points on SNR, throughput, energy and area.

    The batch path (:meth:`evaluate_batch` / :meth:`evaluate_arrays`) runs
    the vectorized NumPy kernels of the four sub-models: a batch of N
    design points costs a handful of array kernel calls instead of N
    Python model traversals.  The scalar-formula implementation is retained
    as the *reference* path (:meth:`evaluate_reference` /
    :meth:`evaluate_batch_reference`): the parity suite asserts the two
    agree within 1e-12 relative on every metric, and the benchmark harness
    uses it as the scalar-loop baseline.

    Args:
        parameters: model constants; defaults to the stock bundle.
        kernel: ``"vectorized"`` (default) routes batches through the NumPy
            kernels; ``"reference"`` forces the scalar loop everywhere
            (regression/verification use only).
    """

    def __init__(
        self,
        parameters: Optional[ModelParameters] = None,
        kernel: str = "vectorized",
    ) -> None:
        if kernel not in ("vectorized", "reference"):
            raise ValueError(f"unknown estimator kernel {kernel!r}")
        self.parameters = parameters or ModelParameters()
        self.kernel = kernel
        self._snr = SnrModel(self.parameters.snr, self.parameters.workload)
        self._throughput = ThroughputModel(self.parameters.timing)
        self._energy = EnergyModel(self.parameters.energy)
        self._area = AreaModel(self.parameters.area)

    # -- individual models ---------------------------------------------------

    @property
    def snr_model(self) -> SnrModel:
        """The underlying SNR model."""
        return self._snr

    @property
    def throughput_model(self) -> ThroughputModel:
        """The underlying throughput model."""
        return self._throughput

    @property
    def energy_model(self) -> EnergyModel:
        """The underlying energy model."""
        return self._energy

    @property
    def area_model(self) -> AreaModel:
        """The underlying area model."""
        return self._area

    # -- evaluation -----------------------------------------------------------

    def snr_db(self, spec: ACIMDesignSpec) -> float:
        """The f_SNR objective in dB for ``spec``."""
        n = spec.local_arrays_per_column
        if self.parameters.use_simplified_snr:
            return self._snr.simplified_snr_db(spec.adc_bits, n)
        return self._snr.design_snr_db(spec.adc_bits, n)

    def evaluate(self, spec: ACIMDesignSpec) -> ACIMMetrics:
        """Evaluate one spec on every axis and return the metrics record.

        This is a true scalar fast path: plain-``math`` model formulas with
        no batch assembly, dedup bookkeeping or array round-trips.  It
        agrees with the vectorized batch path within the 1e-12 relative
        parity bound (bit-identically on the Equation-12 objectives over
        the power-of-two design space).
        """
        spec.validate()
        n = spec.local_arrays_per_column
        snr_model = self._snr
        snr_objective = (
            snr_model.simplified_snr_db
            if self.parameters.use_simplified_snr
            else snr_model.design_snr_db
        )
        throughput = self._throughput.breakdown(spec)
        energy = self._energy.breakdown(spec)
        area = self._area.breakdown(spec)
        return ACIMMetrics(
            spec=spec,
            snr_db=snr_objective(spec.adc_bits, n),
            snr_total_db=snr_model.total_snr_db(spec.adc_bits, n),
            tops=throughput.tops,
            macs_per_second=throughput.macs_per_second,
            energy_per_mac=energy.total_per_mac,
            tops_per_watt=energy.tops_per_watt,
            area_f2_per_bit=area.per_bit,
            total_area_um2=area.total_um2,
        )

    def evaluate_arrays(
        self, batch: SpecBatch, validate: bool = True
    ) -> MetricsArrays:
        """Evaluate a :class:`SpecBatch` through the vectorized kernels.

        Returns the structure-of-arrays result: one metric column per axis,
        aligned with the batch.  This is the innermost hot path — a batch
        of N design points costs a handful of NumPy kernel calls.
        """
        if validate:
            batch.validate()
        n = batch.local_arrays_per_column
        adc = batch.adc_bits
        snr_model = self._snr
        if self.parameters.use_simplified_snr:
            snr_db = snr_model.simplified_snr_db_array(adc, n)
        else:
            snr_db = snr_model.design_snr_db_array(adc, n)
        throughput = self._throughput.breakdown_arrays(batch)
        energy = self._energy.breakdown_arrays(batch)
        area = self._area.breakdown_arrays(batch)
        return MetricsArrays(
            batch=batch,
            snr_db=snr_db,
            snr_total_db=snr_model.total_snr_db_array(adc, n),
            tops=throughput.tops,
            macs_per_second=throughput.macs_per_second,
            energy_per_mac=energy.total_per_mac,
            tops_per_watt=energy.tops_per_watt,
            area_f2_per_bit=area.per_bit,
            total_area_um2=area.total_um2,
        )

    def evaluate_batch(
        self, specs: Union[SpecBatch, Sequence[ACIMDesignSpec]]
    ) -> List[ACIMMetrics]:
        """Evaluate many specs at once, returning metrics in input order.

        Accepts either a sequence of scalar specs or a :class:`SpecBatch`
        (the engine submits batches; grid consumers build them directly).
        The whole batch is validated and evaluated through the vectorized
        array kernels — duplicates simply ride along, their marginal cost
        being one extra array row.  This is the hot path the
        :class:`~repro.engine.engine.EvaluationEngine` drives for
        population batches and exhaustive grids.
        """
        if self.kernel == "reference":
            return self.evaluate_batch_reference(specs)
        if isinstance(specs, SpecBatch):
            batch, spec_objects = specs, None
        else:
            spec_objects = list(specs)
            batch = SpecBatch.from_specs(spec_objects)
        return self.evaluate_arrays(batch).to_metrics(spec_objects)

    # -- scalar reference path -------------------------------------------------

    def evaluate_reference(self, spec: ACIMDesignSpec) -> ACIMMetrics:
        """Scalar-formula reference evaluation of one spec (parity baseline)."""
        return self.evaluate_batch_reference([spec])[0]

    def evaluate_batch_reference(
        self, specs: Union[SpecBatch, Sequence[ACIMDesignSpec]]
    ) -> List[ACIMMetrics]:
        """The pre-vectorization scalar loop, retained as parity reference.

        Evaluates every spec through the plain-``math`` sub-models with the
        spec-independent lookups hoisted and duplicates deduplicated — the
        baseline the benchmark harness and the 1e-12 parity suite compare
        the array kernels against.
        """
        if isinstance(specs, SpecBatch):
            specs = specs.to_specs()
        snr_model = self._snr
        snr_objective = (
            snr_model.simplified_snr_db
            if self.parameters.use_simplified_snr
            else snr_model.design_snr_db
        )
        total_snr = snr_model.total_snr_db
        throughput_breakdown = self._throughput.breakdown
        energy_breakdown = self._energy.breakdown
        area_breakdown = self._area.breakdown

        unique: Dict[ACIMDesignSpec, ACIMMetrics] = {}
        results: List[ACIMMetrics] = []
        for spec in specs:
            metrics = unique.get(spec)
            if metrics is None:
                spec.validate()
                n = spec.local_arrays_per_column
                throughput = throughput_breakdown(spec)
                energy = energy_breakdown(spec)
                area = area_breakdown(spec)
                metrics = ACIMMetrics(
                    spec=spec,
                    snr_db=snr_objective(spec.adc_bits, n),
                    snr_total_db=total_snr(spec.adc_bits, n),
                    tops=throughput.tops,
                    macs_per_second=throughput.macs_per_second,
                    energy_per_mac=energy.total_per_mac,
                    tops_per_watt=energy.tops_per_watt,
                    area_f2_per_bit=area.per_bit,
                    total_area_um2=area.total_um2,
                )
                unique[spec] = metrics
            results.append(metrics)
        return results

    def objectives(self, spec: ACIMDesignSpec) -> Tuple[float, float, float, float]:
        """The Equation-12 objective vector for ``spec``."""
        return self.evaluate(spec).objectives()
