"""Structure-of-arrays batches of ACIM design points.

:class:`SpecBatch` is the array-oriented representation of many
``(H, W, L, B_ADC)`` design points at once: four parallel NumPy integer
columns instead of N :class:`~repro.arch.spec.ACIMDesignSpec` objects.  It
is the currency of the vectorized evaluation core — the model kernels in
:mod:`repro.model` take a batch and return one metric *array* per axis, so
evaluating N design points costs a handful of NumPy kernel calls rather
than N Python object traversals.

The batch mirrors the scalar spec API wherever that makes sense: derived
columns (``array_size``, ``local_arrays_per_column``), the Equation-12
feasibility rules (as boolean masks), and conversions in both directions
(``from_specs`` / ``to_specs``).  Grid constructors build whole design
spaces directly as arrays — meshgrid-style cross products filtered by the
vectorized feasibility mask — which is how the exhaustive baseline and the
sensitivity analyzer enumerate their spaces without intermediate spec
lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SpecificationError
from repro.arch.spec import ACIMDesignSpec, valid_heights


def _column(values, name: str) -> np.ndarray:
    """Coerce one column to a contiguous 1-D int64 array."""
    array = np.ascontiguousarray(values, dtype=np.int64)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise SpecificationError(
            f"SpecBatch column {name!r} must be one-dimensional, "
            f"got shape {array.shape}"
        )
    return array


@dataclass(frozen=True)
class SpecBatch:
    """A batch of design points as four parallel integer columns.

    Attributes:
        height: array heights H, one per design point.
        width: array widths W.
        local_array_size: local array sizes L.
        adc_bits: ADC precisions B_ADC.
    """

    height: np.ndarray
    width: np.ndarray
    local_array_size: np.ndarray
    adc_bits: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "height", _column(self.height, "height"))
        object.__setattr__(self, "width", _column(self.width, "width"))
        object.__setattr__(
            self, "local_array_size",
            _column(self.local_array_size, "local_array_size"),
        )
        object.__setattr__(self, "adc_bits", _column(self.adc_bits, "adc_bits"))
        n = len(self.height)
        for name in ("width", "local_array_size", "adc_bits"):
            if len(getattr(self, name)) != n:
                raise SpecificationError(
                    f"SpecBatch columns disagree on length: height has {n} "
                    f"entries, {name} has {len(getattr(self, name))}"
                )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_specs(cls, specs: Sequence[ACIMDesignSpec]) -> "SpecBatch":
        """Build a batch from a sequence of scalar design specs."""
        return cls(
            height=[spec.height for spec in specs],
            width=[spec.width for spec in specs],
            local_array_size=[spec.local_array_size for spec in specs],
            adc_bits=[spec.adc_bits for spec in specs],
        )

    @classmethod
    def from_spec(cls, spec: ACIMDesignSpec) -> "SpecBatch":
        """A length-1 batch holding one design point."""
        return cls.from_specs([spec])

    @classmethod
    def from_columns(cls, columns: Sequence[np.ndarray]) -> "SpecBatch":
        """A batch over four existing ``(H, W, L, B_ADC)`` columns.

        The inverse of :meth:`columns`.  Contiguous int64 input columns —
        including views over ``multiprocessing.shared_memory`` buffers,
        which is how pool workers receive their work — are adopted
        *zero-copy*; anything else is coerced like any other construction.
        """
        height, width, local_array_size, adc_bits = columns
        return cls(
            height=height,
            width=width,
            local_array_size=local_array_size,
            adc_bits=adc_bits,
        )

    @classmethod
    def concat(cls, batches: Iterable["SpecBatch"]) -> "SpecBatch":
        """Concatenate several batches, preserving order."""
        batches = list(batches)
        if not batches:
            return cls(height=[], width=[], local_array_size=[], adc_bits=[])
        return cls(
            height=np.concatenate([b.height for b in batches]),
            width=np.concatenate([b.width for b in batches]),
            local_array_size=np.concatenate(
                [b.local_array_size for b in batches]
            ),
            adc_bits=np.concatenate([b.adc_bits for b in batches]),
        )

    @classmethod
    def from_product(
        cls,
        heights: Sequence[int],
        local_array_sizes: Sequence[int],
        adc_bits: Sequence[int],
        array_size: Optional[int] = None,
        feasible_only: bool = True,
    ) -> "SpecBatch":
        """Meshgrid-style cross product of heights x locals x ADC precisions.

        The product is laid out with heights outermost and ADC bits
        innermost — the same order :func:`repro.arch.spec.enumerate_design_space`
        iterates — and, when ``feasible_only`` is set, filtered down to the
        points satisfying the Equation-12 constraints.  Widths are derived
        as ``array_size // H`` when an array size is given (heights must
        divide it), otherwise every width is 1.
        """
        heights = np.asarray(list(heights), dtype=np.int64)
        locals_ = np.asarray(list(local_array_sizes), dtype=np.int64)
        bits = np.asarray(list(adc_bits), dtype=np.int64)
        n_l, n_b = len(locals_), len(bits)
        h = np.repeat(heights, n_l * n_b)
        l = np.tile(np.repeat(locals_, n_b), len(heights))
        b = np.tile(bits, len(heights) * n_l)
        if array_size is not None:
            if np.any(heights < 1):
                raise SpecificationError("heights must be positive")
            if np.any(array_size % heights != 0):
                raise SpecificationError(
                    f"every height must divide the array size {array_size}"
                )
            w = array_size // h
        else:
            w = np.ones_like(h)
        batch = cls(height=h, width=w, local_array_size=l, adc_bits=b)
        if feasible_only:
            batch = batch.compress(batch.feasible_mask(array_size))
        return batch

    @classmethod
    def enumerate(
        cls,
        array_size: int,
        local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
        max_adc_bits: int = 8,
        min_height: int = 2,
        max_height: Optional[int] = None,
        power_of_two_heights: bool = True,
    ) -> "SpecBatch":
        """Every feasible design point of one array size, as a batch.

        The vectorized counterpart of
        :func:`repro.arch.spec.enumerate_design_space` (which now delegates
        here): identical points in identical order, but built as a
        meshgrid-filtered array instead of a nested Python loop.
        """
        if max_adc_bits < 1:
            raise SpecificationError("max_adc_bits must be at least 1")
        upper = max_height or array_size
        heights = [
            h for h in valid_heights(array_size, power_of_two_heights)
            if min_height <= h <= upper
        ]
        return cls.from_product(
            heights,
            local_array_sizes,
            range(1, max_adc_bits + 1),
            array_size=array_size,
        )

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.height)

    def __getitem__(
        self, index: Union[int, slice, np.ndarray]
    ) -> Union[ACIMDesignSpec, "SpecBatch"]:
        """An int index yields a scalar spec; slices/arrays yield sub-batches."""
        if isinstance(index, (int, np.integer)):
            return self.spec_at(int(index))
        return SpecBatch(
            height=self.height[index],
            width=self.width[index],
            local_array_size=self.local_array_size[index],
            adc_bits=self.adc_bits[index],
        )

    def spec_at(self, index: int) -> ACIMDesignSpec:
        """The scalar design spec at one position."""
        return ACIMDesignSpec(
            int(self.height[index]),
            int(self.width[index]),
            int(self.local_array_size[index]),
            int(self.adc_bits[index]),
        )

    def take(self, indices) -> "SpecBatch":
        """Sub-batch at the given positions (NumPy fancy indexing)."""
        indices = np.asarray(indices)
        return self[indices]

    def compress(self, mask: np.ndarray) -> "SpecBatch":
        """Sub-batch of the rows where ``mask`` is True."""
        return self[np.asarray(mask, dtype=bool)]

    # -- conversions -----------------------------------------------------------

    def to_specs(self) -> List[ACIMDesignSpec]:
        """Materialise the batch as scalar design-spec objects."""
        return [
            ACIMDesignSpec(h, w, l, b)
            for h, w, l, b in zip(
                self.height.tolist(),
                self.width.tolist(),
                self.local_array_size.tolist(),
                self.adc_bits.tolist(),
            )
        ]

    def as_tuples(self) -> List[Tuple[int, int, int, int]]:
        """``(H, W, L, B_ADC)`` tuples, one per design point (cache keys)."""
        return list(zip(
            self.height.tolist(),
            self.width.tolist(),
            self.local_array_size.tolist(),
            self.adc_bits.tolist(),
        ))

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The four raw columns ``(H, W, L, B_ADC)`` (picklable payload)."""
        return (self.height, self.width, self.local_array_size, self.adc_bits)

    # -- derived columns -------------------------------------------------------

    @property
    def array_size(self) -> np.ndarray:
        """Total bit cells per design point, H * W."""
        return self.height * self.width

    @property
    def local_arrays_per_column(self) -> np.ndarray:
        """Local arrays (and compute capacitors) per column, H // L."""
        return self.height // self.local_array_size

    @property
    def dot_product_length(self) -> np.ndarray:
        """Accumulation length N of one analog dot product (H // L)."""
        return self.local_arrays_per_column

    # -- feasibility -----------------------------------------------------------

    def feasible_mask(self, array_size: Optional[int] = None) -> np.ndarray:
        """Boolean mask of the points satisfying every Equation-12 constraint.

        Mirrors :meth:`ACIMDesignSpec.constraint_violations`: positivity of
        all four parameters, ``L <= H``, ``L | H`` and ``H/L >= 2^B_ADC``,
        plus ``H * W == array_size`` when an array size is required.
        """
        h, w = self.height, self.width
        l, b = self.local_array_size, self.adc_bits
        mask = (h >= 1) & (w >= 1) & (l >= 1) & (b >= 1)
        mask &= l <= h
        # Guard the modulo/divide against non-positive L on already-invalid
        # rows; they are masked out regardless.
        safe_l = np.maximum(l, 1)
        divides = (h % safe_l) == 0
        mask &= divides
        mask &= np.where(divides, h // safe_l, 0) >= (1 << np.clip(b, 0, 62))
        if array_size is not None:
            mask &= (h * w) == array_size
        return mask

    def validate(self, array_size: Optional[int] = None) -> "SpecBatch":
        """Raise :class:`SpecificationError` on the first infeasible point."""
        mask = self.feasible_mask(array_size)
        if not mask.all():
            index = int(np.argmin(mask))
            # Delegate to the scalar validator for the canonical message.
            self.spec_at(index).validate(array_size)
            raise SpecificationError(  # pragma: no cover - defensive
                f"infeasible design spec at batch index {index}"
            )
        return self
