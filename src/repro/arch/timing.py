"""Operating states and the timing model of the synthesizable ACIM.

The architecture has two operating states (paper Figure 5 / section 3.1):

1. **MAC state** — the capacitors are reset to V_CM, then the read word
   lines assert and the multiply-accumulate happens; each compute capacitor
   top plate settles to VDD or VSS encoding the per-local-array product.
2. **ADC conversion state** — the top plates are reset to V_CM, the charge
   redistributes on the bottom plates (producing the analog accumulation
   V_x on the RBL), and the SAR logic runs ``B_ADC`` comparison rounds.

The timing model implements the paper's Equation-7 decomposition of a cycle
into compute delay, ADC setup time (``t_set > 0.69 * tau * B_ADC``) and
per-bit conversion time, and generates the event sequence of Figure 5 for
inspection and testing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ModelError
from repro.arch.spec import ACIMDesignSpec


class OperatingState(enum.Enum):
    """The two operating states of the synthesizable ACIM."""

    MAC = "mac"
    ADC_CONVERSION = "adc_conversion"


@dataclass(frozen=True)
class TimingParameters:
    """Timing constants of the architecture (calibrated in repro.model).

    Attributes:
        compute_delay: t_com, the MAC phase delay in seconds (much smaller
            than the ADC delay in the paper).
        time_constant: tau, the RC time constant of the redistribution
            network in seconds; setup time must exceed 0.69 * tau * B_ADC.
        conversion_time_per_bit: t_conv/bit, one SAR comparison round in
            seconds.
        setup_margin: multiplicative margin (> 1) applied on top of the
            minimum setup time.
    """

    compute_delay: float = 1.0e-9
    time_constant: float = 0.8e-9
    conversion_time_per_bit: float = 0.781e-9
    setup_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_delay <= 0 or self.time_constant <= 0:
            raise ModelError("timing parameters must be positive")
        if self.conversion_time_per_bit <= 0:
            raise ModelError("conversion time per bit must be positive")
        if self.setup_margin < 1.0:
            raise ModelError("setup margin must be >= 1")

    # -- vectorized Equation-7 terms ---------------------------------------
    #
    # Array kernels over a column of B_ADC values.  The expressions mirror
    # the scalar :class:`TimingModel` properties operation for operation so
    # a length-1 array reproduces the scalar result bit for bit.

    def setup_time_array(self, adc_bits):
        """t_set for an array of ADC precisions (vectorized)."""
        return (0.69 * self.time_constant * adc_bits) * self.setup_margin

    def conversion_time_array(self, adc_bits):
        """t_conv = t_conv/bit * B_ADC for an array of ADC precisions."""
        return self.conversion_time_per_bit * adc_bits

    def cycle_time_array(self, adc_bits):
        """Full cycle time t_com + t_set + t_conv, vectorized."""
        return (
            self.compute_delay + self.setup_time_array(adc_bits)
        ) + self.conversion_time_array(adc_bits)


@dataclass(frozen=True)
class TimingEvent:
    """One edge of the Figure-5 timing diagram.

    Attributes:
        time: event time in seconds from the start of the cycle.
        state: operating state during which the event occurs.
        signal: signal name (RWL, RST, PCH, COMP, ...).
        description: what happens at this event.
    """

    time: float
    state: OperatingState
    signal: str
    description: str


class TimingModel:
    """Per-cycle timing of one MAC + conversion cycle (paper Eq. 7 terms)."""

    def __init__(self, spec: ACIMDesignSpec, parameters: TimingParameters = TimingParameters()) -> None:
        spec.validate()
        self.spec = spec
        self.parameters = parameters

    # -- Equation 7 terms -------------------------------------------------

    @property
    def compute_time(self) -> float:
        """t_com: duration of the MAC state in seconds."""
        return self.parameters.compute_delay

    @property
    def minimum_setup_time(self) -> float:
        """The 0.69 * tau * B_ADC lower bound on the ADC setup time."""
        return 0.69 * self.parameters.time_constant * self.spec.adc_bits

    @property
    def setup_time(self) -> float:
        """t_set: charge-redistribution settling time in seconds."""
        return self.minimum_setup_time * self.parameters.setup_margin

    @property
    def conversion_time(self) -> float:
        """t_conv = t_conv/bit * B_ADC in seconds."""
        return self.parameters.conversion_time_per_bit * self.spec.adc_bits

    @property
    def cycle_time(self) -> float:
        """Full cycle duration t_com + t_set + t_conv in seconds."""
        return self.compute_time + self.setup_time + self.conversion_time

    def macs_per_cycle(self) -> int:
        """MAC operations completed per cycle: (H / L) * W.

        Every column performs an H/L-long dot product in parallel.
        """
        return self.spec.local_arrays_per_column * self.spec.width

    # -- event sequence -----------------------------------------------------

    def events(self) -> List[TimingEvent]:
        """Generate the Figure-5 event sequence for one full cycle."""
        events: List[TimingEvent] = []
        t = 0.0
        events.append(TimingEvent(t, OperatingState.MAC, "RST",
                                  "reset both capacitor plates to VCM"))
        events.append(TimingEvent(t, OperatingState.MAC, "RWL",
                                  "assert read word line, start MAC"))
        t += self.compute_time
        events.append(TimingEvent(t, OperatingState.MAC, "MOUT",
                                  "compute finished; top plates at VDD/VSS"))
        events.append(TimingEvent(t, OperatingState.ADC_CONVERSION, "RST",
                                  "reset top plates to VCM, start charge redistribution"))
        t += self.setup_time
        events.append(TimingEvent(t, OperatingState.ADC_CONVERSION, "RBL",
                                  "charge redistribution complete; Vx sampled on RBL"))
        events.append(TimingEvent(t, OperatingState.ADC_CONVERSION, "SW",
                                  "open CMOS switch to isolate redundant capacitance"))
        for bit in range(self.spec.adc_bits):
            t += self.parameters.conversion_time_per_bit
            events.append(TimingEvent(
                t, OperatingState.ADC_CONVERSION, f"COMP[{bit}]",
                f"comparison {bit + 1} finished; P[{bit}]/N[{bit}] latched",
            ))
        return events

    def state_durations(self) -> dict:
        """Duration of each operating state in seconds."""
        return {
            OperatingState.MAC: self.compute_time,
            OperatingState.ADC_CONVERSION: self.setup_time + self.conversion_time,
        }
