"""The in-memory compute-model taxonomy of the paper's Figure 2.

Three analog compute models are used by published ACIMs:

* **QS** (charge summing) — results are formed by summing charge driven onto
  a shared node from per-cell capacitors.
* **IS** (current summing) — results are formed by summing cell currents on
  a bitline and sensing the total current.
* **QR** (charge redistribution) — results are formed by redistributing
  charge among per-group capacitors, which doubles as the CDAC of a SAR ADC.

EasyACIM selects QR for robustness (charge domain, PVT-insensitive) and
extensibility (the compute capacitors are reusable as SAR CDAC capacitors).
This module encodes the qualitative properties used to justify that choice
so the selection logic is testable rather than hard-coded prose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class ComputeModel(enum.Enum):
    """The three analog in-memory compute models (paper Figure 2)."""

    CHARGE_SUMMING = "QS"
    CURRENT_SUMMING = "IS"
    CHARGE_REDISTRIBUTION = "QR"


@dataclass(frozen=True)
class ComputeModelProperties:
    """Qualitative properties of a compute model.

    Attributes:
        model: which compute model these properties describe.
        charge_domain: True for charge-domain models (QS, QR).
        pvt_sensitive: True when results drift with process/voltage/temperature.
        requires_explicit_capacitor: True when extra metal capacitance is
            needed beyond the bit cell, costing area.
        supports_capacitor_reuse: True when the compute capacitors can double
            as the SAR ADC CDAC (the architectural trick EasyACIM relies on).
        relative_density: qualitative density rank (higher is denser).
        extensibility: qualitative extensibility rank across applications
            (higher adapts more easily to different workloads/precisions).
    """

    model: ComputeModel
    charge_domain: bool
    pvt_sensitive: bool
    requires_explicit_capacitor: bool
    supports_capacitor_reuse: bool
    relative_density: int
    extensibility: int

    def robustness_score(self) -> int:
        """Simple robustness metric: charge-domain and PVT-insensitive win."""
        score = 0
        if self.charge_domain:
            score += 1
        if not self.pvt_sensitive:
            score += 1
        return score


#: Catalogue of the three compute models with the paper's qualitative claims.
COMPUTE_MODEL_CATALOG: Dict[ComputeModel, ComputeModelProperties] = {
    ComputeModel.CHARGE_SUMMING: ComputeModelProperties(
        model=ComputeModel.CHARGE_SUMMING,
        charge_domain=True,
        pvt_sensitive=False,
        requires_explicit_capacitor=True,
        supports_capacitor_reuse=False,
        relative_density=2,
        extensibility=1,
    ),
    ComputeModel.CURRENT_SUMMING: ComputeModelProperties(
        model=ComputeModel.CURRENT_SUMMING,
        charge_domain=False,
        pvt_sensitive=True,
        requires_explicit_capacitor=False,
        supports_capacitor_reuse=False,
        relative_density=3,
        extensibility=1,
    ),
    ComputeModel.CHARGE_REDISTRIBUTION: ComputeModelProperties(
        model=ComputeModel.CHARGE_REDISTRIBUTION,
        charge_domain=True,
        pvt_sensitive=False,
        requires_explicit_capacitor=True,
        supports_capacitor_reuse=True,
        relative_density=2,
        extensibility=3,
    ),
}


def select_compute_model() -> ComputeModel:
    """Select the compute model EasyACIM uses, by the paper's criteria.

    The selection maximises robustness first and extensibility second, and
    requires capacitor reuse so the SAR CDAC can share the compute
    capacitors.  With the catalogue above this deterministically yields QR,
    matching the paper's choice; the function exists so the criteria are
    explicit and testable.
    """
    candidates = [
        properties
        for properties in COMPUTE_MODEL_CATALOG.values()
        if properties.supports_capacitor_reuse
    ]
    if not candidates:
        candidates = list(COMPUTE_MODEL_CATALOG.values())
    best = max(
        candidates,
        key=lambda p: (p.robustness_score(), p.extensibility, p.relative_density),
    )
    return best.model
