"""The synthesizable ACIM architecture (paper section 3.1).

This package captures the paper's primary architectural contribution in an
executable form:

* :class:`~repro.arch.spec.ACIMDesignSpec` — the four-parameter design point
  (array height H, array width W, local array size L, ADC precision B_ADC)
  together with the Equation-12 feasibility constraints.
* :class:`~repro.arch.batch.SpecBatch` — the structure-of-arrays batch of
  many design points, the currency of the vectorized evaluation core.
* :class:`~repro.arch.architecture.SynthesizableACIM` — the structural view:
  columns made of SAR capacitor groups with the 1:1:2:4:...:2^(B-1) ratio,
  local arrays of L shared 8T cells, SAR logic, comparator and switches.
* :mod:`~repro.arch.timing` — the two operating states (MAC, ADC conversion)
  and the per-phase timing of Figure 5.
* :mod:`~repro.arch.compute_models` — the QS / IS / QR compute-model
  taxonomy of Figure 2 and the rationale for selecting QR.
"""

from repro.arch.batch import SpecBatch
from repro.arch.compute_models import ComputeModel, ComputeModelProperties, COMPUTE_MODEL_CATALOG
from repro.arch.spec import ACIMDesignSpec, enumerate_design_space, valid_heights
from repro.arch.architecture import (
    ColumnPlan,
    LocalArrayPlan,
    SarGroupPlan,
    SynthesizableACIM,
)
from repro.arch.timing import OperatingState, TimingEvent, TimingModel, TimingParameters

__all__ = [
    "ComputeModel",
    "ComputeModelProperties",
    "COMPUTE_MODEL_CATALOG",
    "ACIMDesignSpec",
    "SpecBatch",
    "enumerate_design_space",
    "valid_heights",
    "ColumnPlan",
    "LocalArrayPlan",
    "SarGroupPlan",
    "SynthesizableACIM",
    "OperatingState",
    "TimingEvent",
    "TimingModel",
    "TimingParameters",
]
