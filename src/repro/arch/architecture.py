"""Structural view of the synthesizable ACIM architecture (paper Figure 6).

Starting from an :class:`~repro.arch.spec.ACIMDesignSpec`, this module
builds the structural plan of the macro:

* each **column** holds ``H / L`` local arrays, one comparator / sense
  amplifier, SAR logic with ``B_ADC`` flip-flops, and the group-control
  switches;
* the local arrays are partitioned into **SAR groups** with capacitor
  ratios 1:1:2:4:...:2^(B-1), so the compute capacitors double as the SAR
  CDAC;
* each **local array** contains ``L`` 8T SRAM cells sharing a single compute
  capacitor C_F and its control circuit.

The plan is a pure-data structure consumed by the netlist generator, the
layout flow and the estimation model — it contains no geometry and no
electrical state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SpecificationError
from repro.arch.compute_models import ComputeModel
from repro.arch.spec import ACIMDesignSpec


@dataclass(frozen=True)
class LocalArrayPlan:
    """One local array: L bit cells sharing a compute capacitor.

    Attributes:
        index: position of the local array within its column (0 at bottom).
        sar_group: index of the SAR group this local array's capacitor
            belongs to.
        rows: global row indices of the 8T cells inside this local array.
    """

    index: int
    sar_group: int
    rows: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of 8T cells in the local array (= L)."""
        return len(self.rows)


@dataclass(frozen=True)
class SarGroupPlan:
    """One SAR capacitor group of a column's CDAC.

    Attributes:
        index: group index, 0 .. B_ADC (group 0 is the extra unit group that
            makes the ratios 1:1:2:...:2^(B-1)).
        weight: number of unit capacitors in this group.
        local_array_indices: which local arrays contribute their compute
            capacitors to the group.
    """

    index: int
    weight: int
    local_array_indices: Tuple[int, ...]

    def capacitance(self, unit_capacitance: float) -> float:
        """Total group capacitance in farads."""
        return self.weight * unit_capacitance


@dataclass(frozen=True)
class ColumnPlan:
    """The full structural plan of one ACIM column.

    Attributes:
        index: column index within the array.
        local_arrays: the column's local arrays, bottom to top.
        sar_groups: the CDAC groups built from the local-array capacitors.
        adc_bits: SAR ADC resolution of the column.
    """

    index: int
    local_arrays: Tuple[LocalArrayPlan, ...]
    sar_groups: Tuple[SarGroupPlan, ...]
    adc_bits: int

    @property
    def num_local_arrays(self) -> int:
        return len(self.local_arrays)

    @property
    def num_rows(self) -> int:
        """Total bit cells in the column."""
        return sum(array.size for array in self.local_arrays)

    def total_cdac_units(self) -> int:
        """Total unit capacitors used by the CDAC (should be 2^B_ADC)."""
        return sum(group.weight for group in self.sar_groups)


class SynthesizableACIM:
    """The synthesizable ACIM macro structure for a given design spec.

    The structure is identical for every column, so a single
    :class:`ColumnPlan` is built and replicated ``W`` times; per-column
    plans are exposed for the netlist generator, which names instances per
    column.
    """

    #: The compute model the architecture is built around (paper section 2.1).
    compute_model = ComputeModel.CHARGE_REDISTRIBUTION

    def __init__(self, spec: ACIMDesignSpec) -> None:
        spec.validate()
        self.spec = spec
        self._column_template = self._build_column_plan(0)

    # -- plan construction ----------------------------------------------------

    def _build_column_plan(self, column_index: int) -> ColumnPlan:
        spec = self.spec
        num_local = spec.local_arrays_per_column
        ratios = spec.sar_group_ratios
        needed_units = sum(ratios)
        if needed_units > num_local:
            # validate() already guarantees H/L >= 2^B, and sum(ratios) == 2^B.
            raise SpecificationError(
                f"column needs {needed_units} capacitor units but only "
                f"{num_local} local arrays are available"
            )

        local_arrays: List[LocalArrayPlan] = []
        sar_groups: List[SarGroupPlan] = []
        next_local = 0
        for group_index, weight in enumerate(ratios):
            members = tuple(range(next_local, next_local + weight))
            next_local += weight
            sar_groups.append(SarGroupPlan(group_index, weight, members))
        # Local arrays beyond the CDAC requirement still belong to the last
        # (most significant) group electrically disconnected during
        # conversion; structurally we assign them group -1 (unused by CDAC).
        group_of_local: Dict[int, int] = {}
        for group in sar_groups:
            for member in group.local_array_indices:
                group_of_local[member] = group.index

        for local_index in range(num_local):
            start_row = local_index * spec.local_array_size
            rows = tuple(range(start_row, start_row + spec.local_array_size))
            local_arrays.append(LocalArrayPlan(
                index=local_index,
                sar_group=group_of_local.get(local_index, -1),
                rows=rows,
            ))
        return ColumnPlan(
            index=column_index,
            local_arrays=tuple(local_arrays),
            sar_groups=tuple(sar_groups),
            adc_bits=spec.adc_bits,
        )

    # -- public structure queries ---------------------------------------------

    def column_plan(self, column_index: int = 0) -> ColumnPlan:
        """Structural plan of one column (all columns are identical)."""
        if not 0 <= column_index < self.spec.width:
            raise SpecificationError(
                f"column index {column_index} out of range 0..{self.spec.width - 1}"
            )
        template = self._column_template
        if column_index == 0:
            return template
        return ColumnPlan(
            index=column_index,
            local_arrays=template.local_arrays,
            sar_groups=template.sar_groups,
            adc_bits=template.adc_bits,
        )

    def columns(self) -> List[ColumnPlan]:
        """Structural plans of every column."""
        return [self.column_plan(i) for i in range(self.spec.width)]

    # -- component counting (used by area/energy models and tests) -------------

    def component_counts(self) -> Dict[str, int]:
        """Count every leaf component of the macro.

        Keys match the cell names of :mod:`repro.cells`.
        """
        spec = self.spec
        num_local_per_column = spec.local_arrays_per_column
        return {
            "sram8t": spec.height * spec.width,
            "local_compute": num_local_per_column * spec.width,
            "compute_cap": num_local_per_column * spec.width,
            "comparator": spec.width,
            "sar_dff": spec.adc_bits * spec.width,
            "group_switch": (spec.adc_bits + 1) * spec.width,
            "input_buffer": spec.height,
            "output_buffer": spec.width,
        }

    def cdac_total_capacitance(self, unit_capacitance: float) -> float:
        """Total CDAC capacitance per column in farads (2^B_ADC * C_F)."""
        return self.spec.capacitor_units_per_column * unit_capacitance

    def unused_local_arrays_per_column(self) -> int:
        """Local arrays whose capacitor is not part of the CDAC.

        When ``H/L > 2^B_ADC`` the surplus capacitors are isolated by the
        CMOS switch during conversion (the energy-saving trick in paper
        section 3.1); this method counts them.
        """
        return self.spec.local_arrays_per_column - self.spec.capacitor_units_per_column

    def describe(self) -> str:
        """Multi-line human-readable summary of the macro structure."""
        spec = self.spec
        counts = self.component_counts()
        lines = [
            f"Synthesizable ACIM ({spec.describe()})",
            f"  compute model        : {self.compute_model.value}",
            f"  local arrays/column  : {spec.local_arrays_per_column}",
            f"  SAR group ratios     : {':'.join(str(r) for r in spec.sar_group_ratios)}",
            f"  CDAC units/column    : {spec.capacitor_units_per_column}",
            f"  isolated caps/column : {self.unused_local_arrays_per_column()}",
            f"  8T SRAM cells        : {counts['sram8t']}",
            f"  comparators          : {counts['comparator']}",
            f"  SAR flip-flops       : {counts['sar_dff']}",
        ]
        return "\n".join(lines)
