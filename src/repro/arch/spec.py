"""The four-parameter ACIM design specification and its feasibility rules.

A design point of the synthesizable architecture is the vector
``(H, W, L, B_ADC)`` — array height, array width, local array size and ADC
precision — explored by the MOGA-based design space explorer.  The
feasibility constraints come from the paper's Equation 12:

* ``H / L >= 2^B_ADC`` — the ADC precision is limited by the number of
  local-array capacitor groups available per column to form the CDAC,
* ``H >= L`` — a local array cannot be taller than the column,
* ``H * W == array_size`` — the macro holds exactly the user-defined number
  of bit cells.

The module also provides enumeration helpers used by the exhaustive
design-space baseline and by the genetic explorer's repair operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import SpecificationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True, order=True)
class ACIMDesignSpec:
    """One design point of the synthesizable ACIM architecture.

    Attributes:
        height: array height H in bit cells per column.
        width: array width W in columns.
        local_array_size: local array size L (8T cells sharing one compute
            capacitor and control circuit).
        adc_bits: SAR ADC precision B_ADC in bits.
    """

    height: int
    width: int
    local_array_size: int
    adc_bits: int

    # -- derived quantities ---------------------------------------------------

    @property
    def array_size(self) -> int:
        """Total number of bit cells H * W."""
        return self.height * self.width

    @property
    def local_arrays_per_column(self) -> int:
        """Number of local arrays (and compute capacitors) per column, H / L."""
        return self.height // self.local_array_size

    @property
    def dot_product_length(self) -> int:
        """Accumulation length N of one analog dot product (H / L).

        Each local array contributes one product term through its shared
        compute capacitor, so a column accumulates H / L terms per MAC phase.
        """
        return self.local_arrays_per_column

    @property
    def sar_group_ratios(self) -> Tuple[int, ...]:
        """CDAC capacitor group ratios 1:1:2:4:...:2^(B-1) (paper Fig. 6)."""
        if self.adc_bits < 1:
            return ()
        return (1,) + tuple(2 ** i for i in range(self.adc_bits))

    @property
    def capacitor_units_per_column(self) -> int:
        """Total unit capacitors needed per column by the CDAC grouping, 2^B."""
        return 2 ** self.adc_bits

    # -- constraint checks ----------------------------------------------------

    def constraint_violations(
        self, array_size: Optional[int] = None
    ) -> List[str]:
        """Return human-readable descriptions of violated constraints.

        Args:
            array_size: required total array size; when omitted, only the
                H/L and H>=L constraints are checked.
        """
        violations: List[str] = []
        if self.height < 1 or self.width < 1:
            violations.append("H and W must be positive")
        if self.local_array_size < 1:
            violations.append("L must be positive")
        if self.adc_bits < 1:
            violations.append("B_ADC must be at least 1")
        if self.local_array_size > self.height:
            violations.append(
                f"H - L >= 0 violated: L={self.local_array_size} > H={self.height}"
            )
        if self.height % max(self.local_array_size, 1) != 0:
            violations.append(
                f"H={self.height} is not a multiple of L={self.local_array_size}"
            )
        elif self.local_arrays_per_column < 2 ** self.adc_bits:
            violations.append(
                f"H/L - 2^B_ADC >= 0 violated: H/L={self.local_arrays_per_column} "
                f"< 2^{self.adc_bits}"
            )
        if array_size is not None and self.array_size != array_size:
            violations.append(
                f"H*W = {self.array_size} differs from required array size "
                f"{array_size}"
            )
        return violations

    def is_feasible(self, array_size: Optional[int] = None) -> bool:
        """True when every Equation-12 constraint is satisfied."""
        return not self.constraint_violations(array_size)

    def validate(self, array_size: Optional[int] = None) -> "ACIMDesignSpec":
        """Raise :class:`SpecificationError` on any constraint violation."""
        violations = self.constraint_violations(array_size)
        if violations:
            raise SpecificationError(
                f"infeasible design spec {self.as_tuple()}: " + "; ".join(violations)
            )
        return self

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Return ``(H, W, L, B_ADC)``."""
        return (self.height, self.width, self.local_array_size, self.adc_bits)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"H={self.height} W={self.width} L={self.local_array_size} "
            f"B_ADC={self.adc_bits} ({self.array_size} cells)"
        )


# ---------------------------------------------------------------------------
# Design-space enumeration helpers
# ---------------------------------------------------------------------------


def valid_heights(array_size: int, power_of_two_only: bool = True) -> List[int]:
    """Heights H that exactly divide ``array_size``.

    Args:
        array_size: required total number of bit cells.
        power_of_two_only: restrict to power-of-two heights (the synthesizable
            architecture tiles columns in power-of-two SAR groups, and the
            paper's explored design points are all powers of two).
    """
    if array_size < 1:
        raise SpecificationError("array size must be positive")
    # Paired divisor enumeration up to sqrt(n): the huge-space benchmarks
    # open array sizes in the hundreds of millions, where scanning every
    # candidate height would dominate the run.
    divisors = set()
    low = 1
    while low * low <= array_size:
        if array_size % low == 0:
            divisors.add(low)
            divisors.add(array_size // low)
        low += 1
    heights = sorted(divisors)
    if power_of_two_only:
        heights = [h for h in heights if _is_power_of_two(h)]
    return heights


def enumerate_design_space(
    array_size: int,
    local_array_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    max_adc_bits: int = 8,
    min_height: int = 2,
    max_height: Optional[int] = None,
    power_of_two_heights: bool = True,
) -> Iterator[ACIMDesignSpec]:
    """Enumerate every feasible design point for a given array size.

    This is the exhaustive baseline the NSGA-II explorer is validated
    against (the discrete space is small enough to enumerate for the array
    sizes the paper studies: a 16 kb array has a few hundred feasible
    points).  The grid itself is built vectorized by
    :meth:`repro.arch.batch.SpecBatch.enumerate`; this wrapper materialises
    it as scalar spec objects in the historical iteration order (heights
    outermost, ADC bits innermost).

    Args:
        array_size: required H * W.
        local_array_sizes: candidate local array sizes L (paper limits L to
            2..32 "to avoid extreme results").
        max_adc_bits: maximum ADC precision (paper limits B_ADC to 8).
        min_height: smallest height to consider.
        max_height: largest height to consider (defaults to the array size).
        power_of_two_heights: restrict H to powers of two.
    """
    from repro.arch.batch import SpecBatch

    batch = SpecBatch.enumerate(
        array_size,
        local_array_sizes=local_array_sizes,
        max_adc_bits=max_adc_bits,
        min_height=min_height,
        max_height=max_height,
        power_of_two_heights=power_of_two_heights,
    )
    yield from batch.to_specs()


def design_space_size(array_size: int, **kwargs) -> int:
    """Number of feasible design points for ``array_size`` (testing helper)."""
    return sum(1 for _ in enumerate_design_space(array_size, **kwargs))
