"""Report tables for metrics snapshots and per-campaign run metrics.

Row builders for the ``repro metrics`` subcommand and the campaign-trend
columns of ``campaign list``.  Metric snapshots come from
:meth:`repro.obs.MetricsRegistry.snapshot` (scalars for counters/gauges,
``{"count", "sum", "buckets"}`` dictionaries for histograms); run-metric
rows come from :meth:`repro.store.result_store.ResultStore.list_run_metrics`.
Each helper returns plain ``List[Dict]`` rows so they compose with
:func:`repro.flow.report.format_table` and the CSV/JSON exporters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


def metrics_table(snapshot: Dict[str, object]) -> List[Dict]:
    """One row per metric, histograms folded to count / sum / mean."""
    rows: List[Dict] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict) and "buckets" in value:
            count = value.get("count", 0)
            total = value.get("sum", 0.0)
            rows.append({
                "metric": name,
                "kind": "histogram",
                "count": count,
                "sum": round(float(total), 6),
                "mean": round(float(total) / count, 6) if count else 0.0,
            })
        else:
            rows.append({
                "metric": name,
                "kind": "scalar",
                "count": "",
                "sum": value,
                "mean": "",
            })
    return rows


def run_metrics_table(rows: Iterable[Dict]) -> List[Dict]:
    """One row per recorded campaign run (``run_metrics`` store table)."""
    table: List[Dict] = []
    any_surrogate = any(
        (row.get("metrics", {}) or {}).get("surrogate") for row in rows
    )
    for row in rows:
        metrics = row.get("metrics", {}) or {}
        physical = metrics.get("physical", {}) or {}
        rendered = {
            "campaign": row.get("campaign", ""),
            "run": row.get("run_index", 0),
            "status": metrics.get("status", ""),
            "generations": metrics.get("generations", 0),
            "runtime_s": metrics.get("runtime_seconds", 0.0),
            "gens_per_s": metrics.get("generations_per_second", 0.0),
            "evaluations": metrics.get("evaluations", 0),
            "cache_hit_rate": metrics.get("cache_hit_rate", 0.0),
            "backend": metrics.get("backend", ""),
            # built/reused/derived macro counts of reuse-pipeline flows.
            "macros": (
                "{}/{}/{}".format(
                    physical.get("macros_built", 0),
                    physical.get("macros_reused", 0),
                    physical.get("macros_derived", 0),
                )
                if physical else ""
            ),
        }
        # Surrogate columns only appear when at least one run of the
        # listing used screening, so plain listings stay unchanged.
        if any_surrogate:
            rendered["surrogate"] = metrics.get("surrogate", "off")
            rendered["exact_evals"] = metrics.get("exact_evals", "")
            rendered["screened_evals"] = metrics.get("screened_evals", "")
            rendered["front_recall"] = metrics.get("front_recall", "")
        table.append(rendered)
    return table


def campaign_trend_table(rows: Iterable[Dict]) -> List[Dict]:
    """One row per campaign aggregating its runs into a trend summary.

    Shows how throughput and cache effectiveness evolve across resumes:
    the first and latest per-run generations/sec and cache-hit rate, so
    a warm store (rising hit rate) is visible at a glance.
    """
    by_campaign: Dict[str, List[Dict]] = {}
    for row in rows:
        metrics = row.get("metrics", {}) or {}
        by_campaign.setdefault(str(row.get("campaign", "")), []).append(metrics)
    table: List[Dict] = []
    for campaign in sorted(by_campaign):
        runs = by_campaign[campaign]
        generations = sum(run.get("generations", 0) or 0 for run in runs)
        runtime = sum(run.get("runtime_seconds", 0.0) or 0.0 for run in runs)
        table.append({
            "campaign": campaign,
            "runs": len(runs),
            "generations": generations,
            "gens_per_s": round(generations / runtime, 3) if runtime > 0 else 0.0,
            "first_gps": runs[0].get("generations_per_second", 0.0),
            "last_gps": runs[-1].get("generations_per_second", 0.0),
            "first_hit_rate": runs[0].get("cache_hit_rate", 0.0),
            "last_hit_rate": runs[-1].get("cache_hit_rate", 0.0),
        })
    return table
