"""Report tables for persistent-store campaigns and queries.

Row builders consumed by ``campaign list / run / resume / query`` on the
CLI (rendered with :func:`repro.flow.report.format_table`) and by any
service embedding the campaign manager.  Each helper returns plain
``List[Dict]`` rows so they compose with the CSV/JSON exporters too.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.store.result_store import CampaignRecord, StoredEvaluation


def campaign_table(records: Iterable[CampaignRecord]) -> List[Dict]:
    """One row per campaign: progress, budget and provenance."""
    return [record.as_dict() for record in records]


def stored_design_table(entries: Iterable[StoredEvaluation]) -> List[Dict]:
    """One row per stored design point, in the given (ranked) order."""
    return [entry.as_dict() for entry in entries]


def store_summary_table(stats: Dict[str, object]) -> List[Dict]:
    """One row summarizing a store's occupancy (``ResultStore.stats()``)."""
    if not stats:
        return []
    return [{
        "store": stats.get("path", ""),
        "schema": stats.get("schema_version", ""),
        "evaluations": stats.get("evaluations", 0),
        "campaigns": stats.get("campaigns", 0),
        "checkpoints": stats.get("checkpoints", 0),
        "artifacts": stats.get("artifacts", 0),
    }]
