"""Text-based reporting and plotting utilities.

The benchmark harness reproduces the paper's *figures* as data series; this
package renders those series in the terminal (ASCII scatter plots with
per-category markers) and exports them as CSV so they can be re-plotted
with any external tool.
"""

from repro.reporting.ascii_plots import AsciiScatter, render_pareto_front
from repro.reporting.campaigns import (
    campaign_table,
    store_summary_table,
    stored_design_table,
)
from repro.reporting.export import export_csv, export_json
from repro.reporting.observability import (
    campaign_trend_table,
    metrics_table,
    run_metrics_table,
)
from repro.reporting.physical import macro_table, physical_stats_table

__all__ = [
    "AsciiScatter",
    "campaign_table",
    "campaign_trend_table",
    "macro_table",
    "metrics_table",
    "physical_stats_table",
    "render_pareto_front",
    "run_metrics_table",
    "export_csv",
    "export_json",
    "store_summary_table",
    "stored_design_table",
]
