"""Report tables for the physical pipeline's per-stage statistics.

Renders the ``physical_stats`` section the flow and layout workflows
attach to their payloads (see :class:`repro.physical.PipelineStats`) as
the flat rows the text CLI prints with
:func:`repro.flow.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.physical.artifacts import PIPELINE_STAGES


def physical_stats_table(stats: Dict) -> List[Dict]:
    """One row per pipeline stage plus a totals row.

    Args:
        stats: a ``PipelineStats.as_dict()`` document (``stages`` mapping
            plus the macro reuse counters).
    """
    stages = stats.get("stages", {})
    ordered = [name for name in PIPELINE_STAGES if name in stages]
    ordered += [name for name in stages if name not in ordered]
    rows: List[Dict] = []
    totals = {"runs": 0, "seconds": 0.0, "cache_hits": 0, "store_hits": 0}
    for name in ordered:
        stage = stages[name]
        rows.append({
            "stage": name,
            "runs": stage.get("runs", 0),
            "seconds": round(stage.get("seconds", 0.0), 4),
            "cache_hits": stage.get("cache_hits", 0),
            "store_hits": stage.get("store_hits", 0),
        })
        for key in totals:
            totals[key] += stage.get(key, 0)
    rows.append({
        "stage": "total",
        "runs": totals["runs"],
        "seconds": round(totals["seconds"], 4),
        "cache_hits": totals["cache_hits"],
        "store_hits": totals["store_hits"],
    })
    return rows


def macro_table(macros: List[Dict]) -> List[Dict]:
    """The ``repro library macros`` listing rows (already flat)."""
    return list(macros)
