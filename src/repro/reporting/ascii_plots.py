"""ASCII scatter plots for design-space figures.

matplotlib is not a dependency of the reproduction, so the Figure-9 /
Figure-10 style scatter plots are rendered as fixed-width character grids:
one marker character per category, log or linear axes, and a legend.  The
output is deterministic, diff-able in CI, and good enough to see the shape
of the design space directly in a terminal or a text report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Marker characters assigned to categories, in registration order.
_MARKERS = "ox+*#@%&sd"


@dataclass
class _Series:
    label: str
    marker: str
    points: List[Tuple[float, float]] = field(default_factory=list)


class AsciiScatter:
    """A character-grid scatter plot with per-category markers."""

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        width: int = 64,
        height: int = 20,
        log_x: bool = False,
        log_y: bool = False,
    ) -> None:
        if width < 16 or height < 8:
            raise ReproError("plot must be at least 16 x 8 characters")
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.log_x = log_x
        self.log_y = log_y
        self._series: List[_Series] = []

    # -- data -----------------------------------------------------------------

    def add_series(self, label: str, points: Sequence[Tuple[float, float]]) -> None:
        """Add one category of (x, y) points."""
        marker = _MARKERS[len(self._series) % len(_MARKERS)]
        series = _Series(label=label, marker=marker, points=list(points))
        for x, y in series.points:
            self._check_value(x, self.log_x, "x")
            self._check_value(y, self.log_y, "y")
        self._series.append(series)

    @staticmethod
    def _check_value(value: float, log_scale: bool, axis: str) -> None:
        if log_scale and value <= 0:
            raise ReproError(f"log-scale {axis} axis requires positive values")
        if math.isnan(value) or math.isinf(value):
            raise ReproError(f"non-finite {axis} value in scatter plot")

    # -- rendering ----------------------------------------------------------------

    def render(self) -> str:
        """Render the plot as a multi-line string."""
        points = [(x, y) for series in self._series for x, y in series.points]
        if not points:
            raise ReproError("cannot render an empty scatter plot")
        xs = [self._scale(x, self.log_x) for x, _y in points]
        ys = [self._scale(y, self.log_y) for _x, y in points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            for x, y in series.points:
                column = int(round(
                    (self._scale(x, self.log_x) - x_lo) / x_span * (self.width - 1)))
                row = int(round(
                    (self._scale(y, self.log_y) - y_lo) / y_span * (self.height - 1)))
                grid[self.height - 1 - row][column] = series.marker

        lines = [self.title]
        raw_x_lo, raw_x_hi = min(x for x, _ in points), max(x for x, _ in points)
        raw_y_lo, raw_y_hi = min(y for _, y in points), max(y for _, y in points)
        lines.append(f"y: {self.y_label}  [{raw_y_lo:.3g} .. {raw_y_hi:.3g}]"
                     f"{' (log)' if self.log_y else ''}")
        border = "+" + "-" * self.width + "+"
        lines.append(border)
        for row in grid:
            lines.append("|" + "".join(row) + "|")
        lines.append(border)
        lines.append(f"x: {self.x_label}  [{raw_x_lo:.3g} .. {raw_x_hi:.3g}]"
                     f"{' (log)' if self.log_x else ''}")
        legend = "  ".join(f"{series.marker}={series.label}" for series in self._series)
        lines.append(f"legend: {legend}")
        return "\n".join(lines)

    @staticmethod
    def _scale(value: float, log_scale: bool) -> float:
        return math.log10(value) if log_scale else value


def render_pareto_front(
    designs,
    x_metric: str = "area_f2_per_bit",
    y_metric: str = "tops_per_watt",
    category=None,
    title: str = "EasyACIM design space",
    width: int = 64,
    height: int = 20,
) -> str:
    """Render evaluated designs as a Figure-10 style ASCII scatter.

    Args:
        designs: iterable of :class:`repro.dse.problem.EvaluatedDesign`.
        x_metric / y_metric: attribute names of
            :class:`repro.model.estimator.ACIMMetrics` to plot.
        category: optional callable mapping a design to a category label;
            defaults to a single series.
        title: plot title.
        width / height: plot size in characters.
    """
    designs = list(designs)
    if not designs:
        raise ReproError("no designs to plot")
    plot = AsciiScatter(title, x_metric, y_metric, width=width, height=height)
    if category is None:
        plot.add_series("designs", [
            (getattr(d.metrics, x_metric), getattr(d.metrics, y_metric))
            for d in designs
        ])
        return plot.render()
    groups: Dict[str, List[Tuple[float, float]]] = {}
    for design in designs:
        label = str(category(design))
        groups.setdefault(label, []).append(
            (getattr(design.metrics, x_metric), getattr(design.metrics, y_metric)))
    for label in sorted(groups):
        plot.add_series(label, groups[label])
    return plot.render()
