"""CSV / JSON export of evaluated design sets and flow results.

The benchmark harness and the examples print tables; downstream users
usually want files.  These helpers serialise evaluated design sets (and any
list of flat dictionaries) to CSV and JSON with stable column ordering so
exports are reproducible and diff-able.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ReproError


def _to_rows(records: Iterable) -> List[Dict]:
    """Normalise evaluated designs / metrics / dicts into flat dictionaries."""
    rows: List[Dict] = []
    for record in records:
        if isinstance(record, dict):
            rows.append(dict(record))
        elif hasattr(record, "metrics") and hasattr(record.metrics, "as_dict"):
            rows.append(record.metrics.as_dict())
        elif hasattr(record, "as_dict"):
            rows.append(record.as_dict())
        else:
            raise ReproError(
                f"cannot export record of type {type(record).__name__}; "
                "expected a dict or an object with as_dict()"
            )
    return rows


def export_csv(
    records: Iterable,
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write records to a CSV file and return the path.

    Args:
        records: dicts, :class:`~repro.dse.problem.EvaluatedDesign` objects,
            or anything exposing ``as_dict()``.
        path: output file path.
        columns: explicit column order; defaults to the keys of the first
            record (missing keys in later records are left empty).
    """
    rows = _to_rows(records)
    if not rows:
        raise ReproError("nothing to export")
    fieldnames = list(columns) if columns else list(rows[0].keys())
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_json(
    records: Iterable,
    path: Union[str, Path],
    metadata: Optional[Dict] = None,
) -> Path:
    """Write records (plus optional metadata) to a JSON file.

    The JSON document has the shape ``{"metadata": {...}, "records": [...]}``
    so benchmark provenance (array size, seeds, model parameters) can travel
    with the data.

    The write is atomic (temporary file in the target directory, then
    ``os.replace``): a process killed mid-export — a campaign cut down
    while writing its results — leaves either the previous document or the
    complete new one, never a truncated file.
    """
    rows = _to_rows(records)
    if not rows:
        raise ReproError("nothing to export")
    document = {"metadata": metadata or {}, "records": rows}
    path = Path(path)
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(payload)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def load_json(path: Union[str, Path]) -> Dict:
    """Read back a document written by :func:`export_json`."""
    data = json.loads(Path(path).read_text())
    if "records" not in data:
        raise ReproError(f"{path} is not an EasyACIM export (missing 'records')")
    return data
