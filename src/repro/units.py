"""Physical constants, unit helpers and dB conversions.

All internal quantities in the library use SI base units (seconds, meters,
farads, joules, volts) unless a function name says otherwise.  Layout
coordinates use nanometers stored as integers (database units), which is
conventional for IC layout databases and avoids floating-point snapping
issues; :data:`DBU_PER_UM` gives the conversion factor.

The helpers here are deliberately tiny, pure functions so that the
estimation model (:mod:`repro.model`) and the behavioral simulator
(:mod:`repro.sim`) can share a single, well-tested vocabulary for unit
conversions.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Boltzmann constant in J/K, used for kT/C thermal-noise calculations.
BOLTZMANN_K = 1.380649e-23

#: Default simulation temperature in Kelvin (27 degrees Celsius).
ROOM_TEMPERATURE_K = 300.15

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

#: Layout database units per micrometer (1 dbu = 1 nm).
DBU_PER_UM = 1000

# ---------------------------------------------------------------------------
# dB helpers
# ---------------------------------------------------------------------------


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``value`` is not strictly positive.
    """
    if value <= 0.0:
        raise ValueError(f"cannot convert non-positive ratio {value!r} to dB")
    return 10.0 * math.log10(value)


def amplitude_db(value: float) -> float:
    """Convert an amplitude ratio (e.g. x_m / sigma_x) to dB (20 log10)."""
    if value <= 0.0:
        raise ValueError(f"cannot convert non-positive amplitude {value!r} to dB")
    return 20.0 * math.log10(value)


# ---------------------------------------------------------------------------
# Feature-size (F^2) area normalisation
# ---------------------------------------------------------------------------


def f2_area_m2(f2: float, feature_size_m: float) -> float:
    """Convert an area expressed in F^2 to square meters.

    Args:
        f2: area in squared feature sizes (the paper reports F^2/bit).
        feature_size_m: technology feature size F in meters (28 nm for the
            paper's TSMC28 implementation).
    """
    if feature_size_m <= 0:
        raise ValueError("feature size must be positive")
    return f2 * feature_size_m * feature_size_m


def area_m2_to_f2(area_m2: float, feature_size_m: float) -> float:
    """Convert an area in square meters to squared feature sizes (F^2)."""
    if feature_size_m <= 0:
        raise ValueError("feature size must be positive")
    return area_m2 / (feature_size_m * feature_size_m)


def um2_to_f2(area_um2: float, feature_size_m: float) -> float:
    """Convert an area in square micrometers to F^2."""
    return area_m2_to_f2(area_um2 * MICRO * MICRO, feature_size_m)


def f2_to_um2(f2: float, feature_size_m: float) -> float:
    """Convert an area in F^2 to square micrometers."""
    return f2_area_m2(f2, feature_size_m) / (MICRO * MICRO)


# ---------------------------------------------------------------------------
# Throughput / efficiency helpers
# ---------------------------------------------------------------------------

#: Number of arithmetic operations counted per multiply-accumulate.
OPS_PER_MAC = 2


def ops_to_tops(ops_per_second: float) -> float:
    """Convert operations/second to TOPS (tera-operations per second)."""
    return ops_per_second / TERA


def tops_per_watt(ops_per_second: float, power_watt: float) -> float:
    """Compute energy efficiency in TOPS/W from throughput and power."""
    if power_watt <= 0:
        raise ValueError("power must be positive")
    return ops_per_second / power_watt / TERA


def energy_per_op_to_tops_per_watt(energy_joule: float) -> float:
    """Convert energy per operation (J/op) to TOPS/W.

    TOPS/W is the reciprocal of energy per operation expressed in pJ/op:
    1 pJ/op corresponds to 1 TOPS/W.
    """
    if energy_joule <= 0:
        raise ValueError("energy per operation must be positive")
    return 1.0 / (energy_joule / PICO)


def tops_per_watt_to_energy_per_op(tops_w: float) -> float:
    """Convert an efficiency in TOPS/W back to energy per operation (J)."""
    if tops_w <= 0:
        raise ValueError("efficiency must be positive")
    return PICO / tops_w


# ---------------------------------------------------------------------------
# dbu (integer nanometer) helpers for the layout database
# ---------------------------------------------------------------------------


def um_to_dbu(um: float) -> int:
    """Convert micrometers to integer database units (nanometers)."""
    return int(round(um * DBU_PER_UM))


def dbu_to_um(dbu: int) -> float:
    """Convert integer database units (nanometers) to micrometers."""
    return dbu / DBU_PER_UM


def snap_to_grid(value_dbu: int, grid_dbu: int) -> int:
    """Snap a database-unit coordinate to the nearest multiple of ``grid_dbu``."""
    if grid_dbu <= 0:
        raise ValueError("grid must be positive")
    return int(round(value_dbu / grid_dbu)) * grid_dbu
