"""Jobs and the priority queue feeding the serving layer's worker pool.

A :class:`Job` is one tenant request travelling through the server: the
validated request envelope, its queue priority, its lifecycle state and —
for streaming consumers — an append-only event log any number of clients
can follow concurrently (each stream holds only a cursor into the log, so
a disconnected client re-attaches and replays from wherever it left off).

:class:`JobQueue` hands jobs to worker threads strictly by ``(priority
descending, arrival order)`` **among runnable jobs**: a tenant already
running its configured maximum of concurrent jobs is skipped, so one
tenant queueing a thousand campaigns cannot starve everyone else no
matter how high it bids.  Cancellation is cooperative: a queued job is
simply withdrawn; a running job has its :attr:`Job.cancel_event` set and
long-running executors (the generation-by-generation campaign stepper)
check it between checkpoints, leaving the campaign interrupted-but-
resumable exactly like a killed process would.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError

#: Lifecycle states of a job.  ``queued -> running -> done|failed|
#: cancelled``; cancellation of a queued job skips ``running``.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Default per-tenant cap on concurrently *running* jobs.
DEFAULT_MAX_PER_TENANT = 2


class Job:
    """One request travelling through the server.

    Args:
        job_id: server-assigned identifier (the client's handle).
        tenant: tenant name the job is accounted against.
        request: the validated request dictionary (``kind`` + fields).
        priority: larger runs earlier (ties: arrival order).
        stream: whether progress events should be recorded for streaming.
    """

    def __init__(
        self,
        job_id: str,
        tenant: str,
        request: dict,
        priority: int = 0,
        stream: bool = False,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.priority = priority
        self.stream = stream
        self.state = "queued"
        self.result: Optional[dict] = None
        self.error: Optional[dict] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cancel_event = threading.Event()
        self._events: List[dict] = []
        self._condition = threading.Condition()

    # -- state ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True in any terminal state."""
        return self.state in ("done", "failed", "cancelled")

    def describe(self) -> dict:
        """The status document ``GET /v1/jobs/<id>`` returns."""
        with self._condition:
            record = {
                "id": self.id,
                "tenant": self.tenant,
                "kind": self.request.get("kind"),
                "priority": self.priority,
                "stream": self.stream,
                "state": self.state,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "events": len(self._events),
            }
            if self.result is not None:
                record["result"] = self.result
            if self.error is not None:
                record["error"] = self.error
            return record

    def _finish(self, state: str, **fields) -> None:
        with self._condition:
            for name, value in fields.items():
                setattr(self, name, value)
            self.state = state
            self.finished_at = time.time()
            self._events.append({
                "event": "end",
                "state": state,
                "job_id": self.id,
            })
            self._condition.notify_all()

    def complete(self, result: dict) -> None:
        """Terminal success: attach the result envelope."""
        self._finish("done", result=result)

    def fail(self, error: dict) -> None:
        """Terminal failure: attach the structured error record."""
        self._finish("failed", error=error)

    def cancelled(self, result: Optional[dict] = None) -> None:
        """Terminal cancellation (``result`` carries any partial outcome,
        e.g. the interrupted-but-resumable campaign envelope)."""
        self._finish("cancelled", result=result)

    # -- event streaming -------------------------------------------------------

    def add_event(self, event: dict) -> None:
        """Append one progress event and wake every waiting stream."""
        with self._condition:
            self._events.append(dict(event))
            self._condition.notify_all()

    def events_after(
        self, cursor: int, timeout: Optional[float] = None
    ) -> Tuple[List[dict], int]:
        """Events beyond ``cursor``, blocking until there are any.

        Returns ``(events, new_cursor)``; an empty list means the timeout
        elapsed with nothing new (the caller emits a keep-alive and polls
        again).  The log is append-only and never truncated while the job
        is retained, so any cursor from 0 upward replays consistently —
        that is what makes client disconnect/reconnect lossless.
        """
        with self._condition:
            if cursor >= len(self._events) and not self.finished:
                self._condition.wait(timeout)
            events = [dict(event) for event in self._events[cursor:]]
            return events, cursor + len(events)


class JobQueue:
    """Priority queue with cancellation and per-tenant concurrency bounds.

    Args:
        max_per_tenant: cap on concurrently running jobs per tenant;
            queued jobs beyond it stay queued (without blocking other
            tenants' claims) until one of the tenant's jobs finishes.
        retention: completed jobs to retain for status/stream queries
            (oldest finished jobs are evicted first, never live ones).
    """

    def __init__(
        self,
        max_per_tenant: int = DEFAULT_MAX_PER_TENANT,
        retention: int = 4096,
    ) -> None:
        if max_per_tenant < 1:
            raise ServeError("max_per_tenant must be at least 1")
        self.max_per_tenant = max_per_tenant
        self.retention = max(1, retention)
        self._lock = threading.Condition()
        self._pending: List[Tuple[int, int, Job]] = []  # (-priority, seq, job)
        self._jobs: Dict[str, Job] = {}
        self._running_by_tenant: Dict[str, int] = {}
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._closed = False

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        request: dict,
        priority: int = 0,
        stream: bool = False,
    ) -> Job:
        """Enqueue one request; returns the queued :class:`Job`."""
        with self._lock:
            if self._closed:
                raise ServeError("job queue is draining; not accepting jobs")
            job = Job(
                f"job-{next(self._ids):06d}",
                tenant,
                request,
                priority=priority,
                stream=stream,
            )
            self._jobs[job.id] = job
            self._pending.append((-int(priority), next(self._seq), job))
            self._evict_finished()
            self._lock.notify_all()
            return job

    def get(self, job_id: str) -> Job:
        """Look a job up by id (raises :class:`ServeError` when unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    # -- worker side -----------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Hand the best runnable job to a worker (blocking).

        The best runnable job is the highest-priority, earliest-arrived
        pending job whose tenant is below its running cap.  Returns
        ``None`` on timeout or when the queue is closed and empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                best_index = None
                for index, (neg_priority, seq, job) in enumerate(self._pending):
                    if (
                        self._running_by_tenant.get(job.tenant, 0)
                        >= self.max_per_tenant
                    ):
                        continue
                    if best_index is None or (neg_priority, seq) < (
                        self._pending[best_index][0],
                        self._pending[best_index][1],
                    ):
                        best_index = index
                if best_index is not None:
                    _, _, job = self._pending.pop(best_index)
                    job.state = "running"
                    job.started_at = time.time()
                    self._running_by_tenant[job.tenant] = (
                        self._running_by_tenant.get(job.tenant, 0) + 1
                    )
                    return job
                if self._closed and not self._pending:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._lock.wait(remaining)

    def release(self, job: Job) -> None:
        """Return a claimed job's tenant slot (the job is terminal now)."""
        with self._lock:
            count = self._running_by_tenant.get(job.tenant, 0) - 1
            if count > 0:
                self._running_by_tenant[job.tenant] = count
            else:
                self._running_by_tenant.pop(job.tenant, None)
            self._lock.notify_all()

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: withdraw it if queued, signal it if running.

        Returns ``{"state", "cancel_requested"}`` — a running job only
        *observes* the request at its next cancellation point (between
        campaign generations), so its terminal state arrives later.
        Cancelling a finished job is a no-op report, not an error.
        """
        job = self.get(job_id)
        with self._lock:
            for index, (_, _, pending) in enumerate(self._pending):
                if pending.id == job_id:
                    del self._pending[index]
                    break
            if job.state == "queued":
                job.cancel_event.set()
                job.cancelled()
                return {"state": job.state, "cancel_requested": True}
            if job.state == "running":
                job.cancel_event.set()
                return {"state": job.state, "cancel_requested": True}
            return {"state": job.state, "cancel_requested": False}

    # -- drain / shutdown ------------------------------------------------------

    def close(self) -> None:
        """Stop accepting new jobs; claims drain what is already queued."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until nothing is pending or running; True when drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending or self._running_by_tenant:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._lock.wait(remaining if remaining is not None else 0.2)
            return True

    # -- statistics ------------------------------------------------------------

    def stats(self) -> dict:
        """Occupancy counters for ``/v1/metrics`` and ``/v1/healthz``."""
        with self._lock:
            by_state: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {
                "pending": len(self._pending),
                "running": sum(self._running_by_tenant.values()),
                "by_state": by_state,
                "tenants_running": dict(self._running_by_tenant),
                "jobs_retained": len(self._jobs),
                "accepting": not self._closed,
            }

    def _evict_finished(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound."""
        if len(self._jobs) <= self.retention:
            return
        finished = sorted(
            (job for job in self._jobs.values() if job.finished),
            key=lambda job: job.finished_at or 0.0,
        )
        for job in finished[: len(self._jobs) - self.retention]:
            self._jobs.pop(job.id, None)
