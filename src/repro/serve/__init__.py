"""Multi-tenant serving layer: an HTTP + job-queue front end hosting
concurrent tenants over one shared :class:`~repro.api.Session`.

The package is pure stdlib (``http.server`` / ``http.client`` /
``threading``) and reuses the library's typed request envelopes as the
wire protocol — see ``docs/serving.md`` for the endpoint reference.

>>> from repro.serve import ReproServer, ServeClient, ServerConfig
>>> server = ReproServer(ServerConfig(port=0)).start()   # doctest: +SKIP
>>> client = ServeClient(server.url)                     # doctest: +SKIP
>>> client.run({"kind": "estimate", "spec": {...}})      # doctest: +SKIP
"""

from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.jobs import DEFAULT_MAX_PER_TENANT, JOB_STATES, Job, JobQueue
from repro.serve.ratelimit import TenantRateLimiter, TokenBucket
from repro.serve.server import (
    DEFAULT_TENANT,
    ReproServer,
    ServerConfig,
    error_envelope,
)

__all__ = [
    "DEFAULT_MAX_PER_TENANT",
    "DEFAULT_TENANT",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "ReproServer",
    "ServeClient",
    "ServeHTTPError",
    "ServerConfig",
    "TenantRateLimiter",
    "TokenBucket",
    "error_envelope",
]
