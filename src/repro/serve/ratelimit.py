"""Per-tenant token-bucket rate limiting for the serving layer.

Classic token bucket: each tenant owns a bucket of capacity ``burst``
refilled continuously at ``rate`` tokens per second; admitting a request
costs one token, and an empty bucket rejects with the seconds-until-next-
token hint the server turns into a ``Retry-After`` header.  The clock is
injectable so tests drive time deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import RateLimitError


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self, amount: float = 1.0) -> Optional[float]:
        """Take ``amount`` tokens; ``None`` on success, else the seconds
        until the bucket will next hold that many."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return None
        return (amount - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current (refilled) token level."""
        self._refill(self._clock())
        return self._tokens


class TenantRateLimiter:
    """Lazily-created per-tenant buckets behind one lock.

    Args:
        rate: tokens per second granted to each tenant (``None`` disables
            rate limiting entirely — every admit succeeds).
        burst: bucket capacity (defaults to ``rate``, i.e. one second of
            headroom).
        clock: monotonic time source (tests inject a fake).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, tenant: str) -> None:
        """Charge one token to ``tenant`` or raise :class:`RateLimitError`."""
        if self.rate is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self._clock)
                self._buckets[tenant] = bucket
            wait = bucket.try_take()
        if wait is not None:
            raise RateLimitError(
                f"tenant {tenant!r} exceeded {self.rate:g} requests/second "
                f"(burst {self.burst:g}); retry in {wait:.2f}s",
                retry_after_seconds=wait,
            )

    def levels(self) -> Dict[str, float]:
        """Current token level per known tenant (for ``/v1/metrics``)."""
        with self._lock:
            return {
                tenant: round(bucket.tokens, 3)
                for tenant, bucket in sorted(self._buckets.items())
            }
