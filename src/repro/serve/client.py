"""Stdlib HTTP client for the serving layer.

:class:`ServeClient` wraps ``http.client`` so examples, tests and the
load benchmark talk to :class:`~repro.serve.server.ReproServer` without
third-party dependencies.  Methods mirror the endpoints one-to-one and
return the parsed JSON documents; non-2xx replies raise
:class:`ServeHTTPError` carrying the status code and the structured
error envelope the server emitted.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlparse

from repro.errors import ServeError


class ServeHTTPError(ServeError):
    """A non-2xx HTTP reply, carrying the server's error envelope."""

    code = "serve-http"

    def __init__(self, status: int, document: dict) -> None:
        error = (document.get("payload") or {}).get("error") or {}
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.document = document
        self.error = error

    def as_dict(self) -> dict:
        record = super().as_dict()
        record["status"] = self.status
        record["server_error"] = self.error
        return record


class ServeClient:
    """Minimal synchronous client for one ``repro serve`` endpoint.

    Args:
        url: server base URL, e.g. ``http://127.0.0.1:8433``.
        timeout: socket timeout for non-streaming calls, seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServeError(f"server url must be http://host:port, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            document = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, document
        finally:
            connection.close()

    def _call(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        status, document = self._request(method, path, body)
        if not 200 <= status < 300:
            raise ServeHTTPError(status, document)
        return document

    # -- endpoints -------------------------------------------------------------

    def submit(
        self,
        request: dict,
        tenant: str = "default",
        priority: int = 0,
        stream: bool = False,
    ) -> dict:
        """``POST /v1/submit``; returns the acceptance document."""
        return self._call("POST", "/v1/submit", {
            "request": request,
            "tenant": tenant,
            "priority": priority,
            "stream": stream,
        })

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``; the job status document."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def metrics(self) -> dict:
        """``GET /v1/metrics``."""
        return self._call("GET", "/v1/metrics")

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._call("GET", "/v1/healthz")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict:
        """Poll ``/v1/jobs/<id>`` until the job reaches a terminal state.

        Returns the final status document; raises :class:`ServeError` on
        timeout (the job keeps running server-side).
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["state"] in ("done", "failed", "cancelled"):
                return document
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {document['state']!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_seconds)

    def run(
        self,
        request: dict,
        tenant: str = "default",
        priority: int = 0,
        timeout: float = 60.0,
    ) -> dict:
        """Submit and wait; returns the terminal job document."""
        accepted = self.submit(request, tenant=tenant, priority=priority)
        return self.wait(accepted["job_id"], timeout=timeout)

    # -- streaming -------------------------------------------------------------

    def stream(
        self,
        job_id: str,
        after: int = 0,
        timeout: float = 120.0,
    ) -> Iterator[dict]:
        """Follow ``GET /v1/stream/<id>`` as parsed SSE events.

        Yields each event dictionary (augmented with its ``_cursor``, the
        value to pass as ``after=`` when reconnecting) and returns once
        the terminal ``end`` event arrives.  Keep-alive comments are
        consumed silently.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            connection.request("GET", f"/v1/stream/{job_id}?after={after}")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                document = json.loads(raw.decode("utf-8")) if raw else {}
                raise ServeHTTPError(response.status, document)
            fields: Dict[str, str] = {}
            while True:
                line = response.readline()
                if not line:
                    return  # server closed the stream
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:  # blank line: dispatch the accumulated frame
                    if "data" in fields:
                        event = json.loads(fields["data"])
                        if "id" in fields:
                            event["_cursor"] = int(fields["id"])
                        yield event
                        if event.get("event") == "end":
                            return
                    fields = {}
                    continue
                if text.startswith(":"):
                    continue  # keep-alive comment
                name, _, value = text.partition(":")
                fields[name.strip()] = value.lstrip()
        finally:
            connection.close()

    def stream_events(
        self, job_id: str, timeout: float = 120.0
    ) -> List[dict]:
        """Collect the full event stream of a job into a list."""
        return list(self.stream(job_id, timeout=timeout))
